//! Telemetry snapshots must be byte-identical across same-seed runs —
//! the property that makes `results/run_report.json` diffable in review
//! and lets CI compare reports across machines. The wall-clock stamp in
//! the `run_report/v1` wrapper is deliberately outside the snapshot.

use cache::CacheConfig;
use netsim::ktls::{run_encrypted_flow, TlsPlacement};
use netsim::tcp::TcpConfig;
use platforms::{run_server_with_telemetry, PlatformKind, UlpKind, WorkloadConfig};
use simkit::telemetry::Registry;

/// Builds the same registry shape `run_report` uses, at a reduced scale.
fn build_registry() -> Registry {
    let mut reg = Registry::new();
    let cfg = WorkloadConfig {
        message_bytes: 4096,
        connections: 16,
        requests: 64,
        ulp: UlpKind::Tls,
        llc: Some(CacheConfig::mb(2, 16)),
        ..WorkloadConfig::default()
    };
    for (kind, name) in [
        (PlatformKind::Cpu, "https_cpu"),
        (PlatformKind::SmartDimm, "https_smartdimm"),
    ] {
        run_server_with_telemetry(kind, &cfg, reg.scope(&format!("server.{name}")));
    }
    let tcp = TcpConfig {
        loss_prob: 0.01,
        seed: 11,
        ..TcpConfig::default()
    };
    let report = run_encrypted_flow(1 << 20, &tcp, TlsPlacement::smartnic_default());
    report.export_telemetry(reg.scope("netsim.ktls_smartnic"));
    reg
}

#[test]
fn same_seed_runs_snapshot_byte_identically() {
    let a = build_registry().snapshot();
    let b = build_registry().snapshot();
    assert_eq!(
        a, b,
        "telemetry/v1 snapshots diverged between same-seed runs"
    );
    assert!(a.contains("\"schema\": \"telemetry/v1\""));
    // The snapshot must never embed wall-clock metadata.
    assert!(!a.contains("generated_at_unix"));
}

#[test]
fn different_seed_changes_the_snapshot() {
    // Sanity check that the byte-compare above is not vacuous: perturbing
    // the TCP seed must actually move at least one rendered metric.
    let base = build_registry().snapshot();
    let mut reg = Registry::new();
    let tcp = TcpConfig {
        loss_prob: 0.01,
        seed: 12,
        ..TcpConfig::default()
    };
    let report = run_encrypted_flow(1 << 20, &tcp, TlsPlacement::smartnic_default());
    report.export_telemetry(reg.scope("netsim.ktls_smartnic"));
    let perturbed = reg.snapshot();
    let base_netsim = base
        .split("\"netsim\"")
        .nth(1)
        .expect("base snapshot has a netsim scope");
    assert!(!base_netsim.is_empty());
    assert_ne!(base, perturbed);
}
