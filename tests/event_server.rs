//! The event-driven harness's contract: deterministic tail-latency
//! simulation at high concurrency, admission control that fires only
//! above its pressure watermark, and goodput that degrades monotonically
//! with connection churn.

use cache::CacheConfig;
use platforms::{
    run_event_server, run_event_server_with_telemetry, AdmissionConfig, AdmissionPolicy,
    EventWorkloadConfig, PlatformKind, UlpKind,
};
use simkit::telemetry::Registry;

fn base(conns: usize, reqs: usize) -> EventWorkloadConfig {
    EventWorkloadConfig {
        connections: conns,
        requests: reqs,
        workers: 16,
        ulp: UlpKind::Tls,
        objects: 256,
        min_object_bytes: 2048,
        max_object_bytes: 8192,
        llc: Some(CacheConfig::mb(2, 16)),
        ..EventWorkloadConfig::default()
    }
}

/// A scratchpad-starved SmartDIMM config whose device pressure reliably
/// crosses mid-range watermarks.
fn pressured(policy: AdmissionPolicy, watermark: f64) -> EventWorkloadConfig {
    EventWorkloadConfig {
        scratchpad_pages: Some(48),
        admission: AdmissionConfig { policy, watermark },
        ..base(512, 700)
    }
}

#[test]
fn same_seed_snapshots_are_byte_identical() {
    let cfg = EventWorkloadConfig {
        churn_permille: 100,
        slow_client_permille: 50,
        ..base(2048, 900)
    };
    let render = || {
        let mut reg = Registry::new();
        run_event_server_with_telemetry(
            PlatformKind::SmartDimm,
            &cfg,
            reg.scope("eventsim.tls_smartdimm"),
        );
        reg.snapshot()
    };
    assert_eq!(render(), render());
}

#[test]
fn thread_count_does_not_change_results() {
    let mk = |threads: usize| EventWorkloadConfig {
        channels: 2,
        channel_interleave_lines: 64,
        threads,
        ..base(1024, 600)
    };
    let seq = run_event_server(PlatformKind::SmartDimm, &mk(1));
    let par = run_event_server(PlatformKind::SmartDimm, &mk(4));
    assert_eq!(seq, par);
}

#[test]
fn rejects_fire_only_above_the_watermark() {
    // Policy None never rejects, whatever the pressure.
    let none = run_event_server(
        PlatformKind::SmartDimm,
        &pressured(AdmissionPolicy::None, 0.0),
    );
    assert_eq!(none.admission_rejects, 0);
    assert_eq!(none.shed_requests, 0);
    assert!(
        none.max_pressure > 0.5,
        "starved scratchpad must pressure the device (saw {})",
        none.max_pressure
    );

    // An unreachable watermark (the scalar is capped at 1.0) never fires.
    let high = run_event_server(
        PlatformKind::SmartDimm,
        &pressured(AdmissionPolicy::Shed, 1.5),
    );
    assert_eq!(high.admission_rejects, 0);

    // A seeded sweep across watermarks: every reject's sampled pressure
    // exceeds the watermark it was judged against, and shedding conserves
    // requests.
    for watermark in [0.2, 0.5, 0.8] {
        let m = run_event_server(
            PlatformKind::SmartDimm,
            &pressured(AdmissionPolicy::Shed, watermark),
        );
        assert!(
            m.admission_rejects > 0,
            "watermark {watermark}: pressured device must reject"
        );
        assert_eq!(m.admission_rejects, m.shed_requests);
        assert!(
            m.min_pressure_at_reject > watermark,
            "watermark {watermark}: reject at pressure {}",
            m.min_pressure_at_reject
        );
        assert_eq!(m.issued_requests, m.completed_requests + m.shed_requests);
    }
}

#[test]
fn cpu_fallback_serves_instead_of_shedding() {
    let m = run_event_server(
        PlatformKind::SmartDimm,
        &pressured(AdmissionPolicy::CpuFallback, 0.5),
    );
    assert!(
        m.fallback_under_pressure > 0,
        "pressure must trigger fallback"
    );
    assert_eq!(m.admission_rejects, m.fallback_under_pressure);
    assert_eq!(m.shed_requests, 0);
    // Every issued request still completes — fallback trades latency for
    // availability.
    assert_eq!(m.issued_requests, m.completed_requests);
}

#[test]
fn goodput_is_monotone_non_increasing_in_churn() {
    // Per-connection request budgets fix the issued set, and churn coins
    // are hash-derived per (connection, request), so raising the churn
    // rate delays a superset of requests: delivered bytes stay constant
    // while the makespan stretches.
    let mut prev: Option<(u64, f64)> = None;
    for churn in [0u64, 150, 400, 800] {
        let cfg = EventWorkloadConfig {
            churn_permille: churn,
            reconnect_ns: 2_000_000,
            think_time_ns: 10_000,
            ..base(256, 800)
        };
        let m = run_event_server(PlatformKind::Cpu, &cfg);
        assert_eq!(m.completed_requests, 800);
        if let Some((bytes, goodput)) = prev {
            assert_eq!(
                m.delivered_bytes, bytes,
                "churn must not change which bytes are served"
            );
            assert!(
                m.goodput_gbps <= goodput,
                "churn {churn}: goodput rose {} -> {}",
                goodput,
                m.goodput_gbps
            );
        }
        prev = Some((m.delivered_bytes, m.goodput_gbps));
    }
}

#[test]
fn fault_injected_fallback_run_holds_invariants() {
    // Faults on the device path plus admission fallback: the run must
    // stay deterministic, conserve requests, and actually exercise both
    // the fault oracle and the fallback path.
    let cfg = EventWorkloadConfig {
        fault_seed: Some(11),
        churn_permille: 100,
        ..pressured(AdmissionPolicy::CpuFallback, 0.5)
    };
    let a = run_event_server(PlatformKind::SmartDimm, &cfg);
    let b = run_event_server(PlatformKind::SmartDimm, &cfg);
    assert_eq!(a, b, "fault-injected run diverged across same-seed runs");
    assert!(a.fallback_under_pressure > 0);
    assert_eq!(a.issued_requests, a.completed_requests + a.shed_requests);
    assert!(a.completed_requests > 0);
    assert!(a.goodput_gbps > 0.0 && a.goodput_gbps.is_finite());
}

#[test]
fn ten_thousand_connections_resolve_p999_on_the_fast_backend() {
    // The acceptance-scale workload: >10k logical zipfian connections on
    // the tier-1 backend, enough completions to resolve p999.
    let cfg = EventWorkloadConfig {
        connections: 10_240,
        requests: 1100,
        workers: 64,
        ..base(0, 0)
    };
    let m = run_event_server(PlatformKind::SmartDimm, &cfg);
    assert_eq!(m.completed_requests, 1100);
    assert!(m.p999_resolvable, "1100 samples resolve p999");
    assert!(m.p50_ns > 0);
    assert!(m.p999_ns >= m.p99_ns && m.p99_ns >= m.p50_ns);
}
