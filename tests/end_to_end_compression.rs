//! End-to-end compression integration: HTTP responses compressed near
//! memory, page by page, interoperating with the software Deflate stack
//! and the HTTP codec.

use netsim::http::{Request, Response};
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};
use ulp_compress::{corpus, deflate, inflate};

/// Compresses a response body at page granularity on the DIMM (§V-C) and
/// returns the per-page streams.
fn offload_compress(host: &mut CompCpyHost, body: &[u8]) -> Vec<Vec<u8>> {
    body.chunks(4096)
        .map(|page| {
            let src = host.alloc_pages(1);
            let dst = host.alloc_pages(1);
            host.mem_mut().store(src, page, 0);
            let handle = host
                .comp_cpy(dst, src, page.len(), OffloadOp::Compress, true, 0)
                .expect("offload accepted");
            host.use_buffer(&handle)
        })
        .collect()
}

#[test]
fn compressed_http_response_round_trips() {
    let mut host = CompCpyHost::new(HostConfig::default());
    let req = Request::get("/catalog.json").with_deflate();
    assert!(Request::parse(&req.to_bytes()).unwrap().accepts_deflate);

    let body = corpus::json(20_000, 5);
    let pages = offload_compress(&mut host, &body);

    // The server frames each compressed page as its own deflate stream;
    // the client inflates them in order.
    let mut restored = Vec::new();
    let mut wire_bytes = 0usize;
    for page in &pages {
        wire_bytes += page.len();
        restored.extend(inflate::decompress(page).expect("valid stream"));
    }
    assert_eq!(restored, body);
    assert!(wire_bytes < body.len(), "compression actually saved bytes");

    // And the framing survives the HTTP codec.
    let resp = Response::ok("").with_deflate_body(pages.concat());
    let parsed = Response::parse(&resp.to_bytes()).unwrap();
    assert!(parsed.deflate_encoded);
    assert_eq!(parsed.body.len(), wire_bytes);
}

#[test]
fn hw_pages_match_software_semantics() {
    // The DIMM's streams differ bit-wise from software zlib (different
    // matcher), but both must decode to the same plaintext, and software
    // zlib-class tooling must accept the DIMM's output.
    let mut host = CompCpyHost::new(HostConfig::default());
    for kind in [corpus::Kind::Text, corpus::Kind::Html, corpus::Kind::Json] {
        let page = kind.generate(4096, 11);
        let sw = deflate::compress(&page);
        let hw = offload_compress(&mut host, &page).remove(0);
        assert_eq!(inflate::decompress(&sw).unwrap(), page);
        assert_eq!(inflate::decompress(&hw).unwrap(), page);
    }
}

#[test]
fn decompression_offload_of_software_streams() {
    // Receive-side: software-compressed content inflated near memory.
    let mut host = CompCpyHost::new(HostConfig::default());
    let original = corpus::html(4096, 13);
    let compressed = deflate::compress(&original);
    assert!(compressed.len() <= 4096);

    let src = host.alloc_pages(1);
    let dst = host.alloc_pages(1);
    host.mem_mut().store(src, &compressed, 0);
    let handle = host
        .comp_cpy(dst, src, compressed.len(), OffloadOp::Decompress, true, 0)
        .expect("offload accepted");
    let restored = host.use_buffer(&handle);
    assert_eq!(restored, original);
}

#[test]
fn mixed_content_stream_with_incompressible_pages() {
    let mut host = CompCpyHost::new(HostConfig::default());
    // Alternate compressible and incompressible pages, as a real content
    // store would (text next to already-compressed images).
    let mut body = Vec::new();
    for i in 0..6u64 {
        if i % 2 == 0 {
            body.extend(corpus::text(4096, i));
        } else {
            body.extend(corpus::random(4096, i));
        }
    }
    let pages = offload_compress(&mut host, &body);
    let mut restored = Vec::new();
    for (i, page) in pages.iter().enumerate() {
        if i % 2 == 0 {
            // Compressible page: a valid deflate stream.
            restored.extend(inflate::decompress(page).expect("deflate"));
        } else {
            // Incompressible: the raw page came back.
            assert_eq!(page.len(), 4096);
            restored.extend_from_slice(page);
        }
    }
    assert_eq!(restored, body);
}
