//! Fault-injection sweep: ~100 seeded fault plans per ULP, each run
//! through the differential oracle. Every scenario must end byte-exact
//! against the software golden path, every injected fault must be
//! detected and recovered (re-feed, drain + retry, Force-Recycle or
//! software fallback), and the same seed must reproduce the identical
//! fault sequence, recovery sequence and device statistics.
//!
//! The host is deliberately starved — an 8-page scratchpad and a 48-slot
//! translation table — so the injected pressure actually bites.

use simkit::{DetRng, FaultHandle, FaultKind, FaultPlan};
use smartdimm::{FaultOracle, HostConfig, OffloadOp};

const SEEDS: u64 = 100;
/// Offloads issued per seeded plan (retries can add more).
const OPS_PER_PLAN: u64 = 6;

fn stress_config() -> HostConfig {
    let mut cfg = HostConfig::default();
    cfg.dimm.scratchpad_pages = 8;
    cfg.dimm.xlat_entries = 48;
    cfg.dimm.cam_entries = 4;
    cfg
}

/// Deterministic per-op message content.
fn content(kind: u8, size: usize, seed: u64) -> Vec<u8> {
    match kind {
        0 => ulp_compress::corpus::text(size, seed),
        1 => ulp_compress::corpus::html(size, seed),
        _ => ulp_compress::corpus::random(size, seed),
    }
}

/// Runs one seeded plan of TLS offloads; returns a determinism trace.
fn run_tls_plan(seed: u64) -> Vec<String> {
    let plan = FaultPlan::generate(seed, OPS_PER_PLAN);
    let mut oracle = FaultOracle::new(stress_config(), plan);
    let mut rng = DetRng::new(seed ^ 0x715);
    let key = [0xC3u8; 16];
    for i in 0..OPS_PER_PLAN {
        let size = 64 + rng.gen_range(0..8000) as usize;
        let msg = content((i % 3) as u8, size, rng.gen_range(0..u64::MAX));
        let mut iv = [0u8; 12];
        iv[..8].copy_from_slice(&(seed * 100 + i).to_le_bytes());
        let op = if rng.gen_bool(0.5) {
            OffloadOp::TlsEncrypt { key, iv }
        } else {
            OffloadOp::TlsDecrypt { key, iv }
        };
        let outcome = oracle.check(op, &msg, b"hdr173");
        // Injected faults must be visible either as firings with matching
        // recoveries or as nothing at all — never as silent corruption
        // (oracle.check panics on wrong bytes).
        drop(outcome);
        oracle.assert_occupancy_bound();
    }
    trace_of(&mut oracle, seed)
}

/// Runs one seeded plan of compression offloads; returns the trace.
fn run_compress_plan(seed: u64) -> Vec<String> {
    let plan = FaultPlan::generate(seed, OPS_PER_PLAN);
    let mut oracle = FaultOracle::new(stress_config(), plan);
    let mut rng = DetRng::new(seed ^ 0xC0);
    for i in 0..OPS_PER_PLAN {
        let size = 256 + rng.gen_range(0..3840) as usize;
        let page = content((i % 3) as u8, size, rng.gen_range(0..u64::MAX));
        if rng.gen_bool(0.7) {
            oracle.check(OffloadOp::Compress, &page, b"");
        } else {
            let compressed = ulp_compress::deflate::compress(&page);
            if compressed.len() > 4096 {
                // Incompressible content: the stream would exceed the
                // page-granular offload limit. Compress instead.
                oracle.check(OffloadOp::Compress, &page, b"");
            } else {
                oracle.check(OffloadOp::Decompress, &compressed, b"");
            }
        }
        oracle.assert_occupancy_bound();
    }
    trace_of(&mut oracle, seed)
}

/// Everything a re-run with the same seed must reproduce exactly:
/// firings, recoveries, Force-Recycles and device statistics.
fn trace_of(oracle: &mut FaultOracle, seed: u64) -> Vec<String> {
    let mut trace = oracle.fired_log();
    trace.extend(oracle.recoveries().iter().map(|r| format!("{r:?}")));
    trace.push(format!(
        "force_recycles={}",
        oracle.organic_force_recycles()
    ));
    trace.push(format!("stats={:?}", oracle.host().device_stats()));
    trace.push(format!("seed={seed}"));
    trace
}

#[test]
fn tls_sweep_is_byte_exact_and_recovers() {
    let mut fired_any = 0u64;
    for seed in 0..SEEDS {
        let trace = run_tls_plan(seed);
        // `trace_of` appends 3 summary lines after the firing log.
        fired_any += (trace.len() > 3) as u64;
    }
    // FaultPlan::generate always emits at least one event per plan, and
    // most arm inside the 6-offload horizon: the sweep must actually
    // have injected faults, not vacuously passed.
    assert!(
        fired_any >= SEEDS / 4,
        "only {fired_any}/{SEEDS} TLS plans fired any fault"
    );
}

#[test]
fn compression_sweep_is_byte_exact_and_recovers() {
    let mut fired_any = 0u64;
    for seed in 0..SEEDS {
        let trace = run_compress_plan(seed);
        fired_any += (trace.len() > 3) as u64;
    }
    assert!(
        fired_any >= SEEDS / 4,
        "only {fired_any}/{SEEDS} compression plans fired any fault"
    );
}

#[test]
fn force_recycle_fires_across_the_sweep() {
    // Union assertion: across the sweep the scratchpad-hog faults must
    // push the 8-page scratchpad into Force-Recycle at least once, and
    // the device stats must show the reclaimed (self-recycled or
    // explicitly written) lines that recovery implies.
    let mut total_force_recycles = 0u64;
    let mut total_recycled_lines = 0u64;
    for seed in 0..SEEDS {
        let plan = FaultPlan::generate(seed, OPS_PER_PLAN);
        let hogs = plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::ScratchHog { .. }));
        if !hogs {
            continue;
        }
        let mut oracle = FaultOracle::new(stress_config(), plan);
        let mut rng = DetRng::new(seed ^ 0x715);
        let key = [0xC3u8; 16];
        for i in 0..OPS_PER_PLAN {
            let size = 64 + rng.gen_range(0..8000) as usize;
            let msg = content((i % 3) as u8, size, rng.gen_range(0..u64::MAX));
            let mut iv = [0u8; 12];
            iv[..8].copy_from_slice(&(seed * 100 + i).to_le_bytes());
            let op = if rng.gen_bool(0.5) {
                OffloadOp::TlsEncrypt { key, iv }
            } else {
                OffloadOp::TlsDecrypt { key, iv }
            };
            oracle.check(op, &msg, b"hdr173");
        }
        total_force_recycles += oracle.organic_force_recycles();
        total_recycled_lines += oracle
            .host()
            .device()
            .scratchpad_stats()
            .self_recycled_lines;
    }
    assert!(
        total_force_recycles >= 1,
        "no plan in the sweep drove the host into Force-Recycle"
    );
    assert!(total_recycled_lines > 0, "no lines were ever recycled");
}

#[test]
fn ranks2_sweep_is_byte_exact_on_both_backends() {
    // Two ranks per DIMM interleave consecutive line groups across rank
    // address bits. The sweep drives the same seeded fault plans through
    // both fidelity tiers and demands byte-exactness plus identical
    // recovery traces across backends: rank decode is purely functional,
    // so the tiers may differ only in timing.
    use dram::BackendKind;
    for dimms in [1usize, 2] {
        let mut traces: Vec<Vec<Vec<String>>> = Vec::new();
        for backend in [BackendKind::CycleAccurate, BackendKind::FastQueue] {
            let mut per_seed = Vec::new();
            for seed in 0..8u64 {
                let plan = FaultPlan::generate(seed, OPS_PER_PLAN);
                let mut cfg = stress_config();
                cfg.mem.dram.topology.ranks = 2;
                cfg.mem.dram.topology.dimms_per_channel = dimms;
                cfg.mem.backend = backend;
                let mut oracle = FaultOracle::new(cfg, plan);
                let mut rng = DetRng::new(seed ^ 0x2a17);
                let key = [0xC3u8; 16];
                for i in 0..OPS_PER_PLAN {
                    let size = 64 + rng.gen_range(0..8000) as usize;
                    let msg = content((i % 3) as u8, size, rng.gen_range(0..u64::MAX));
                    let mut iv = [0u8; 12];
                    iv[..8].copy_from_slice(&(seed * 1000 + i).to_le_bytes());
                    let op = if rng.gen_bool(0.5) {
                        OffloadOp::TlsEncrypt { key, iv }
                    } else {
                        OffloadOp::TlsDecrypt { key, iv }
                    };
                    oracle.check(op, &msg, b"hdr173");
                    oracle.assert_occupancy_bound();
                }
                let mut trace = oracle.fired_log();
                trace.extend(oracle.recoveries().iter().map(|r| format!("{r:?}")));
                per_seed.push(trace);
            }
            traces.push(per_seed);
        }
        assert_eq!(
            traces[0], traces[1],
            "fault/recovery traces diverged between backends \
             (ranks=2, dimms_per_channel={dimms})"
        );
    }
}

#[test]
fn same_seed_reproduces_identical_traces() {
    for seed in [0u64, 13, 42, 77, 99] {
        assert_eq!(
            run_tls_plan(seed),
            run_tls_plan(seed),
            "TLS trace diverged for seed {seed}"
        );
        assert_eq!(
            run_compress_plan(seed),
            run_compress_plan(seed),
            "compression trace diverged for seed {seed}"
        );
    }
}

#[test]
fn different_seeds_give_different_fault_sequences() {
    let traces: Vec<Vec<String>> = (0..16).map(run_tls_plan).collect();
    let distinct: std::collections::HashSet<&Vec<String>> = traces.iter().collect();
    assert!(
        distinct.len() > 8,
        "fault plans barely vary across seeds ({} distinct of 16)",
        distinct.len()
    );
}

#[test]
fn tcp_loss_bursts_force_drops_deterministically() {
    use netsim::tcp::{simulate_transfer, simulate_transfer_with_faults, TcpConfig};
    let cfg = TcpConfig::default();
    let baseline = simulate_transfer(2 << 20, &cfg, |_| 0);
    assert_eq!(baseline.drops, 0, "default config is lossless");

    let plan = FaultPlan {
        seed: 9,
        events: vec![
            simkit::FaultEvent {
                at_offload: 0,
                kind: FaultKind::TcpLossBurst { start: 10, len: 6 },
            },
            simkit::FaultEvent {
                at_offload: 0,
                kind: FaultKind::TcpLossBurst { start: 40, len: 3 },
            },
        ],
    };
    let run = {
        let fault = FaultHandle::new(plan.clone());
        simulate_transfer_with_faults(2 << 20, &cfg, Some(&fault), |_| 0)
    };
    // Every segment in the burst windows was dropped and recovered.
    assert_eq!(run.delivered_bytes, 2 << 20, "transfer must still complete");
    assert_eq!(run.drops, 9, "6 + 3 forced drops");
    assert!(run.retransmits >= 9, "each drop needs a retransmission");
    assert!(run.elapsed_ns > baseline.elapsed_ns, "loss costs time");

    // Identical plan → identical run; no hidden nondeterminism.
    let again = {
        let fault = FaultHandle::new(plan);
        simulate_transfer_with_faults(2 << 20, &cfg, Some(&fault), |_| 0)
    };
    assert_eq!(run, again);
}

#[test]
fn no_fault_handle_means_identical_tcp_behavior() {
    use netsim::tcp::{simulate_transfer, simulate_transfer_with_faults, TcpConfig};
    // The forced-drop hook must not perturb the RNG draw sequence: with
    // loss enabled, a None fault handle reproduces simulate_transfer.
    let cfg = TcpConfig {
        loss_prob: 0.01,
        ..TcpConfig::default()
    };
    let a = simulate_transfer(1 << 20, &cfg, |_| 0);
    let b = simulate_transfer_with_faults(1 << 20, &cfg, None, |_| 0);
    assert_eq!(a, b);
}
