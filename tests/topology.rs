//! Scale-out topology determinism and scheduler invariants (PR 10).
//!
//! A 2-socket × 2-DIMM-per-channel system must behave exactly like the
//! flat topology in every way that matters for reproducibility: the
//! telemetry snapshot is byte-identical at any shard-settle thread
//! count, the offload scheduler never feeds a DSA-less capacity DIMM,
//! and remote-socket offloads are visible in the interconnect counters
//! (DESIGN.md §13).

use cache::CacheConfig;
use dram::PhysAddr;
use platforms::{run_server_with_telemetry, PlatformKind, UlpKind, WorkloadConfig};
use simkit::telemetry::Registry;
use smartdimm::{CompCpyHost, HostConfig, OffloadOp, PlacementPolicy};

/// Whole pages pin to one channel — required for placement to be a
/// per-offload decision at all.
const COARSE: usize = 64;

fn topo_workload(threads: usize, placement: PlacementPolicy) -> WorkloadConfig {
    WorkloadConfig {
        message_bytes: 4096,
        connections: 12,
        requests: 48,
        ulp: UlpKind::Tls,
        llc: Some(CacheConfig::mb(2, 16)),
        channels: 4,
        channel_interleave_lines: COARSE,
        dimms_per_channel: 2,
        sockets: 2,
        interconnect_penalty_cycles: 200,
        placement,
        threads,
        ..WorkloadConfig::default()
    }
}

fn topo_snapshot(threads: usize, placement: PlacementPolicy) -> String {
    let mut reg = Registry::new();
    let cfg = topo_workload(threads, placement);
    run_server_with_telemetry(PlatformKind::SmartDimm, &cfg, reg.scope("server.topo"));
    reg.snapshot()
}

/// First value of counter `key` in a rendered `telemetry/v1` snapshot
/// (one metric per line: `"key": { "kind": "counter", "value": N }`).
fn counter(snapshot: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": {{ \"kind\": \"counter\", \"value\": ");
    snapshot
        .lines()
        .find_map(|l| {
            let idx = l.find(&pat)?;
            let digits: String = l[idx + pat.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            digits.parse::<u64>().ok()
        })
        .unwrap_or_else(|| panic!("snapshot has no counter {key}"))
}

#[test]
fn two_socket_two_dimm_snapshot_is_thread_invariant() {
    for placement in [PlacementPolicy::Static, PlacementPolicy::OccupancyLocality] {
        let sequential = topo_snapshot(1, placement);
        assert!(sequential.contains("\"schema\": \"telemetry/v1\""));
        // The per-socket rollups and scheduler counters must be present.
        assert!(sequential.contains("\"socket1\""), "missing socket rollup");
        assert!(sequential.contains("remote_accesses"));
        assert!(sequential.contains("rehomed_offloads"));
        for threads in [2usize, 4] {
            let parallel = topo_snapshot(threads, placement);
            assert_eq!(
                sequential, parallel,
                "threads=1 vs threads={threads} diverged ({placement:?})"
            );
        }
    }
}

#[test]
fn remote_offloads_bill_the_interconnect() {
    // Channel 1 of a 2-channel × 2-socket host lives on socket 1; an
    // offload sourced there must bump the remote CAS counter, and the
    // per-socket rollup must attribute it to socket 1.
    let mut cfg = HostConfig::default();
    cfg.mem.dram.topology.channels = 2;
    cfg.mem.dram.topology.sockets = 2;
    cfg.mem.dram.topology.channel_interleave_lines = COARSE;
    cfg.mem.dram.interconnect_penalty_cycles = 200;
    let mut host = CompCpyHost::new(cfg);
    let src = PhysAddr(0x0100_1000); // channel 1 → socket 1 (remote)
    let dst = PhysAddr(0x0100_0000); // channel 0 → socket 0 (home)
    let msg = ulp_compress::corpus::text(4096, 3);
    let key = [0x21u8; 16];
    let iv = [0x43u8; 12];
    host.mem_mut().store(src, &msg, 0);
    let handle = host
        .comp_cpy(
            dst,
            src,
            msg.len(),
            OffloadOp::TlsEncrypt { key, iv },
            false,
            0,
        )
        .expect("offload accepted");
    let (want, _) = ulp_crypto::gcm::AesGcm::new_128(&key).seal(&iv, b"", &msg);
    assert_eq!(host.use_buffer(&handle), want);

    assert!(
        host.mem().dram().stats().remote_accesses.value() > 0,
        "remote-socket offload never touched the interconnect counter"
    );
    assert_eq!(host.sched_stats().remote_placements, 1);

    let mut reg = Registry::new();
    host.export_telemetry(reg.scope("host"));
    let snap = reg.snapshot();
    let socket1 = snap.split("\"socket1\"").nth(1).expect("socket1 scope");
    assert!(
        counter(socket1, "remote_accesses") > 0,
        "socket1 rollup shows no remote CAS traffic"
    );
}

#[test]
fn scheduler_never_feeds_capacity_slots() {
    // With two DIMMs per channel half the address space decodes to the
    // DSA-less slot 1. Every offload must still come back byte-exact
    // (a source staged on slot 1 would bypass interception and return
    // raw bytes), and the placement accounting must cover every offload
    // issued — nothing may take an unclassified path.
    let mut cfg = HostConfig::default();
    cfg.mem.dram.topology.dimms_per_channel = 2;
    let topo = cfg.mem.dram.topology;
    let mapper = dram::AddressMapper::new(topo);
    // Scan for page-aligned addresses whose lines all decode to the
    // capacity slot (slot 1) — sources the scheduler must re-home.
    let mut slot1_pages = Vec::new();
    let mut a = 0x0200_0000u64;
    while slot1_pages.len() < 6 {
        let slot = topo.dimm_slot_of_rank(mapper.decode(PhysAddr(a)).rank);
        let end = topo.dimm_slot_of_rank(mapper.decode(PhysAddr(a + 4096 - 64)).rank);
        if slot == 1 && end == 1 {
            slot1_pages.push(PhysAddr(a));
        }
        a += 4096;
    }
    let mut host = CompCpyHost::new(cfg);
    let key = [0x5Au8; 16];
    let total = 12u64;
    for i in 0..total {
        let msg = ulp_compress::corpus::html(2048 + 173 * i as usize, i);
        let src = if i % 2 == 0 {
            slot1_pages[(i as usize / 2) % slot1_pages.len()]
        } else {
            host.alloc_pages(1)
        };
        let dst = host.alloc_pages(1);
        let mut iv = [0u8; 12];
        iv[..8].copy_from_slice(&(i + 1).to_le_bytes());
        host.mem_mut().store(src, &msg, 0);
        let handle = host
            .comp_cpy(
                dst,
                src,
                msg.len(),
                OffloadOp::TlsEncrypt { key, iv },
                false,
                0,
            )
            .expect("offload accepted");
        let (want, want_tag) = ulp_crypto::gcm::AesGcm::new_128(&key).seal(&iv, b"", &msg);
        assert_eq!(host.use_buffer(&handle), want, "offload {i} bytes");
        assert_eq!(host.tag(&handle), Some(want_tag), "offload {i} tag");
    }
    let s = host.sched_stats();
    assert_eq!(
        s.static_placements + s.rehomed_offloads + s.migrated_offloads,
        total,
        "placement accounting must cover every offload"
    );
    assert!(
        s.rehomed_offloads > 0,
        "a 2-DIMM sweep never exercised re-homing"
    );
}

#[test]
fn occupancy_locality_shifts_placement_at_workload_level() {
    // The §V-D acceptance criterion: under a 2-socket topology the
    // occupancy+locality policy must measurably move offloads compared
    // with the static per-line decode — visible purely in telemetry.
    let stat = topo_snapshot(1, PlacementPolicy::Static);
    let dyn_ = topo_snapshot(1, PlacementPolicy::OccupancyLocality);
    assert_eq!(
        counter(&stat, "migrated_offloads"),
        0,
        "static decode must never migrate"
    );
    let migrated = counter(&dyn_, "migrated_offloads");
    assert!(
        migrated > 0,
        "occupancy+locality policy never moved an offload"
    );
    assert!(
        counter(&dyn_, "remote_placements") < counter(&stat, "remote_placements"),
        "locality scheduling should reduce remote placements"
    );
}
