//! The paper's headline claims, asserted as integration tests (at
//! test-friendly scales — the full-size sweeps live in `crates/bench`).

use cache::CacheConfig;
use netsim::ktls::{run_encrypted_flow, TlsPlacement};
use netsim::tcp::TcpConfig;
use platforms::{run_server, PlatformKind, UlpKind, WorkloadConfig};
use smartdimm::xlat::{Mapping, TranslationTable};
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};

fn contended(ulp: UlpKind, message: usize) -> WorkloadConfig {
    WorkloadConfig {
        message_bytes: message,
        connections: 512,
        requests: 400,
        ulp,
        llc: Some(CacheConfig::mb(2, 16)),
        ..WorkloadConfig::default()
    }
}

/// §I: "SmartDIMM achieves 21.0% to 10.28× higher requests per second"
/// — SmartDIMM must beat the CPU for both ULPs, and compression gains
/// must dwarf TLS gains (AES-NI makes software crypto cheap).
#[test]
fn headline_rps_claims() {
    let tls_cpu = run_server(PlatformKind::Cpu, &contended(UlpKind::Tls, 4096));
    let tls_sd = run_server(PlatformKind::SmartDimm, &contended(UlpKind::Tls, 4096));
    let tls_gain = tls_sd.rps / tls_cpu.rps;
    assert!(tls_gain > 1.1, "TLS gain {tls_gain}");

    let c_cpu = run_server(PlatformKind::Cpu, &contended(UlpKind::Compression, 4096));
    let c_sd = run_server(
        PlatformKind::SmartDimm,
        &contended(UlpKind::Compression, 4096),
    );
    let c_gain = c_sd.rps / c_cpu.rps;
    assert!(c_gain > 3.0, "compression gain {c_gain}");
    assert!(
        c_gain > 2.0 * tls_gain,
        "compression gains ({c_gain}) must dwarf TLS gains ({tls_gain})"
    );
}

/// §I: "36.3% to 88.9% lower memory bandwidth utilization" — SmartDIMM
/// moves less DRAM data per request than the CPU configuration.
#[test]
fn headline_memory_claims() {
    let cpu = run_server(PlatformKind::Cpu, &contended(UlpKind::Tls, 4096));
    let sd = run_server(PlatformKind::SmartDimm, &contended(UlpKind::Tls, 4096));
    let reduction = 1.0 - sd.dram_bytes_per_req / cpu.dram_bytes_per_req;
    assert!(reduction > 0.2, "TLS memory reduction {reduction}");

    let ccpu = run_server(PlatformKind::Cpu, &contended(UlpKind::Compression, 4096));
    let csd = run_server(
        PlatformKind::SmartDimm,
        &contended(UlpKind::Compression, 4096),
    );
    let creduction = 1.0 - csd.dram_bytes_per_req / ccpu.dram_bytes_per_req;
    assert!(
        creduction > reduction,
        "compression saves more ({creduction} vs {reduction})"
    );
}

/// Observation 1 / Fig. 2: the SmartNIC's benefit disappears under packet
/// drops.
#[test]
fn smartnic_benefit_fades_under_loss() {
    let clean = TcpConfig::default();
    let lossy = TcpConfig {
        loss_prob: 0.01,
        ..clean
    };
    let nic_clean = run_encrypted_flow(8 << 20, &clean, TlsPlacement::smartnic_default());
    let cpu_clean = run_encrypted_flow(8 << 20, &clean, TlsPlacement::cpu_default());
    let nic_lossy = run_encrypted_flow(8 << 20, &lossy, TlsPlacement::smartnic_default());
    let cpu_lossy = run_encrypted_flow(8 << 20, &lossy, TlsPlacement::cpu_default());
    assert!(nic_clean.goodput_gbps() >= cpu_clean.goodput_gbps() * 0.95);
    assert!(nic_lossy.goodput_gbps() < cpu_lossy.goodput_gbps());
}

/// Observation 3 / Fig. 3: HTTPS inflates DRAM traffic vs HTTP as
/// connections scale.
#[test]
fn https_membw_amplification() {
    let http = run_server(PlatformKind::Cpu, &contended(UlpKind::None, 4096));
    let https = run_server(PlatformKind::Cpu, &contended(UlpKind::Tls, 4096));
    assert!(https.dram_bytes_per_req > 1.5 * http.dram_bytes_per_req);
}

/// §VII-A: with the paper's 2048-page Scratchpad, Force-Recycle is never
/// needed; with a tiny Scratchpad it is — and correctness holds anyway.
#[test]
fn scratchpad_sizing_claim() {
    for (pages, expect_force) in [(2048usize, false), (4, true)] {
        let mut cfg = HostConfig::default();
        cfg.dimm.scratchpad_pages = pages;
        cfg.mem.llc = Some(CacheConfig::mb(8, 16)); // late writebacks
        let mut host = CompCpyHost::new(cfg);
        let key = [3u8; 16];
        for i in 0..12u64 {
            let src = host.alloc_pages(1);
            let dst = host.alloc_pages(1);
            let msg = ulp_compress::corpus::text(4096, i);
            host.mem_mut().store(src, &msg, 0);
            let iv = [i as u8; 12];
            let _ = host
                .comp_cpy(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    false,
                    0,
                )
                .expect("offload accepted");
        }
        assert_eq!(
            host.force_recycle_count() > 0,
            expect_force,
            "{pages} pages"
        );
    }
}

/// §IV-D: the rdCAS→wrCAS slack exceeds 1 µs (1600 DDR command cycles),
/// which is why the DSA needs no completion notification.
#[test]
fn slack_exceeds_one_microsecond() {
    let mut host = CompCpyHost::new(HostConfig::default());
    let key = [9u8; 16];
    for i in 0..10u64 {
        let src = host.alloc_pages(1);
        let dst = host.alloc_pages(1);
        host.mem_mut()
            .store(src, &ulp_compress::corpus::text(4096, i), 0);
        let iv = [i as u8; 12];
        let handle = host
            .comp_cpy(dst, src, 4096, OffloadOp::TlsEncrypt { key, iv }, false, 0)
            .expect("offload accepted");
        let _ = host.use_buffer(&handle);
    }
    let hist = host.device().slack_histogram();
    assert!(hist.count() > 0);
    assert!(
        hist.min().unwrap() > 1600,
        "min slack {} cycles",
        hist.min().unwrap()
    );
}

/// §IV-C: at the paper's 3× over-provisioning, translation-table inserts
/// effectively never fail and rarely displace.
#[test]
fn cuckoo_sizing_claim() {
    let mut t = TranslationTable::new(12288, 8);
    for page in 0..4096u64 {
        t.insert(
            page.wrapping_mul(0x9E37_79B9),
            Mapping::Source {
                offload: page,
                msg_offset: 0,
            },
        )
        .expect("no failures below 33% occupancy");
    }
    let s = t.stats();
    assert_eq!(s.failures, 0);
    assert!((s.displacements as f64 / s.inserts as f64) < 0.05);
}

/// §IV-A: flushing a 4 KB buffer that is already in DRAM is ~50% faster
/// than flushing it out of the cache.
#[test]
fn flush_cost_asymmetry() {
    let mut host = CompCpyHost::new(HostConfig::default());
    let buf = host.alloc_pages(1);
    host.mem_mut().store(buf, &[1u8; 4096], 0);
    let cached = host.mem_mut().flush(buf, 4096);
    let uncached = host.mem_mut().flush(buf, 4096);
    assert!(uncached.cycles * 2 <= cached.cycles + uncached.cycles);
    assert!((uncached.cycles as f64) < 0.6 * cached.cycles as f64);
}
