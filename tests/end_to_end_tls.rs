//! End-to-end TLS integration: a complete TLS 1.3 record produced through
//! the SmartDIMM offload path must be indistinguishable from (and
//! decryptable as) a software-produced record.

use smartdimm::{CompCpyHost, HostConfig, OffloadOp};
use ulp_crypto::tls::{ContentType, RecordLayer, TrafficKeys, HEADER_LEN};

/// Builds a full TLS 1.3 record where the AEAD ran on the DIMM: the CPU
/// constructs the inner plaintext and header, ships key/nonce/AAD to the
/// DSA via CompCpy, and assembles header ‖ ciphertext ‖ tag.
fn offloaded_record(
    host: &mut CompCpyHost,
    keys: &TrafficKeys,
    seq: u64,
    payload: &[u8],
) -> Vec<u8> {
    // TLSInnerPlaintext = payload || content type.
    let mut inner = payload.to_vec();
    inner.push(23);
    let ct_len = inner.len() + 16;
    let header = [23u8, 0x03, 0x03, (ct_len >> 8) as u8, (ct_len & 0xff) as u8];
    let nonce = keys.nonce(seq);

    let pages = inner.len().div_ceil(4096);
    let sbuf = host.alloc_pages(pages);
    let dbuf = host.alloc_pages(pages);
    host.mem_mut().store(sbuf, &inner, 0);
    let handle = host
        .comp_cpy_with_aad(
            dbuf,
            sbuf,
            inner.len(),
            OffloadOp::TlsEncrypt {
                key: *keys.key(),
                iv: nonce,
            },
            &header,
            false,
            0,
        )
        .expect("offload accepted");
    let ciphertext = host.use_buffer(&handle);
    let tag = host.tag(&handle).expect("tag ready");

    let mut record = Vec::with_capacity(HEADER_LEN + ct_len);
    record.extend_from_slice(&header);
    record.extend_from_slice(&ciphertext);
    record.extend_from_slice(&tag);
    record
}

#[test]
fn offloaded_records_decrypt_with_standard_tls() {
    let secret = [0x66u8; 32];
    let keys = TrafficKeys::derive(&secret);
    let mut host = CompCpyHost::new(HostConfig::default());
    let mut receiver = RecordLayer::new(&secret);

    for seq in 0..4u64 {
        let payload = ulp_compress::corpus::html(3000 + seq as usize * 500, seq);
        let record = offloaded_record(&mut host, &keys, seq, &payload);
        let (ctype, plain) = receiver.decrypt(&record).expect("valid record");
        assert_eq!(ctype, ContentType::ApplicationData);
        assert_eq!(plain, payload, "record {seq}");
    }
}

#[test]
fn offloaded_record_is_byte_identical_to_software() {
    let secret = [0x21u8; 32];
    let keys = TrafficKeys::derive(&secret);
    let mut host = CompCpyHost::new(HostConfig::default());
    let payload = ulp_compress::corpus::json(5000, 9);

    let hw = offloaded_record(&mut host, &keys, 0, &payload);
    let mut sw = RecordLayer::new(&secret);
    let sw_record = sw.encrypt(&payload).expect("software record");
    assert_eq!(hw, sw_record);
}

#[test]
fn decrypt_offload_recovers_software_records() {
    // RX direction: software encrypts, the DIMM decrypts.
    let secret = [0x44u8; 32];
    let mut sender = RecordLayer::new(&secret);
    let keys = TrafficKeys::derive(&secret);
    let mut host = CompCpyHost::new(HostConfig::default());

    let payload = ulp_compress::corpus::text(6000, 4);
    let record = sender.encrypt(&payload).expect("record");
    // Strip header and tag; decrypt the ciphertext body near memory.
    let body = &record[HEADER_LEN..record.len() - 16];
    let pages = body.len().div_ceil(4096);
    let sbuf = host.alloc_pages(pages);
    let dbuf = host.alloc_pages(pages);
    host.mem_mut().store(sbuf, body, 0);
    let handle = host
        .comp_cpy(
            dbuf,
            sbuf,
            body.len(),
            OffloadOp::TlsDecrypt {
                key: *keys.key(),
                iv: keys.nonce(0),
            },
            false,
            0,
        )
        .expect("offload accepted");
    let mut inner = host.use_buffer(&handle);
    assert_eq!(inner.pop(), Some(23), "content type byte");
    assert_eq!(inner, payload);
}

#[test]
fn multi_record_stream_through_the_dimm() {
    // A 64 KB response split into 16 KB records, all offloaded.
    let secret = [0x10u8; 32];
    let keys = TrafficKeys::derive(&secret);
    let mut host = CompCpyHost::new(HostConfig::default());
    let mut receiver = RecordLayer::new(&secret);
    let response = ulp_compress::corpus::html(64 * 1024, 2);

    let mut reassembled = Vec::new();
    for (seq, chunk) in response.chunks(16 * 1024 - 1).enumerate() {
        let record = offloaded_record(&mut host, &keys, seq as u64, chunk);
        let (_, plain) = receiver.decrypt(&record).expect("record");
        reassembled.extend(plain);
    }
    assert_eq!(reassembled, response);

    // The stack stayed healthy: no force recycles, no device errors.
    assert_eq!(host.force_recycle_count(), 0);
    let stats = host.device_stats();
    assert_eq!(stats.alloc_failures, 0);
    assert_eq!(stats.xlat_failures, 0);
}

#[test]
fn aad_mismatch_is_caught_by_the_receiver() {
    // If the offload is configured with the wrong AAD (header), standard
    // TLS must reject the record — the tag binds the header.
    let secret = [0x3Cu8; 32];
    let keys = TrafficKeys::derive(&secret);
    let mut host = CompCpyHost::new(HostConfig::default());
    let payload = vec![7u8; 1000];

    let mut inner = payload.clone();
    inner.push(23);
    let ct_len = inner.len() + 16;
    let good_header = [23u8, 3, 3, (ct_len >> 8) as u8, (ct_len & 0xff) as u8];
    let bad_header = [23u8, 3, 1, (ct_len >> 8) as u8, (ct_len & 0xff) as u8];

    let sbuf = host.alloc_pages(1);
    let dbuf = host.alloc_pages(1);
    host.mem_mut().store(sbuf, &inner, 0);
    let handle = host
        .comp_cpy_with_aad(
            dbuf,
            sbuf,
            inner.len(),
            OffloadOp::TlsEncrypt {
                key: *keys.key(),
                iv: keys.nonce(0),
            },
            &bad_header, // wrong AAD at the DSA
            false,
            0,
        )
        .expect("offload accepted");
    let ciphertext = host.use_buffer(&handle);
    let tag = host.tag(&handle).expect("tag");

    let mut record = Vec::new();
    record.extend_from_slice(&good_header);
    record.extend_from_slice(&ciphertext);
    record.extend_from_slice(&tag);
    let mut receiver = RecordLayer::new(&secret);
    assert!(receiver.decrypt(&record).is_err(), "tag must not verify");
}
