//! §V-D: fine-grain memory-channel interleaving.
//!
//! Multi-channel servers map only 1–4 consecutive cachelines to each
//! DIMM. Size-preserving ULPs (TLS) still offload: one SmartDIMM per
//! channel runs a *partial* AES-GCM engine over its own cachelines, the
//! registration step replicates the configuration data to every DIMM,
//! and the host XOR-combines the partial GHASH accumulators with the
//! metadata contribution and EIV. Non-size-preserving ULPs must be mapped
//! to a single channel and are rejected otherwise.

use dram::DramTopology;
use smartdimm::{CompCpyError, CompCpyHost, HostConfig, OffloadOp};
use ulp_crypto::gcm::AesGcm;

fn host_with(channels: usize, interleave: usize) -> CompCpyHost {
    let mut cfg = HostConfig::default();
    cfg.mem.dram.topology = DramTopology {
        channels,
        channel_interleave_lines: interleave,
        ..DramTopology::default()
    };
    CompCpyHost::new(cfg)
}

fn tls_round_trip(host: &mut CompCpyHost, size: usize, aad: &[u8], seed: u64) {
    let pages = size.div_ceil(4096);
    let src = host.alloc_pages(pages);
    let dst = host.alloc_pages(pages);
    let msg = ulp_compress::corpus::html(size, seed);
    host.mem_mut().store(src, &msg, 0);
    let key = [0x77u8; 16];
    let iv = [seed as u8; 12];
    let handle = host
        .comp_cpy_with_aad(
            dst,
            src,
            size,
            OffloadOp::TlsEncrypt { key, iv },
            aad,
            false,
            0,
        )
        .expect("offload accepted");
    let ct = host.use_buffer(&handle);
    let tag = host.tag(&handle).expect("combined tag available");

    let gcm = AesGcm::new_128(&key);
    let (want_ct, want_tag) = gcm.seal(&iv, aad, &msg);
    assert_eq!(ct, want_ct, "ciphertext ({size}B, seed {seed})");
    assert_eq!(tag, want_tag, "tag ({size}B, seed {seed})");
}

#[test]
fn two_channels_line_interleaved_tls() {
    let mut host = host_with(2, 1);
    assert_eq!(host.channels(), 2);
    tls_round_trip(&mut host, 4096, b"", 1);
    tls_round_trip(&mut host, 16384, b"hdr#2", 2);
}

#[test]
fn two_channels_coarser_interleave() {
    // 4 consecutive cachelines per channel (§V-D's upper end).
    let mut host = host_with(2, 4);
    tls_round_trip(&mut host, 4096, b"", 3);
    tls_round_trip(&mut host, 8192, b"aad", 4);
}

#[test]
fn four_channels_tls() {
    let mut host = host_with(4, 1);
    tls_round_trip(&mut host, 4096, b"", 5);
    tls_round_trip(&mut host, 12288, b"hd", 6);
}

#[test]
fn both_devices_participate() {
    let mut host = host_with(2, 1);
    tls_round_trip(&mut host, 4096, b"", 7);
    for c in 0..2 {
        let stats = host.device_on(c).stats();
        assert!(
            stats.dsa_lines >= 30,
            "channel {c} processed {} lines",
            stats.dsa_lines
        );
        assert!(stats.self_recycles > 0, "channel {c} recycled nothing");
    }
}

#[test]
fn decrypt_direction_interleaved() {
    let mut host = host_with(2, 2);
    let key = [0x31u8; 16];
    let iv = [9u8; 12];
    let msg = ulp_compress::corpus::text(6000, 8);
    let gcm = AesGcm::new_128(&key);
    let (ct, _) = gcm.seal(&iv, b"", &msg);

    let src = host.alloc_pages(2);
    let dst = host.alloc_pages(2);
    host.mem_mut().store(src, &ct, 0);
    let handle = host
        .comp_cpy(
            dst,
            src,
            ct.len(),
            OffloadOp::TlsDecrypt { key, iv },
            false,
            0,
        )
        .expect("offload accepted");
    let pt = host.use_buffer(&handle);
    assert_eq!(pt, msg);
}

#[test]
fn compression_rejected_on_interleaved_channels() {
    let mut host = host_with(2, 1);
    let src = host.alloc_pages(1);
    let dst = host.alloc_pages(1);
    host.mem_mut().store(src, &[7u8; 4096], 0);
    assert_eq!(
        host.comp_cpy(dst, src, 4096, OffloadOp::Compress, true, 0),
        Err(CompCpyError::SingleChannelOnly)
    );
    // TLS on the same host still works.
    tls_round_trip(&mut host, 4096, b"", 9);
}

#[test]
fn back_to_back_interleaved_offloads_reuse_buffers() {
    let mut host = host_with(2, 1);
    let src = host.alloc_pages(1);
    let dst = host.alloc_pages(1);
    let key = [0x55u8; 16];
    for i in 0..6u64 {
        let msg = ulp_compress::corpus::json(4096, 100 + i);
        host.mem_mut().store(src, &msg, 0);
        let iv = [(i + 1) as u8; 12];
        let handle = host
            .comp_cpy(dst, src, 4096, OffloadOp::TlsEncrypt { key, iv }, false, 0)
            .expect("offload accepted");
        let ct = host.use_buffer(&handle);
        let tag = host.tag(&handle).expect("tag");
        let gcm = AesGcm::new_128(&key);
        let (want, want_tag) = gcm.seal(&iv, b"", &msg);
        assert_eq!(ct, want, "round {i}");
        assert_eq!(tag, want_tag, "round {i}");
    }
}
