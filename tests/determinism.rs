//! Reproducibility: every simulator in the workspace must be exactly
//! deterministic given its seeds — the property that makes the
//! experiment results in `results/` reproducible.

use cache::CacheConfig;
use netsim::tcp::{simulate_transfer, TcpConfig};
use platforms::{run_server, PlatformKind, UlpKind, WorkloadConfig};
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};

#[test]
fn compcpy_stack_is_deterministic() {
    let run = || {
        let mut host = CompCpyHost::new(HostConfig::default());
        let key = [1u8; 16];
        let mut trace = Vec::new();
        for i in 0..8u64 {
            let src = host.alloc_pages(1);
            let dst = host.alloc_pages(1);
            host.mem_mut()
                .store(src, &ulp_compress::corpus::html(4096, i), 0);
            let iv = [i as u8; 12];
            let handle = host
                .comp_cpy(dst, src, 4096, OffloadOp::TlsEncrypt { key, iv }, false, 0)
                .unwrap();
            let out = host.use_buffer(&handle);
            trace.push((host.mem().now().raw(), out[0], out[4095]));
        }
        (trace, host.device_stats())
    };
    assert_eq!(run(), run());
}

#[test]
fn tcp_flows_are_deterministic() {
    let cfg = TcpConfig {
        loss_prob: 0.01,
        seed: 123,
        ..TcpConfig::default()
    };
    let a = simulate_transfer(2 << 20, &cfg, |_| 0);
    let b = simulate_transfer(2 << 20, &cfg, |_| 0);
    assert_eq!(a, b);
}

#[test]
fn server_harness_is_deterministic() {
    let cfg = WorkloadConfig {
        message_bytes: 4096,
        connections: 64,
        requests: 150,
        ulp: UlpKind::Compression,
        llc: Some(CacheConfig::mb(1, 16)),
        ..WorkloadConfig::default()
    };
    let a = run_server(PlatformKind::SmartDimm, &cfg);
    let b = run_server(PlatformKind::SmartDimm, &cfg);
    assert_eq!(a, b);
}

#[test]
fn fault_injected_server_runs_are_deterministic() {
    // The fault-injection subsystem must not cost reproducibility: the
    // same fault seed yields the identical metrics, for both ULPs.
    for ulp in [UlpKind::Tls, UlpKind::Compression] {
        let cfg = WorkloadConfig {
            message_bytes: 4096,
            connections: 32,
            requests: 80,
            ulp,
            llc: Some(CacheConfig::mb(1, 16)),
            fault_seed: Some(29),
            ..WorkloadConfig::default()
        };
        let a = run_server(PlatformKind::SmartDimm, &cfg);
        let b = run_server(PlatformKind::SmartDimm, &cfg);
        assert_eq!(a, b, "fault-injected {ulp:?} run diverged between replays");
    }
}

#[test]
fn fault_injected_oracle_traces_are_deterministic() {
    use simkit::FaultPlan;
    use smartdimm::FaultOracle;
    let run = |seed: u64| {
        let plan = FaultPlan::generate(seed, 4);
        let mut oracle = FaultOracle::new(HostConfig::default(), plan);
        let key = [9u8; 16];
        for i in 0..4u64 {
            let msg = ulp_compress::corpus::text(3000 + i as usize * 100, seed ^ i);
            let iv = [i as u8; 12];
            oracle.check(OffloadOp::TlsEncrypt { key, iv }, &msg, b"rec");
        }
        let mut trace = oracle.fired_log();
        trace.extend(oracle.recoveries().iter().map(|r| format!("{r:?}")));
        trace.push(format!("{:?}", oracle.host().device_stats()));
        trace
    };
    for seed in [3u64, 21, 58] {
        assert_eq!(
            run(seed),
            run(seed),
            "oracle trace diverged for seed {seed}"
        );
    }
}

#[test]
fn seeds_actually_matter() {
    let base = TcpConfig {
        loss_prob: 0.02,
        seed: 1,
        ..TcpConfig::default()
    };
    let other = TcpConfig { seed: 2, ..base };
    let a = simulate_transfer(2 << 20, &base, |_| 0);
    let b = simulate_transfer(2 << 20, &other, |_| 0);
    assert_ne!(a, b, "different seeds must give different loss patterns");
}
