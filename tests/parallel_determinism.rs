//! Parallel channel-shard execution must be invisible in simulated
//! state: for the same seed, `threads=1` and `threads=N` runs must
//! render byte-identical `telemetry/v1` snapshots, because the shard
//! settle schedule is fixed by the host's command stream and the
//! cross-channel event merge orders by `(cycle, channel, seq)` — keys
//! no scheduler can perturb (see `simkit::par` and DESIGN.md §11).
//!
//! The sweep also pins the fault-injection oracle under `threads=4`:
//! every scenario stays byte-exact against the software golden path and
//! reproduces the exact trace of the sequential run.

use cache::CacheConfig;
use platforms::{run_server_with_telemetry, PlatformKind, UlpKind, WorkloadConfig};
use simkit::telemetry::Registry;
use simkit::{DetRng, FaultPlan};
use smartdimm::{FaultOracle, HostConfig, OffloadOp};

/// Coarse interleave: whole pages pin to one channel, which is what
/// lets non-size-preserving deflate offloads run on a 4-channel system.
const COARSE: usize = 64;

/// Renders the 4-channel TLS + deflate workloads into one snapshot with
/// the given shard-settle worker count.
fn snapshot_with_threads(threads: usize) -> String {
    let mut reg = Registry::new();
    let tls = WorkloadConfig {
        message_bytes: 4096,
        connections: 16,
        requests: 64,
        ulp: UlpKind::Tls,
        llc: Some(CacheConfig::mb(2, 16)),
        channels: 4,
        channel_interleave_lines: 1, // fine: every offload stripes across shards
        threads,
        ..WorkloadConfig::default()
    };
    run_server_with_telemetry(PlatformKind::SmartDimm, &tls, reg.scope("server.tls_ch4"));
    let deflate = WorkloadConfig {
        ulp: UlpKind::Compression,
        channel_interleave_lines: COARSE,
        ..tls
    };
    run_server_with_telemetry(
        PlatformKind::SmartDimm,
        &deflate,
        reg.scope("server.deflate_ch4"),
    );
    reg.snapshot()
}

#[test]
fn thread_count_never_changes_the_snapshot() {
    let sequential = snapshot_with_threads(1);
    assert!(sequential.contains("\"schema\": \"telemetry/v1\""));
    // The deterministic par counters must be present (and identical
    // across thread counts); scheduler stats must not leak in.
    assert!(sequential.contains("sync_points"));
    assert!(sequential.contains("settled_lines"));
    assert!(sequential.contains("merged_events"));
    assert!(!sequential.contains("steals"));
    for threads in [2usize, 4] {
        let parallel = snapshot_with_threads(threads);
        assert_eq!(
            sequential, parallel,
            "threads=1 vs threads={threads} snapshots diverged"
        );
    }
}

#[test]
fn perturbed_seed_actually_moves_the_snapshot() {
    // Guard against the byte-compare above being vacuous: a different
    // connection-scheduling seed must change at least one metric.
    let mut reg = Registry::new();
    let cfg = WorkloadConfig {
        message_bytes: 4096,
        connections: 16,
        requests: 64,
        ulp: UlpKind::Tls,
        llc: Some(CacheConfig::mb(2, 16)),
        channels: 4,
        channel_interleave_lines: 1,
        threads: 4,
        seed: 2, // perturbed (default is 1)
        ..WorkloadConfig::default()
    };
    run_server_with_telemetry(PlatformKind::SmartDimm, &cfg, reg.scope("server.tls_ch4"));
    let perturbed = reg.snapshot();
    let base = snapshot_with_threads(4);
    let base_tls = base
        .split("\"deflate_ch4\"")
        .next()
        .expect("base snapshot has the TLS scope");
    assert!(!base_tls.is_empty());
    assert_ne!(
        base, perturbed,
        "seed perturbation left the snapshot unchanged"
    );
}

/// One seeded fault plan driven through the differential oracle with
/// the given worker count; returns the reproducibility trace.
fn oracle_trace(seed: u64, threads: usize) -> Vec<String> {
    const OPS: u64 = 5;
    let mut cfg = HostConfig::default();
    cfg.dimm.scratchpad_pages = 8;
    cfg.dimm.xlat_entries = 48;
    cfg.dimm.cam_entries = 4;
    cfg.threads = threads;
    let plan = FaultPlan::generate(seed, OPS);
    let mut oracle = FaultOracle::new(cfg, plan);
    let mut rng = DetRng::new(seed ^ 0x9A7);
    let key = [0x5Du8; 16];
    for i in 0..OPS {
        let size = 64 + rng.gen_range(0..8000) as usize;
        let msg = ulp_compress::corpus::text(size, rng.gen_range(0..u64::MAX));
        let mut iv = [0u8; 12];
        iv[..8].copy_from_slice(&(seed * 31 + i).to_le_bytes());
        let op = if rng.gen_bool(0.5) {
            OffloadOp::TlsEncrypt { key, iv }
        } else {
            OffloadOp::TlsDecrypt { key, iv }
        };
        // `check` panics on any byte mismatch vs the software oracle.
        oracle.check(op, &msg, b"hdr9A7");
        oracle.assert_occupancy_bound();
    }
    let mut trace = oracle.fired_log();
    trace.extend(oracle.recoveries().iter().map(|r| format!("{r:?}")));
    trace.push(format!(
        "force_recycles={}",
        oracle.organic_force_recycles()
    ));
    trace.push(format!("stats={:?}", oracle.host().device_stats()));
    trace
}

#[test]
fn fault_oracle_sweep_is_thread_count_invariant() {
    let mut fired_any = 0u64;
    for seed in 0..12u64 {
        let parallel = oracle_trace(seed, 4);
        let sequential = oracle_trace(seed, 1);
        assert_eq!(
            sequential, parallel,
            "seed {seed}: fault trace diverged between threads=1 and threads=4"
        );
        fired_any += (parallel.len() > 2) as u64;
    }
    // The sweep must actually have injected faults, not vacuously passed.
    assert!(fired_any >= 3, "only {fired_any}/12 plans fired any fault");
}
