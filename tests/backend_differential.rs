//! Differential fidelity harness: every committed workload runs on both
//! memory backends — the cycle-accurate FR-FCFS [`dram::DramSystem`]
//! (fidelity tier 0) and the fixed-latency + per-channel-FIFO
//! [`dram::FastDramSystem`] (tier 1) — and must agree:
//!
//! * **byte-identical payloads** — ciphertexts, tags, compressed and
//!   decompressed bytes never depend on the timing model,
//! * **identical functional stats** — offload/bounce/reject counts,
//!   fault-recovery counters and CAS command counts are a property of
//!   the protocol state machines, not of bank timing,
//! * **timing stats within a committed tolerance band** — the fast
//!   tier's service times equal the accurate controller's steady-state
//!   issue spacing (`tCL+tBURST` / `tCWL+tBURST`), so simulated cycle
//!   counts track closely; the bands below are measured and documented
//!   in DESIGN.md ("Memory backend fidelity tiers"),
//! * **fast-mode determinism** — same-seed fast runs produce
//!   byte-identical telemetry snapshots (the simlint DET rules apply to
//!   the fast backend exactly as to the accurate one).

use dram::DramTopology;
use memsys::BackendKind;
use simkit::telemetry::Registry;
use simkit::FaultPlan;
use smartdimm::{CompCpyHost, FaultOracle, HostConfig, OffloadOp};
use ulp_crypto::gcm::AesGcm;

/// 64 lines per channel: page-granular (coarse) channel rotation.
const COARSE: usize = 64;

const BACKENDS: [BackendKind; 2] = [BackendKind::CycleAccurate, BackendKind::FastQueue];

/// Committed tolerance band for simulated end-of-run time: the fast
/// tier must land within this factor of the accurate backend's `now`.
/// Measured on the sweeps below it runs 5-8% *short* (ratio 0.92-0.95:
/// it drops tRCD/tRP on row misses and tREFI refresh stalls); the band
/// leaves margin for workload drift without letting the tiers diverge
/// past what tier 1 promises.
const NOW_RATIO_BAND: (f64, f64) = (0.85, 1.05);

/// Committed tolerance band for per-channel busy-cycle totals. The fast
/// tier books the *full* service time (`tCL+tBURST` = 26 cycles per
/// read) as channel occupancy while the accurate controller books only
/// the data-burst cycles (`tBURST` = 4), so fast "busy" sits a little
/// under `service/burst` = 6.5x higher by construction (measured
/// 4.9-5.8x). This is a semantic difference, not drift — see DESIGN.md.
const BUSY_RATIO_BAND: (f64, f64) = (4.0, 6.5);

fn host_for(backend: BackendKind, channels: usize, interleave: usize) -> CompCpyHost {
    let mut cfg = HostConfig::default();
    cfg.mem.backend = backend;
    cfg.mem.dram.topology = DramTopology {
        channels,
        channel_interleave_lines: interleave,
        ..DramTopology::default()
    };
    CompCpyHost::new(cfg)
}

/// Everything one workload run produces, split into the payload bytes
/// (must match exactly), the functional counters (must match exactly)
/// and the timing stats (must match within the committed bands).
#[derive(Debug, PartialEq)]
struct Functional {
    payloads: Vec<Vec<u8>>,
    bounced_offloads: u64,
    force_recycles: u64,
    injected_faults: u64,
    rd_cas: u64,
    wr_cas: u64,
    alert_retries: u64,
}

#[derive(Debug)]
struct TimingStats {
    now: u64,
    busy: u64,
}

fn collect(host: &mut CompCpyHost, payloads: Vec<Vec<u8>>) -> (Functional, TimingStats) {
    let channels = host.channels();
    let dram = host.mem().dram();
    let functional = Functional {
        payloads,
        bounced_offloads: host.bounced_offload_count(),
        force_recycles: host.force_recycle_count(),
        injected_faults: host.injected_fault_count(),
        rd_cas: dram.stats().rd_cas.value(),
        wr_cas: dram.stats().wr_cas.value(),
        alert_retries: dram.stats().retries.value(),
    };
    let timing = TimingStats {
        now: dram.now().raw(),
        busy: (0..channels).map(|c| dram.channel_busy_cycles(c)).sum(),
    };
    (functional, timing)
}

/// Seals `size` bytes through the offload path, verifies against
/// software AES-GCM, and returns ciphertext + tag for cross-backend
/// comparison.
fn tls_offload(host: &mut CompCpyHost, size: usize, aad: &[u8], seed: u64) -> Vec<Vec<u8>> {
    let pages = size.div_ceil(4096);
    let src = host.alloc_pages(pages);
    let dst = host.alloc_pages(pages);
    let msg = ulp_compress::corpus::html(size, seed);
    host.mem_mut().store(src, &msg, 0);
    let key = [0x2Au8; 16];
    let iv = [seed as u8; 12];
    let handle = host
        .comp_cpy_with_aad(
            dst,
            src,
            size,
            OffloadOp::TlsEncrypt { key, iv },
            aad,
            false,
            0,
        )
        .expect("offload accepted");
    let ct = host.use_buffer(&handle);
    let tag = host.tag(&handle).expect("tag available");
    let (want_ct, want_tag) = AesGcm::new_128(&key).seal(&iv, aad, &msg);
    assert_eq!(ct, want_ct, "ciphertext vs software ({size}B, seed {seed})");
    assert_eq!(tag, want_tag, "tag vs software ({size}B, seed {seed})");
    vec![ct, tag.to_vec()]
}

/// The TLS workload of the multi-channel sweep: mixed sizes, enough
/// offloads to rotate through every channel (and bounce on coarse
/// multi-channel hosts).
fn run_tls_sweep(
    backend: BackendKind,
    channels: usize,
    interleave: usize,
) -> (Functional, TimingStats) {
    let mut host = host_for(backend, channels, interleave);
    let mut payloads = Vec::new();
    for seed in 0..6u64 {
        let size = 2048 + (seed * 1777) as usize % 6000;
        payloads.extend(tls_offload(&mut host, size, b"diff", 40 + seed));
    }
    collect(&mut host, payloads)
}

/// Deflate compress + cross-channel decompress round trip.
fn run_deflate_sweep(backend: BackendKind, channels: usize) -> (Functional, TimingStats) {
    let mut host = host_for(backend, channels, COARSE);
    let mut payloads = Vec::new();
    for seed in 0..3u64 {
        let page = ulp_compress::corpus::html(4096, 70 + seed);
        let src = host.alloc_pages(1);
        let dst = host.alloc_pages(1);
        host.mem_mut().store(src, &page, 0);
        let handle = host
            .comp_cpy(dst, src, 4096, OffloadOp::Compress, true, 0)
            .expect("compression accepted");
        let compressed = host.use_buffer(&handle);
        assert_eq!(
            ulp_compress::inflate::decompress(&compressed).expect("valid deflate"),
            page,
            "compression corrupted (seed {seed})"
        );
        let csrc = host.alloc_pages(1);
        let cdst = host.alloc_pages(1);
        host.mem_mut().store(csrc, &compressed, 0);
        let handle = host
            .comp_cpy(cdst, csrc, compressed.len(), OffloadOp::Decompress, true, 0)
            .expect("decompression accepted");
        let restored = host.use_buffer(&handle);
        assert_eq!(restored, page, "decompress round trip (seed {seed})");
        payloads.push(compressed);
        payloads.push(restored);
    }
    collect(&mut host, payloads)
}

/// The 12-seed fault-injection oracle sweep from `tests/multichannel.rs`
/// on a selectable backend. `oracle.check` panics on any byte divergence
/// from the software golden path, so a green run *is* the payload check.
fn run_fault_sweep(backend: BackendKind, seed: u64) -> (Functional, TimingStats) {
    let plan = FaultPlan::generate(seed, 4);
    let mut cfg = HostConfig::default();
    cfg.mem.backend = backend;
    cfg.mem.dram.topology = DramTopology {
        channels: 2,
        channel_interleave_lines: COARSE,
        ..DramTopology::default()
    };
    cfg.dimm.scratchpad_pages = 16;
    cfg.dimm.xlat_entries = 64;
    cfg.dimm.cam_entries = 4;
    let mut oracle = FaultOracle::new(cfg, plan);
    let key = [0x5Cu8; 16];
    for i in 0..4u64 {
        let size = 600 + (seed * 977 + i * 4099) as usize % 7000;
        let msg = ulp_compress::corpus::text(size, seed * 31 + i);
        let mut iv = [0u8; 12];
        iv[..8].copy_from_slice(&(seed * 100 + i).to_le_bytes());
        oracle.check(OffloadOp::TlsEncrypt { key, iv }, &msg, b"hdr#f");
        oracle.assert_occupancy_bound();
    }
    assert!(
        oracle.host().bounced_offload_count() >= 1,
        "seed {seed}: no offload exercised the bounce path"
    );
    // FaultOracle owns the host; collect through its accessor.
    let host = oracle.host();
    let channels = host.channels();
    let dram = host.mem().dram();
    let functional = Functional {
        payloads: Vec::new(), // oracle.check already compared every byte
        bounced_offloads: host.bounced_offload_count(),
        force_recycles: host.force_recycle_count(),
        injected_faults: host.injected_fault_count(),
        rd_cas: dram.stats().rd_cas.value(),
        wr_cas: dram.stats().wr_cas.value(),
        alert_retries: dram.stats().retries.value(),
    };
    let timing = TimingStats {
        now: dram.now().raw(),
        busy: (0..channels).map(|c| dram.channel_busy_cycles(c)).sum(),
    };
    (functional, timing)
}

fn assert_timing_in_band(label: &str, acc: &TimingStats, fast: &TimingStats) {
    let now_ratio = fast.now as f64 / acc.now as f64;
    assert!(
        (NOW_RATIO_BAND.0..=NOW_RATIO_BAND.1).contains(&now_ratio),
        "{label}: fast `now` {} vs accurate {} (ratio {now_ratio:.3}) outside {NOW_RATIO_BAND:?}",
        fast.now,
        acc.now
    );
    let busy_ratio = fast.busy as f64 / acc.busy as f64;
    assert!(
        (BUSY_RATIO_BAND.0..=BUSY_RATIO_BAND.1).contains(&busy_ratio),
        "{label}: fast busy {} vs accurate {} (ratio {busy_ratio:.3}) outside {BUSY_RATIO_BAND:?}",
        fast.busy,
        acc.busy
    );
}

#[test]
fn tls_sweeps_agree_across_backends() {
    // 1/2/4-channel sweeps, fine and coarse interleave: payload bytes
    // and every functional counter identical, timing within band.
    for (channels, interleave) in [(1, 1), (2, 1), (2, COARSE), (4, COARSE)] {
        let label = format!("tls ch{channels} il{interleave}");
        let (acc_fn, acc_t) = run_tls_sweep(BackendKind::CycleAccurate, channels, interleave);
        let (fast_fn, fast_t) = run_tls_sweep(BackendKind::FastQueue, channels, interleave);
        assert_eq!(acc_fn, fast_fn, "{label}: functional divergence");
        assert_timing_in_band(&label, &acc_t, &fast_t);
    }
}

#[test]
fn deflate_sweep_agrees_across_backends() {
    for channels in [1, 2] {
        let label = format!("deflate ch{channels}");
        let (acc_fn, acc_t) = run_deflate_sweep(BackendKind::CycleAccurate, channels);
        let (fast_fn, fast_t) = run_deflate_sweep(BackendKind::FastQueue, channels);
        assert_eq!(acc_fn, fast_fn, "{label}: functional divergence");
        assert_timing_in_band(&label, &acc_t, &fast_t);
    }
}

#[test]
fn fault_injected_oracle_seeds_agree_across_backends() {
    // The full 12-seed fault-recovery sweep on *both* backends: the
    // oracle asserts byte-exactness internally; across backends the
    // recovery counters (injected faults, bounces, recycles) and CAS
    // command counts must be identical — fault handling is protocol
    // state, not timing.
    let mut total_faults = 0;
    for seed in 0..12u64 {
        let (acc_fn, acc_t) = run_fault_sweep(BackendKind::CycleAccurate, seed);
        let (fast_fn, fast_t) = run_fault_sweep(BackendKind::FastQueue, seed);
        total_faults += fast_fn.injected_faults;
        assert_eq!(acc_fn, fast_fn, "seed {seed}: functional divergence");
        assert_timing_in_band(&format!("fault seed {seed}"), &acc_t, &fast_t);
    }
    assert!(total_faults > 0, "12-seed sweep injected no faults at all");
}

/// Runs a fixed fast-mode workload and snapshots the full telemetry
/// registry (host counters, per-channel shards, memory hierarchy,
/// backend identity).
fn fast_snapshot(channels: usize, interleave: usize) -> String {
    let mut host = host_for(BackendKind::FastQueue, channels, interleave);
    for seed in 0..4u64 {
        let size = 1024 + (seed * 2333) as usize % 5000;
        tls_offload(&mut host, size, b"det", 90 + seed);
    }
    let mut reg = Registry::new();
    host.export_telemetry(reg.scope("host"));
    reg.snapshot()
}

#[test]
fn fast_mode_same_seed_runs_are_byte_identical() {
    for (channels, interleave) in [(1, 1), (2, COARSE), (4, COARSE)] {
        let a = fast_snapshot(channels, interleave);
        let b = fast_snapshot(channels, interleave);
        assert_eq!(
            a, b,
            "fast {channels}-channel (interleave {interleave}) snapshots diverged"
        );
    }
}

#[test]
fn snapshots_carry_backend_identity() {
    // Every snapshot names its backend and fidelity tier so archived
    // telemetry can never be compared across tiers by accident.
    for (backend, tier, name) in [
        (BackendKind::CycleAccurate, 0u64, "\"cycle_accurate\""),
        (BackendKind::FastQueue, 1u64, "\"fast_queue\""),
    ] {
        let mut host = host_for(backend, 1, 1);
        tls_offload(&mut host, 4096, b"id", 7);
        let mut reg = Registry::new();
        host.export_telemetry(reg.scope("host"));
        let snap = reg.snapshot();
        assert!(snap.contains("\"backend\""), "{backend}: no backend scope");
        assert!(snap.contains(name), "{backend}: identity counter missing");
        let tier_line =
            format!("\"fidelity_tier\": {{ \"kind\": \"counter\", \"value\": {tier} }}");
        assert!(
            snap.contains(&tier_line),
            "{backend}: fidelity_tier {tier} missing from snapshot"
        );
        // The two-backend list above is exhaustive; a run can only carry
        // one identity.
        let other = if tier == 0 {
            "\"fast_queue\""
        } else {
            "\"cycle_accurate\""
        };
        assert!(!snap.contains(other), "{backend}: carries both identities");
    }
}

#[test]
fn backends_disagree_only_inside_the_band() {
    // Sanity-pin the band constants themselves: the fast tier must not
    // be "accurate by accident" (busy semantics differ by design), and
    // the bands must stay real intervals.
    assert!(NOW_RATIO_BAND.0 < NOW_RATIO_BAND.1);
    assert!(BUSY_RATIO_BAND.0 < BUSY_RATIO_BAND.1);
    assert!(BACKENDS[0] != BACKENDS[1]);
    let (_, acc_t) = run_tls_sweep(BACKENDS[0], 2, COARSE);
    let (_, fast_t) = run_tls_sweep(BACKENDS[1], 2, COARSE);
    assert_ne!(
        acc_t.busy, fast_t.busy,
        "busy-cycle semantics are documented as different; identical values \
         mean the fast tier silently started emulating burst accounting"
    );
}
