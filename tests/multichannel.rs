//! Multi-channel scale-out (§V-D): per-channel SmartDIMM shards behind
//! one `CompCpyHost`, with cross-channel sbuf/dbuf pairs routed through
//! a phase-matched bounce buffer.
//!
//! Under *coarse* interleave (≥ 64 consecutive cachelines per channel)
//! whole pages map to one channel and consecutive pages rotate channels,
//! so a source page and its destination page can land on different
//! SmartDIMMs. A shard only ever sees the CAS traffic of its own
//! channel, so the driver stages such offloads into a bounce region at
//! the same phase of the interleave period as the source and copies out
//! once the device completes. Every path must stay byte-exact against
//! the software golden path and deterministic across same-seed runs.

use dram::DramTopology;
use simkit::telemetry::Registry;
use simkit::FaultPlan;
use smartdimm::{CompCpyHost, FaultOracle, HostConfig, OffloadOp};
use ulp_crypto::gcm::AesGcm;

/// 64 lines per channel: page-granular (coarse) channel rotation.
const COARSE: usize = 64;

fn host_with(channels: usize, interleave: usize) -> CompCpyHost {
    let mut cfg = HostConfig::default();
    cfg.mem.dram.topology = DramTopology {
        channels,
        channel_interleave_lines: interleave,
        ..DramTopology::default()
    };
    CompCpyHost::new(cfg)
}

/// Encrypts `size` bytes and checks ciphertext + tag against software
/// AES-GCM. Returns how many offloads the host bounced so far.
fn tls_round_trip(host: &mut CompCpyHost, size: usize, aad: &[u8], seed: u64) -> u64 {
    let pages = size.div_ceil(4096);
    let src = host.alloc_pages(pages);
    let dst = host.alloc_pages(pages);
    let msg = ulp_compress::corpus::html(size, seed);
    host.mem_mut().store(src, &msg, 0);
    let key = [0x2Au8; 16];
    let iv = [seed as u8; 12];
    let handle = host
        .comp_cpy_with_aad(
            dst,
            src,
            size,
            OffloadOp::TlsEncrypt { key, iv },
            aad,
            false,
            0,
        )
        .expect("offload accepted");
    let ct = host.use_buffer(&handle);
    let tag = host.tag(&handle).expect("tag available");
    let gcm = AesGcm::new_128(&key);
    let (want_ct, want_tag) = gcm.seal(&iv, aad, &msg);
    assert_eq!(ct, want_ct, "ciphertext ({size}B, seed {seed})");
    assert_eq!(tag, want_tag, "tag ({size}B, seed {seed})");
    host.bounced_offload_count()
}

#[test]
fn cross_channel_tls_two_channels_coarse() {
    // One page per buffer: consecutive page allocations land on
    // alternating channels, so sbuf and dbuf are guaranteed to sit on
    // *different* SmartDIMMs.
    let mut host = host_with(2, COARSE);
    let bounced = tls_round_trip(&mut host, 4096, b"hdr#1", 1);
    assert!(bounced >= 1, "cross-channel pair must take the bounce path");
}

#[test]
fn cross_channel_tls_multi_page() {
    // Three pages: src pages occupy channels (k, k+1, k+2) mod 2 and dst
    // pages start at an odd page offset, so every page pair is
    // phase-mismatched. The partial engines on both shards must combine.
    let mut host = host_with(2, COARSE);
    tls_round_trip(&mut host, 3 * 4096, b"hdr#3", 2);
    tls_round_trip(&mut host, 2 * 4096 + 100, b"", 3);
}

#[test]
fn cross_channel_tls_four_channels() {
    let mut host = host_with(4, COARSE);
    let mut bounced = 0;
    for seed in 0..4 {
        bounced = tls_round_trip(&mut host, 4096, b"hd", 10 + seed);
    }
    assert!(bounced >= 1, "some pair must have crossed channels");
    // Repeated single-page offloads rotate through all four channels.
    let active = (0..4)
        .filter(|&c| host.device_on(c).stats().dsa_lines > 0)
        .count();
    assert!(active >= 2, "only {active} of 4 shards processed lines");
}

#[test]
fn cross_channel_compression_round_trip() {
    let mut host = host_with(2, COARSE);
    let page = ulp_compress::corpus::html(4096, 7);
    let src = host.alloc_pages(1);
    let dst = host.alloc_pages(1); // opposite channel from src
    host.mem_mut().store(src, &page, 0);
    let handle = host
        .comp_cpy(dst, src, 4096, OffloadOp::Compress, true, 0)
        .expect("coarse interleave keeps the source on one channel");
    let compressed = host.use_buffer(&handle);
    assert!(host.bounced_offload_count() >= 1);
    assert_eq!(
        ulp_compress::inflate::decompress(&compressed).expect("valid deflate stream"),
        page,
        "compressed output corrupted by the bounce path"
    );

    // And back: decompress across channels too.
    let csrc = host.alloc_pages(1);
    let cdst = host.alloc_pages(1);
    host.mem_mut().store(csrc, &compressed, 0);
    let handle = host
        .comp_cpy(cdst, csrc, compressed.len(), OffloadOp::Decompress, true, 0)
        .expect("decompression accepted");
    let restored = host.use_buffer(&handle);
    assert_eq!(restored, page, "decompression round trip");
}

#[test]
fn fine_interleave_still_rejects_compression() {
    // Fine interleave splits every page across channels: there is no
    // sole channel for the source, so non-size-preserving offloads stay
    // rejected (the pre-existing §V-D restriction).
    let mut host = host_with(2, 1);
    let src = host.alloc_pages(1);
    let dst = host.alloc_pages(1);
    host.mem_mut().store(src, &[7u8; 4096], 0);
    assert_eq!(
        host.comp_cpy(dst, src, 4096, OffloadOp::Compress, true, 0),
        Err(smartdimm::CompCpyError::SingleChannelOnly)
    );
}

#[test]
fn cross_channel_offloads_under_fault_injection() {
    // Seeded fault plans against a starved 2-channel coarse-interleave
    // host: the oracle allocates src and dst consecutively, so
    // odd-page-count buffers produce cross-channel pairs. Every scenario
    // must stay byte-exact (oracle.check panics otherwise).
    for seed in 0..12u64 {
        let plan = FaultPlan::generate(seed, 4);
        let mut cfg = HostConfig::default();
        cfg.mem.dram.topology = DramTopology {
            channels: 2,
            channel_interleave_lines: COARSE,
            ..DramTopology::default()
        };
        cfg.dimm.scratchpad_pages = 16;
        cfg.dimm.xlat_entries = 64;
        cfg.dimm.cam_entries = 4;
        let mut oracle = FaultOracle::new(cfg, plan);
        let key = [0x5Cu8; 16];
        for i in 0..4u64 {
            let size = 600 + (seed * 977 + i * 4099) as usize % 7000;
            let msg = ulp_compress::corpus::text(size, seed * 31 + i);
            let mut iv = [0u8; 12];
            iv[..8].copy_from_slice(&(seed * 100 + i).to_le_bytes());
            oracle.check(OffloadOp::TlsEncrypt { key, iv }, &msg, b"hdr#f");
            oracle.assert_occupancy_bound();
        }
        assert!(
            oracle.host().bounced_offload_count() >= 1,
            "seed {seed}: no offload exercised the bounce path"
        );
    }
}

#[test]
fn cross_channel_fault_recovery_on_the_fast_backend() {
    // The same 12-seed sweep on the fast fixed-latency backend
    // (fidelity tier 1): cross-channel bounce staging, fault injection
    // and `finish_bounce` retries are protocol logic above the memory
    // model, so every scenario must stay byte-exact there too. The
    // differential harness (tests/backend_differential.rs) additionally
    // pins the recovery counters equal across backends.
    for seed in 0..12u64 {
        let plan = FaultPlan::generate(seed, 4);
        let mut cfg = HostConfig::default();
        cfg.mem.backend = memsys::BackendKind::FastQueue;
        cfg.mem.dram.topology = DramTopology {
            channels: 2,
            channel_interleave_lines: COARSE,
            ..DramTopology::default()
        };
        cfg.dimm.scratchpad_pages = 16;
        cfg.dimm.xlat_entries = 64;
        cfg.dimm.cam_entries = 4;
        let mut oracle = FaultOracle::new(cfg, plan);
        let key = [0x5Cu8; 16];
        for i in 0..4u64 {
            let size = 600 + (seed * 977 + i * 4099) as usize % 7000;
            let msg = ulp_compress::corpus::text(size, seed * 31 + i);
            let mut iv = [0u8; 12];
            iv[..8].copy_from_slice(&(seed * 100 + i).to_le_bytes());
            oracle.check(OffloadOp::TlsEncrypt { key, iv }, &msg, b"hdr#f");
            oracle.assert_occupancy_bound();
        }
        assert!(
            oracle.host().bounced_offload_count() >= 1,
            "seed {seed}: no offload exercised the bounce path on the fast backend"
        );
    }
}

/// Runs a fixed multi-channel workload and snapshots its telemetry.
fn channel_snapshot(channels: usize, interleave: usize) -> String {
    let mut host = host_with(channels, interleave);
    for seed in 0..6u64 {
        let size = 2048 + (seed * 1777) as usize % 6000;
        tls_round_trip(&mut host, size, b"det", 40 + seed);
    }
    let mut reg = Registry::new();
    host.export_telemetry(reg.scope("host"));
    reg.snapshot()
}

#[test]
fn multi_channel_same_seed_runs_are_byte_identical() {
    for (channels, interleave) in [(2, 1), (2, COARSE), (4, COARSE)] {
        let a = channel_snapshot(channels, interleave);
        let b = channel_snapshot(channels, interleave);
        assert_eq!(
            a, b,
            "{channels}-channel (interleave {interleave}) snapshots diverged"
        );
        // Per-channel sub-scopes must be present in the export.
        for c in 0..channels {
            assert!(a.contains(&format!("\"channel{c}\"")), "missing channel{c}");
        }
        for sub in ["\"device\"", "\"scratchpad\"", "\"xlat\""] {
            assert!(a.contains(sub), "missing {sub} sub-scope");
        }
    }
}
