//! `smartdimm-suite` is the workspace umbrella crate: it hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`) for the SmartDIMM reproduction.
//!
//! The library surface re-exports the workspace's entry points so the
//! examples and downstream users need a single dependency:
//!
//! ```
//! use smartdimm_suite::prelude::*;
//!
//! let mut host = CompCpyHost::new(HostConfig::default());
//! let src = host.alloc_pages(1);
//! let dst = host.alloc_pages(1);
//! host.mem_mut().store(src, &[0x5A; 4096], 0);
//! let handle = host
//!     .comp_cpy(dst, src, 4096, OffloadOp::Compress, true, 0)
//!     .expect("offload accepted");
//! let compressed = host.use_buffer(&handle);
//! assert!(ulp_compress::inflate::decompress(&compressed).is_ok());
//! ```

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use platforms::{run_server, PlatformKind, ServerMetrics, UlpKind, WorkloadConfig};
    pub use smartdimm::{
        AdaptivePolicy, CompCpyHost, HostConfig, OffloadHandle, OffloadOp, Placement,
    };
}
