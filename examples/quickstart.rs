//! Quickstart: offload TLS encryption of one page to SmartDIMM and check
//! the result against software AES-GCM.
//!
//! Run with: `cargo run --release --example quickstart`

use smartdimm::{CompCpyHost, HostConfig, OffloadOp};
use ulp_crypto::gcm::AesGcm;

fn main() {
    // A simulated server: LLC + DDR4 memory system with a SmartDIMM
    // installed on channel 0, plus the CompCpy driver state.
    let mut host = CompCpyHost::new(HostConfig::default());

    // Allocate page-aligned source/destination buffers from the driver.
    let sbuf = host.alloc_pages(1);
    let dbuf = host.alloc_pages(1);

    // Put a plaintext page in memory (through the cache, like any app).
    let message = ulp_compress::corpus::text(4096, 42);
    host.mem_mut().store(sbuf, &message, 0);

    // CompCpy: copy sbuf -> dbuf while the DIMM's DSA encrypts it.
    let key = [0x42u8; 16];
    let iv = [0x07u8; 12];
    let handle = host
        .comp_cpy(
            dbuf,
            sbuf,
            message.len(),
            OffloadOp::TlsEncrypt { key, iv },
            false,
            0,
        )
        .expect("offload accepted");

    // USE: flush dbuf (self-recycling the Scratchpad) and read the result.
    let ciphertext = host.use_buffer(&handle);
    let tag = host.tag(&handle).expect("offload complete");

    // The near-memory result is bit-exact with software AES-GCM.
    let gcm = AesGcm::new_128(&key);
    let (expect_ct, expect_tag) = gcm.seal(&iv, b"", &message);
    assert_eq!(ciphertext, expect_ct);
    assert_eq!(tag, expect_tag);

    let stats = host.device_stats();
    println!("SmartDIMM quickstart");
    println!("  message bytes        : {}", message.len());
    println!("  ciphertext verified  : true");
    println!("  tag verified         : true");
    println!("  DSA cachelines       : {}", stats.dsa_lines);
    println!("  self-recycled lines  : {}", stats.self_recycles);
    println!("  force-recycle calls  : {}", host.force_recycle_count());
    println!(
        "  simulated time       : {:.2} µs",
        host.mem().now().raw() as f64 / 1600.0
    );
}
