//! Compression offload scenario (§V-B/§V-C): compress HTTP response
//! pages near memory, page by page, and verify every compressed page
//! with the software inflater. Also shows the incompressible-page
//! fallback and the decompression direction.
//!
//! Run with: `cargo run --release --example compression_offload`

use smartdimm::{CompCpyHost, HostConfig, OffloadOp};
use ulp_compress::{corpus, inflate};

fn main() {
    let mut host = CompCpyHost::new(HostConfig::default());

    // A 16 KB HTTP response body: compressed at 4 KB page granularity,
    // one CompCpy per page (§V-C), each page written to the socket
    // individually.
    let body = corpus::html(16 * 1024, 7);
    println!(
        "compressing a {} byte response page-by-page on SmartDIMM:",
        body.len()
    );
    let mut total_out = 0usize;
    for (pg, page) in body.chunks(4096).enumerate() {
        let src = host.alloc_pages(1);
        let dst = host.alloc_pages(1);
        host.mem_mut().store(src, page, 0);
        let handle = host
            .comp_cpy(dst, src, page.len(), OffloadOp::Compress, true, 0)
            .expect("offload accepted");
        let compressed = host.use_buffer(&handle);
        let restored = inflate::decompress(&compressed).expect("valid deflate stream");
        assert_eq!(restored, page);
        total_out += compressed.len();
        println!(
            "  page {pg}: {} -> {} bytes ({:.1}%), verified by software inflate",
            page.len(),
            compressed.len(),
            100.0 * compressed.len() as f64 / page.len() as f64
        );
    }
    println!(
        "total: {} -> {} bytes ({:.1}%)\n",
        body.len(),
        total_out,
        100.0 * total_out as f64 / body.len() as f64
    );

    // Incompressible content falls back to the raw page (the output must
    // never outgrow the registered destination pages).
    let noise = corpus::random(4096, 9);
    let src = host.alloc_pages(1);
    let dst = host.alloc_pages(1);
    host.mem_mut().store(src, &noise, 0);
    let handle = host
        .comp_cpy(dst, src, noise.len(), OffloadOp::Compress, true, 0)
        .expect("offload accepted");
    let out = host.use_buffer(&handle);
    let status = host.read_result(&handle).status;
    println!(
        "incompressible page: status {status:?}, output {} bytes (raw)",
        out.len()
    );
    assert_eq!(out, noise);

    // Decompression direction: inflate a compressed page near memory.
    let page = corpus::json(4096, 3);
    let compressed = ulp_compress::deflate::compress(&page);
    let src = host.alloc_pages(1);
    let dst = host.alloc_pages(1);
    host.mem_mut().store(src, &compressed, 0);
    let handle = host
        .comp_cpy(dst, src, compressed.len(), OffloadOp::Decompress, true, 0)
        .expect("offload accepted");
    let restored = host.use_buffer(&handle);
    assert_eq!(restored, page);
    println!(
        "decompression: {} -> {} bytes near memory, verified",
        compressed.len(),
        restored.len()
    );

    let stats = host.device_stats();
    println!(
        "\ndevice totals: {} offloads, {} DSA cachelines, {} self-recycles",
        stats.offloads_completed, stats.dsa_lines, stats.self_recycles
    );
}
