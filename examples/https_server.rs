//! An HTTPS web-server scenario: compare the four accelerator placements
//! of the paper on the same TLS workload and print a Fig. 11-style
//! summary, then demonstrate the full TLS 1.3 record path end to end.
//!
//! Run with: `cargo run --release --example https_server`

use cache::CacheConfig;
use netsim::http::{Request, Response};
use platforms::{run_server, PlatformKind, UlpKind, WorkloadConfig};
use ulp_crypto::tls::RecordLayer;

fn main() {
    // 1. A full HTTPS request/response over the TLS 1.3 record layer.
    let secret = [0x33u8; 32];
    let mut client_tx = RecordLayer::new(&secret);
    let mut server_rx = RecordLayer::new(&secret);
    let mut server_tx = RecordLayer::new(&secret);
    let mut client_rx = RecordLayer::new(&secret);

    let request = Request::get("/index.html").to_bytes();
    let record = client_tx.encrypt(&request).expect("encrypt request");
    let (_, plain) = server_rx.decrypt(&record).expect("decrypt request");
    let parsed = Request::parse(&plain).expect("parse request");
    println!("server received: {} {}", parsed.method, parsed.path);

    let body = ulp_compress::corpus::html(4096, 1);
    let response = Response::ok(body).to_bytes();
    let mut received = Vec::new();
    for rec in server_tx
        .encrypt_stream(&response)
        .expect("encrypt response")
    {
        let (_, part) = client_rx.decrypt(&rec).expect("decrypt response");
        received.extend(part);
    }
    let resp = Response::parse(&received).expect("parse response");
    println!(
        "client received: HTTP {} ({} body bytes)\n",
        resp.status,
        resp.body.len()
    );

    // 2. The paper's comparison: where should the TLS work run?
    let cfg = WorkloadConfig {
        message_bytes: 4096,
        connections: 512,
        requests: 800,
        ulp: UlpKind::Tls,
        llc: Some(CacheConfig::mb(2, 16)), // contended-LLC regime
        ..WorkloadConfig::default()
    };
    println!("HTTPS server, 4KB responses, 512 connections, contended LLC:");
    println!(
        "{:>12} {:>12} {:>10} {:>14}",
        "platform", "RPS", "CPU ns/req", "DRAM bytes/req"
    );
    for kind in [
        PlatformKind::Cpu,
        PlatformKind::SmartNic,
        PlatformKind::QuickAssist,
        PlatformKind::SmartDimm,
    ] {
        let m = run_server(kind, &cfg);
        println!(
            "{:>12} {:>12.0} {:>10.0} {:>14.0}",
            format!("{kind:?}"),
            m.rps,
            m.cpu_ns_per_req,
            m.dram_bytes_per_req
        );
    }
}
