//! The two §IV-E/§V-D extensions working together:
//!
//! 1. **Compute DMA**: a NIC DMAs a TLS-encrypted payload into SmartDIMM
//!    and the DSA decrypts it *as the writes stream in* — zero CPU
//!    copies, zero CPU cipher work.
//! 2. **Channel interleaving**: the same TLS offload on a two-channel
//!    system where consecutive cachelines alternate between two
//!    SmartDIMMs, each computing a partial GHASH that the host combines.
//!
//! Run with: `cargo run --release --example compute_dma`

use dram::DramTopology;
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};
use ulp_crypto::gcm::AesGcm;

fn main() {
    // --- Part 1: Compute DMA (single channel). -------------------------
    let mut host = CompCpyHost::new(HostConfig::default());
    let key = [0x5Eu8; 16];
    let iv = [0x11u8; 12];
    let message = ulp_compress::corpus::json(8192, 3);
    let gcm = AesGcm::new_128(&key);
    let (ciphertext, tag) = gcm.seal(&iv, b"", &message);

    let sbuf = host.alloc_pages(2);
    let dbuf = host.alloc_pages(2);
    let handle = host
        .compute_dma(
            dbuf,
            sbuf,
            ciphertext.len(),
            OffloadOp::TlsDecrypt { key, iv },
            b"",
        )
        .expect("registered");
    // The "NIC": DMA the ciphertext straight through the LLC into DRAM.
    host.mem_mut().dma_write_through(sbuf, &ciphertext);
    let plaintext = host.read_dma_buffer(&handle);
    assert_eq!(plaintext, message);
    assert_eq!(host.tag(&handle), Some(tag));
    let stats = host.device_stats();
    println!("Compute DMA (RX decrypt):");
    println!("  payload              : {} bytes", ciphertext.len());
    println!("  decrypted lines      : {}", stats.dsa_lines);
    println!("  plaintext verified   : true");
    println!("  tag verified         : true");
    println!("  CPU cipher work      : none (fed by DMA writes)\n");

    // --- Part 2: fine-grain channel interleaving (§V-D). ---------------
    let mut cfg = HostConfig::default();
    cfg.mem.dram.topology = DramTopology {
        channels: 2,
        channel_interleave_lines: 1, // alternate every cacheline
        ..DramTopology::default()
    };
    let mut host = CompCpyHost::new(cfg);
    let msg = ulp_compress::corpus::html(16384, 4);
    let src = host.alloc_pages(4);
    let dst = host.alloc_pages(4);
    host.mem_mut().store(src, &msg, 0);
    let iv2 = [0x22u8; 12];
    let handle = host
        .comp_cpy(
            dst,
            src,
            msg.len(),
            OffloadOp::TlsEncrypt { key, iv: iv2 },
            false,
            0,
        )
        .expect("offload accepted");
    let ct = host.use_buffer(&handle);
    let combined_tag = host.tag(&handle).expect("host-combined tag");

    let (want_ct, want_tag) = gcm.seal(&iv2, b"", &msg);
    assert_eq!(ct, want_ct);
    assert_eq!(combined_tag, want_tag);

    println!("Channel-interleaved TLS (2 channels, 1-line granularity):");
    for c in 0..2 {
        let s = host.device_on(c).stats();
        println!(
            "  channel {c}: {} cachelines through its DSA, {} self-recycles",
            s.dsa_lines, s.self_recycles
        );
    }
    println!("  ciphertext verified  : true");
    println!("  combined tag correct : true (partial GHASH ⊕ metadata ⊕ EIV)");
}
