//! Adaptive, per-message offload (§IV, §V-C): the modified OpenSSL engine
//! samples the LLC miss rate and decides — per 4 KB OS page — whether to
//! run the ULP on the CPU or offload it through CompCpy.
//!
//! This example drives the policy through a low-contention phase (few
//! hot buffers) and a high-contention phase (a cache-thrashing co-runner)
//! and shows the placement adapting.
//!
//! Run with: `cargo run --release --example adaptive_offload`

use cache::CacheConfig;
use dram::PhysAddr;
use smartdimm::policy::{AdaptivePolicy, Placement};
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};
use ulp_crypto::gcm::AesGcm;

fn main() {
    let mut cfg = HostConfig::default();
    cfg.mem.llc = Some(CacheConfig::mb(1, 16));
    let mut host = CompCpyHost::new(cfg);
    let mut policy = AdaptivePolicy::new(0.30, 0.10);
    let key = [0x11u8; 16];

    // A thrashing co-runner we can switch on to create LLC contention.
    let mut thrash_cursor = 0u64;
    let mut thrash = |host: &mut CompCpyHost, lines: u64| {
        for i in 0..lines {
            let addr = PhysAddr(0x3000_0000 + ((thrash_cursor + i) % 131_072) * 64);
            let _ = host.mem_mut().load_line(addr, 1);
        }
        thrash_cursor += lines;
    };

    // The application's own hot working set (session state, config) —
    // cache-resident when the system is quiet, so the sampled miss rate
    // drops; evicted under contention, so it rises.
    let hot_work = |host: &mut CompCpyHost| {
        for i in 0..3000u64 {
            let addr = PhysAddr(0x2000_0000 + (i % 2048) * 64); // 128 KB
            let _ = host.mem_mut().load_line(addr, 0);
        }
    };

    println!(
        "{:>6} {:>12} {:>12} {:>11}",
        "msg#", "phase", "miss rate", "placement"
    );
    let mut offloaded = 0usize;
    let mut on_cpu = 0usize;
    for i in 0..60u64 {
        let high_contention = (20..45).contains(&i);
        hot_work(&mut host);
        if high_contention {
            thrash(&mut host, 6000);
        }
        let msg = ulp_compress::corpus::text(4096, i);
        let src = host.alloc_pages(1);
        let dst = host.alloc_pages(1);
        host.mem_mut().store(src, &msg, 0);
        let iv = [i as u8; 12];

        let miss_rate = host.mem().llc().sampled_miss_rate();
        let placement = policy.decide(miss_rate);
        let ciphertext = match placement {
            Placement::SmartDimm => {
                offloaded += 1;
                let handle = host
                    .comp_cpy(
                        dst,
                        src,
                        msg.len(),
                        OffloadOp::TlsEncrypt { key, iv },
                        false,
                        0,
                    )
                    .expect("offload accepted");
                host.use_buffer(&handle)
            }
            Placement::Cpu => {
                on_cpu += 1;
                host.cpu_transform(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    b"",
                    0,
                )
            }
        };
        // Either path must produce identical bytes.
        let (want, _) = AesGcm::new_128(&key).seal(&iv, b"", &msg);
        assert_eq!(ciphertext, want);

        if i % 5 == 0 {
            println!(
                "{:>6} {:>12} {:>12.3} {:>11}",
                i,
                if high_contention {
                    "contended"
                } else {
                    "quiet"
                },
                miss_rate,
                format!("{placement:?}")
            );
        }
    }
    println!(
        "\n{} messages on the CPU, {} offloaded to SmartDIMM, {} placement switches",
        on_cpu,
        offloaded,
        policy.switches()
    );
    assert!(
        offloaded > 0 && on_cpu > 0,
        "the policy must use both placements"
    );
}
