//! `ulp-compress` implements the (de)compression upper-layer protocol that
//! SmartDIMM offloads: the Deflate format (RFC 1951), written from
//! scratch, plus the *hardware-model* compressor that mirrors the design
//! choices of the paper's Deflate DSA (§V-B).
//!
//! Layout:
//!
//! * [`bitio`] — LSB-first bit readers/writers (Deflate's bit order),
//! * [`huffman`] — canonical prefix codes, the fixed Deflate codes, and a
//!   length-limited (package-merge) code builder for dynamic blocks,
//! * [`lz77`] — the token model and a hash-chain match finder (the
//!   software baseline, standing in for zlib running on the CPU),
//! * [`deflate`] — a complete encoder emitting stored, fixed and dynamic
//!   blocks,
//! * [`inflate`] — a complete decoder for all three block types,
//! * [`hwmodel`] — the SmartDIMM Deflate DSA: 8-byte parallelization
//!   window, 8-bank candidate memory with conflict dropping, 4 KB history,
//!   deterministic per-cacheline latency,
//! * [`corpus`] — deterministic synthetic corpora used by the benchmarks.
//!
//! Every compressor in this crate produces a stream that [`inflate`]
//! decodes back to the original input; this cross-validation is enforced
//! by property tests.
//!
//! # Example
//!
//! ```
//! use ulp_compress::{deflate, inflate};
//!
//! let data = b"the quick brown fox jumps over the lazy dog, the quick brown fox".to_vec();
//! let compressed = deflate::compress(&data);
//! assert!(compressed.len() < data.len());
//! let restored = inflate::decompress(&compressed).unwrap();
//! assert_eq!(restored, data);
//! ```

pub mod bitio;
pub mod corpus;
pub mod deflate;
pub mod huffman;
pub mod hwmodel;
pub mod inflate;
pub mod lz77;

/// Errors produced while decoding a Deflate stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the stream was complete.
    UnexpectedEof,
    /// A block header or Huffman code was invalid.
    InvalidStream(&'static str),
    /// A back-reference pointed before the start of the output.
    BadDistance,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of compressed input"),
            DecodeError::InvalidStream(what) => write!(f, "invalid deflate stream: {what}"),
            DecodeError::BadDistance => write!(f, "back-reference beyond window start"),
        }
    }
}

impl std::error::Error for DecodeError {}
