//! Canonical Huffman (prefix) codes as used by Deflate.
//!
//! Provides:
//!
//! * [`CanonicalCode`] — encoder-side code table built from code lengths
//!   (RFC 1951 §3.2.2's canonical construction),
//! * [`Decoder`] — decoder-side table for the same lengths,
//! * [`build_lengths`] — a *length-limited* Huffman code builder using the
//!   package-merge algorithm, needed for dynamic Deflate blocks (15-bit
//!   limit for literal/distance codes, 7-bit for the code-length code),
//! * the fixed Deflate literal/length and distance codes.

use crate::bitio::BitReader;
use crate::DecodeError;

/// Maximum code length for literal/length and distance codes.
pub const MAX_BITS: usize = 15;

/// An encoder-side canonical prefix code: for each symbol, its code and
/// bit length.
///
/// # Example
///
/// ```
/// use ulp_compress::huffman::CanonicalCode;
/// // Lengths {A:1, B:2, C:2} produce codes A=0, B=10, C=11.
/// let code = CanonicalCode::from_lengths(&[1, 2, 2]).unwrap();
/// assert_eq!(code.code(0), (0b0, 1));
/// assert_eq!(code.code(1), (0b10, 2));
/// assert_eq!(code.code(2), (0b11, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalCode {
    codes: Vec<(u32, u8)>, // (code, length); length 0 = symbol unused
}

impl CanonicalCode {
    /// Builds the canonical code for the given per-symbol lengths.
    ///
    /// Returns `None` if the lengths over-subscribe the code space
    /// (i.e. do not describe a valid prefix code). Under-subscribed
    /// (incomplete) codes are accepted, as Deflate permits them in
    /// degenerate cases (e.g. a single distance code).
    pub fn from_lengths(lengths: &[u8]) -> Option<CanonicalCode> {
        let max_len = *lengths.iter().max().unwrap_or(&0) as usize;
        if max_len == 0 {
            return Some(CanonicalCode {
                codes: vec![(0, 0); lengths.len()],
            });
        }
        if max_len > MAX_BITS {
            return None;
        }
        let mut bl_count = vec![0u32; max_len + 1];
        for &l in lengths {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        // Kraft inequality check: must not over-subscribe.
        let mut kraft: u64 = 0;
        for (len, &count) in bl_count.iter().enumerate().skip(1) {
            kraft += (count as u64) << (max_len - len);
        }
        if kraft > 1u64 << max_len {
            return None;
        }
        let mut next_code = vec![0u32; max_len + 2];
        let mut code = 0u32;
        for bits in 1..=max_len {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }
        let mut codes = Vec::with_capacity(lengths.len());
        for &l in lengths {
            if l == 0 {
                codes.push((0, 0));
            } else {
                codes.push((next_code[l as usize], l));
                next_code[l as usize] += 1;
            }
        }
        Some(CanonicalCode { codes })
    }

    /// Returns `(code, length)` for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol has no code (length 0).
    pub fn code(&self, symbol: usize) -> (u32, u32) {
        let (c, l) = self.codes[symbol];
        assert!(l > 0, "symbol {symbol} has no code");
        (c, l as u32)
    }

    /// Bit length of `symbol`'s code, or 0 if unused.
    pub fn length(&self, symbol: usize) -> u8 {
        self.codes[symbol].1
    }

    /// Number of symbols covered by the table.
    pub fn num_symbols(&self) -> usize {
        self.codes.len()
    }
}

/// A decoder for a canonical prefix code.
///
/// Implements the standard counts/offsets decode (one bit at a time with
/// per-length first-code tracking); fast enough for the simulator and
/// obviously correct.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// first_code[len], first_symbol_index[len], and symbols sorted by
    /// (length, symbol).
    first_code: [u32; MAX_BITS + 1],
    first_index: [u32; MAX_BITS + 1],
    count: [u32; MAX_BITS + 1],
    symbols: Vec<u16>,
}

impl Decoder {
    /// Builds a decoder from per-symbol code lengths.
    ///
    /// Returns `None` if the lengths over-subscribe the code space or no
    /// symbol has a code.
    pub fn from_lengths(lengths: &[u8]) -> Option<Decoder> {
        let mut count = [0u32; MAX_BITS + 1];
        for &l in lengths {
            if l as usize > MAX_BITS {
                return None;
            }
            count[l as usize] += 1;
        }
        count[0] = 0;
        if count.iter().sum::<u32>() == 0 {
            return None;
        }
        let mut kraft: u64 = 0;
        for (len, &c) in count.iter().enumerate().skip(1) {
            kraft += (c as u64) << (MAX_BITS - len);
        }
        if kraft > 1u64 << MAX_BITS {
            return None;
        }
        let mut first_code = [0u32; MAX_BITS + 1];
        let mut first_index = [0u32; MAX_BITS + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=MAX_BITS {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }
        let mut symbols = vec![0u16; index as usize];
        let mut next = first_index;
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[next[l as usize] as usize] = sym as u16;
                next[l as usize] += 1;
            }
        }
        Some(Decoder {
            first_code,
            first_index,
            count,
            symbols,
        })
    }

    /// Decodes one symbol from the bit reader.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on EOF or if the bits do not form a valid
    /// code.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, DecodeError> {
        let mut code = 0u32;
        for len in 1..=MAX_BITS {
            code = (code << 1) | reader.read_bits(1)?;
            let c = self.count[len];
            if c > 0 && code >= self.first_code[len] && code < self.first_code[len] + c {
                let idx = self.first_index[len] + (code - self.first_code[len]);
                return Ok(self.symbols[idx as usize]);
            }
        }
        Err(DecodeError::InvalidStream("unknown huffman code"))
    }
}

/// Builds length-limited Huffman code lengths for the given symbol
/// frequencies using the package-merge algorithm.
///
/// Symbols with zero frequency get length 0 (no code). If only one symbol
/// has a nonzero frequency it is assigned length 1 (Deflate cannot encode
/// a 0-bit code).
///
/// # Panics
///
/// Panics if `max_len` cannot accommodate the alphabet
/// (`2^max_len < live symbols`) or `max_len == 0`.
///
/// # Example
///
/// ```
/// use ulp_compress::huffman::build_lengths;
/// let lens = build_lengths(&[45, 13, 12, 16, 9, 5], 4);
/// assert!(lens.iter().all(|&l| l <= 4));
/// // More frequent symbols get codes no longer than rarer ones.
/// assert!(lens[0] <= lens[5]);
/// ```
pub fn build_lengths(freqs: &[u64], max_len: usize) -> Vec<u8> {
    assert!(max_len > 0, "max_len must be positive");
    let live: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u8; freqs.len()];
    match live.len() {
        0 => return lengths,
        1 => {
            lengths[live[0]] = 1;
            return lengths;
        }
        n => assert!(
            (1usize << max_len.min(63)) >= n,
            "alphabet does not fit in max_len bits"
        ),
    }

    // Package-merge: coin collector over `max_len` levels.
    // Each item is (weight, set of original symbol indices it covers).
    #[derive(Clone)]
    struct Item {
        weight: u64,
        symbols: Vec<u32>,
    }
    let base: Vec<Item> = {
        let mut v: Vec<Item> = live
            .iter()
            .map(|&i| Item {
                weight: freqs[i],
                symbols: vec![i as u32],
            })
            .collect();
        v.sort_by_key(|it| it.weight);
        v
    };

    let mut prev: Vec<Item> = Vec::new();
    for _level in 0..max_len {
        // Merge base coins with packages from the previous level.
        let mut merged: Vec<Item> = Vec::with_capacity(base.len() + prev.len() / 2);
        let mut pkgs = Vec::new();
        let mut i = 0;
        while i + 1 < prev.len() {
            let mut syms = prev[i].symbols.clone();
            syms.extend_from_slice(&prev[i + 1].symbols);
            pkgs.push(Item {
                weight: prev[i].weight + prev[i + 1].weight,
                symbols: syms,
            });
            i += 2;
        }
        let (mut a, mut b) = (0usize, 0usize);
        while a < base.len() || b < pkgs.len() {
            let take_base = match (base.get(a), pkgs.get(b)) {
                (Some(x), Some(y)) => x.weight <= y.weight,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_base {
                merged.push(base[a].clone());
                a += 1;
            } else {
                merged.push(pkgs[b].clone());
                b += 1;
            }
        }
        prev = merged;
    }

    // Take the first 2n-2 items; each time a symbol appears, its code
    // length increases by one.
    let n = live.len();
    for item in prev.iter().take(2 * n - 2) {
        for &s in &item.symbols {
            lengths[s as usize] += 1;
        }
    }
    lengths
}

/// The fixed literal/length code lengths (RFC 1951 §3.2.6).
pub fn fixed_literal_lengths() -> Vec<u8> {
    let mut lens = vec![0u8; 288];
    for (i, l) in lens.iter_mut().enumerate() {
        *l = match i {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    lens
}

/// The fixed distance code lengths: thirty 5-bit codes.
pub fn fixed_distance_lengths() -> Vec<u8> {
    vec![5u8; 30]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;
    use proptest::prelude::*;

    #[test]
    fn canonical_rfc1951_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) for A..H.
        let lens = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let code = CanonicalCode::from_lengths(&lens).unwrap();
        let expect = [
            (0b010, 3),
            (0b011, 3),
            (0b100, 3),
            (0b101, 3),
            (0b110, 3),
            (0b00, 2),
            (0b1110, 4),
            (0b1111, 4),
        ];
        for (sym, &(c, l)) in expect.iter().enumerate() {
            assert_eq!(code.code(sym), (c, l), "symbol {sym}");
        }
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        assert!(CanonicalCode::from_lengths(&[1, 1, 1]).is_none());
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_none());
    }

    #[test]
    fn incomplete_code_accepted() {
        // A single 1-bit code under-subscribes the space; Deflate allows it.
        let code = CanonicalCode::from_lengths(&[1, 0]).unwrap();
        assert_eq!(code.code(0), (0, 1));
        assert_eq!(code.length(1), 0);
    }

    #[test]
    fn all_zero_lengths() {
        let code = CanonicalCode::from_lengths(&[0, 0, 0]).unwrap();
        assert_eq!(code.num_symbols(), 3);
        assert!(Decoder::from_lengths(&[0, 0, 0]).is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let lens = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let code = CanonicalCode::from_lengths(&lens).unwrap();
        let dec = Decoder::from_lengths(&lens).unwrap();
        let message = [5usize, 0, 7, 3, 6, 2, 1, 4, 5, 5];
        let mut w = BitWriter::new();
        for &s in &message {
            let (c, l) = code.code(s);
            w.write_huffman(c, l);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &message {
            assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn fixed_tables_are_valid() {
        let lit = fixed_literal_lengths();
        assert_eq!(lit.len(), 288);
        let code = CanonicalCode::from_lengths(&lit).unwrap();
        // RFC 1951: literal 0 -> 00110000, 256 -> 0000000, 280 -> 11000000.
        assert_eq!(code.code(0), (0b0011_0000, 8));
        assert_eq!(code.code(256), (0b000_0000, 7));
        assert_eq!(code.code(280), (0b1100_0000, 8));
        assert!(Decoder::from_lengths(&lit).is_some());
        assert!(Decoder::from_lengths(&fixed_distance_lengths()).is_some());
    }

    #[test]
    fn build_lengths_single_symbol() {
        let lens = build_lengths(&[0, 42, 0], 15);
        assert_eq!(lens, vec![0, 1, 0]);
    }

    #[test]
    fn build_lengths_empty() {
        assert_eq!(build_lengths(&[0, 0], 15), vec![0, 0]);
    }

    #[test]
    fn build_lengths_respects_limit() {
        // Exponential frequencies force long codes without a limit.
        let freqs: Vec<u64> = (0..20).map(|i| 1u64 << i).collect();
        let lens = build_lengths(&freqs, 7);
        assert!(lens.iter().all(|&l| l <= 7 && l > 0));
        // Must still satisfy Kraft (valid prefix code).
        assert!(CanonicalCode::from_lengths(&lens).is_some());
    }

    #[test]
    fn build_lengths_is_optimal_for_uniform() {
        // 8 equal symbols -> all 3-bit codes.
        let lens = build_lengths(&[5; 8], 15);
        assert!(lens.iter().all(|&l| l == 3));
    }

    proptest! {
        #[test]
        fn prop_build_lengths_valid_prefix_code(
            freqs in proptest::collection::vec(0u64..1000, 2..64),
            max_len in 7usize..=15,
        ) {
            let lens = build_lengths(&freqs, max_len);
            prop_assert_eq!(lens.len(), freqs.len());
            for (i, &l) in lens.iter().enumerate() {
                prop_assert_eq!(l > 0, freqs[i] > 0);
                prop_assert!((l as usize) <= max_len);
            }
            if freqs.iter().any(|&f| f > 0) {
                prop_assert!(CanonicalCode::from_lengths(&lens).is_some());
            }
        }

        #[test]
        fn prop_round_trip_random_code(
            data in proptest::collection::vec(0usize..16, 1..256),
        ) {
            // Build a code from the empirical frequencies of the data.
            let mut freqs = vec![0u64; 16];
            for &s in &data { freqs[s] += 1; }
            let lens = build_lengths(&freqs, 15);
            let code = CanonicalCode::from_lengths(&lens).unwrap();
            let dec = Decoder::from_lengths(&lens).unwrap();
            let mut w = BitWriter::new();
            for &s in &data {
                let (c, l) = code.code(s);
                w.write_huffman(c, l);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &s in &data {
                prop_assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
            }
        }
    }
}
