//! Deflate encoder (RFC 1951): stored, fixed-Huffman and dynamic-Huffman
//! blocks over an LZ77 token stream.
//!
//! [`compress`] is the software baseline — what "the CPU running zlib"
//! does in the paper's `CPU` configuration. The hardware-model compressor
//! in [`crate::hwmodel`] reuses [`encode_tokens`] with
//! [`Strategy::Fixed`], matching the deterministic-latency hardware
//! design choice of §V-B.

use crate::bitio::BitWriter;
use crate::huffman::{build_lengths, fixed_distance_lengths, fixed_literal_lengths, CanonicalCode};
use crate::lz77::{self, distance_to_symbol, length_to_symbol, MatcherConfig, Token};

/// Which Deflate block type to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Pick whichever of stored/fixed/dynamic is smallest.
    #[default]
    Auto,
    /// Always emit a stored (uncompressed) block.
    Stored,
    /// Always emit fixed-Huffman blocks (the hardware choice: no
    /// second pass over the data, deterministic latency).
    Fixed,
    /// Always emit a dynamic-Huffman block.
    Dynamic,
}

/// Compresses `data` with default (zlib-level-6-like) matching and
/// automatic block-type selection, returning a raw Deflate stream.
///
/// # Example
///
/// ```
/// use ulp_compress::{deflate, inflate};
/// let data = vec![7u8; 1000];
/// let out = deflate::compress(&data);
/// assert!(out.len() < 40);
/// assert_eq!(inflate::decompress(&out).unwrap(), data);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with(data, MatcherConfig::default(), Strategy::Auto)
}

/// Compresses with explicit matcher configuration and block strategy.
pub fn compress_with(data: &[u8], config: MatcherConfig, strategy: Strategy) -> Vec<u8> {
    let tokens = lz77::tokenize(data, config);
    encode_tokens(&tokens, data, strategy)
}

/// Lowers an LZ77 token stream to a complete Deflate stream.
///
/// `original` must be the bytes the tokens expand to; it is only read by
/// the stored-block path.
pub fn encode_tokens(tokens: &[Token], original: &[u8], strategy: Strategy) -> Vec<u8> {
    match strategy {
        Strategy::Stored => {
            let mut w = BitWriter::new();
            write_stored(&mut w, original);
            w.finish()
        }
        Strategy::Fixed => {
            let mut w = BitWriter::new();
            write_fixed_block(&mut w, tokens, true);
            w.finish()
        }
        Strategy::Dynamic => {
            let mut w = BitWriter::new();
            write_dynamic_block(&mut w, tokens, true);
            w.finish()
        }
        Strategy::Auto => {
            let mut fixed = BitWriter::new();
            write_fixed_block(&mut fixed, tokens, true);
            let fixed = fixed.finish();
            let mut dynamic = BitWriter::new();
            write_dynamic_block(&mut dynamic, tokens, true);
            let dynamic = dynamic.finish();
            let mut stored = BitWriter::new();
            write_stored(&mut stored, original);
            let stored = stored.finish();
            let mut best = fixed;
            if dynamic.len() < best.len() {
                best = dynamic;
            }
            if stored.len() < best.len() {
                best = stored;
            }
            best
        }
    }
}

/// Writes one or more stored blocks covering `data` (stored blocks are
/// limited to 65535 bytes each), marking the last as final.
fn write_stored(w: &mut BitWriter, data: &[u8]) {
    let chunks: Vec<&[u8]> = if data.is_empty() {
        vec![&[]]
    } else {
        data.chunks(65535).collect()
    };
    for (i, chunk) in chunks.iter().enumerate() {
        let is_final = i + 1 == chunks.len();
        w.write_bits(is_final as u32, 1);
        w.write_bits(0b00, 2);
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(chunk);
    }
}

fn write_token_stream(
    w: &mut BitWriter,
    tokens: &[Token],
    lit_code: &CanonicalCode,
    dist_code: &CanonicalCode,
) {
    for &t in tokens {
        match t {
            Token::Literal(b) => {
                let (c, l) = lit_code.code(b as usize);
                w.write_huffman(c, l);
            }
            Token::Match { length, distance } => {
                let (sym, extra, val) = length_to_symbol(length);
                let (c, l) = lit_code.code(sym as usize);
                w.write_huffman(c, l);
                if extra > 0 {
                    w.write_bits(val as u32, extra as u32);
                }
                let (dsym, dextra, dval) = distance_to_symbol(distance);
                let (c, l) = dist_code.code(dsym as usize);
                w.write_huffman(c, l);
                if dextra > 0 {
                    w.write_bits(dval as u32, dextra as u32);
                }
            }
        }
    }
    // End-of-block symbol.
    let (c, l) = lit_code.code(256);
    w.write_huffman(c, l);
}

/// Writes a fixed-Huffman block.
pub(crate) fn write_fixed_block(w: &mut BitWriter, tokens: &[Token], is_final: bool) {
    w.write_bits(is_final as u32, 1);
    w.write_bits(0b01, 2);
    let lit = CanonicalCode::from_lengths(&fixed_literal_lengths()).expect("fixed literal code");
    let dist = CanonicalCode::from_lengths(&fixed_distance_lengths()).expect("fixed distance code");
    write_token_stream(w, tokens, &lit, &dist);
}

/// Order in which code-length-code lengths are transmitted (RFC 1951).
const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Run-length encodes `lengths` into the code-length alphabet
/// (0..15 verbatim, 16 = repeat previous, 17/18 = zero runs).
fn rle_code_lengths(lengths: &[u8]) -> Vec<(u8, u8, u8)> {
    // (symbol, extra_bits, extra_value)
    let mut out = Vec::new();
    let mut i = 0;
    while i < lengths.len() {
        let cur = lengths[i];
        let mut run = 1;
        while i + run < lengths.len() && lengths[i + run] == cur {
            run += 1;
        }
        if cur == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                out.push((18, 7, (take - 11) as u8));
                left -= take;
            }
            if left >= 3 {
                out.push((17, 3, (left - 3) as u8));
                left = 0;
            }
            for _ in 0..left {
                out.push((0, 0, 0));
            }
        } else {
            out.push((cur, 0, 0));
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                out.push((16, 2, (take - 3) as u8));
                left -= take;
            }
            for _ in 0..left {
                out.push((cur, 0, 0));
            }
        }
        i += run;
    }
    out
}

/// Writes a dynamic-Huffman block.
pub(crate) fn write_dynamic_block(w: &mut BitWriter, tokens: &[Token], is_final: bool) {
    // 1. Symbol frequencies.
    let mut lit_freq = vec![0u64; 286];
    let mut dist_freq = vec![0u64; 30];
    for &t in tokens {
        match t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { length, distance } => {
                lit_freq[length_to_symbol(length).0 as usize] += 1;
                dist_freq[distance_to_symbol(distance).0 as usize] += 1;
            }
        }
    }
    lit_freq[256] += 1; // end-of-block

    // 2. Length-limited code lengths.
    let lit_lens = build_lengths(&lit_freq, 15);
    let mut dist_lens = build_lengths(&dist_freq, 15);
    // Deflate requires HDIST >= 1; if no distances are used, transmit a
    // single zero length.
    if dist_lens.iter().all(|&l| l == 0) {
        dist_lens.truncate(1);
    }

    let hlit = lit_lens
        .iter()
        .rposition(|&l| l > 0)
        .map(|p| p + 1)
        .unwrap_or(257)
        .max(257);
    let hdist = dist_lens
        .iter()
        .rposition(|&l| l > 0)
        .map(|p| p + 1)
        .unwrap_or(1)
        .max(1);

    // 3. RLE-encode the combined length sequence.
    let mut combined = Vec::with_capacity(hlit + hdist);
    combined.extend_from_slice(&lit_lens[..hlit]);
    combined.extend_from_slice(&dist_lens[..hdist]);
    let rle = rle_code_lengths(&combined);

    // 4. Code-length code (alphabet of 19, 7-bit limit).
    let mut clc_freq = vec![0u64; 19];
    for &(sym, _, _) in &rle {
        clc_freq[sym as usize] += 1;
    }
    let clc_lens = build_lengths(&clc_freq, 7);
    let clc_code = CanonicalCode::from_lengths(&clc_lens).expect("code-length code");

    let hclen = CLC_ORDER
        .iter()
        .rposition(|&s| clc_lens[s] > 0)
        .map(|p| p + 1)
        .unwrap_or(4)
        .max(4);

    // 5. Emit the block.
    w.write_bits(is_final as u32, 1);
    w.write_bits(0b10, 2);
    w.write_bits((hlit - 257) as u32, 5);
    w.write_bits((hdist - 1) as u32, 5);
    w.write_bits((hclen - 4) as u32, 4);
    for &s in CLC_ORDER.iter().take(hclen) {
        w.write_bits(clc_lens[s] as u32, 3);
    }
    for &(sym, extra, val) in &rle {
        let (c, l) = clc_code.code(sym as usize);
        w.write_huffman(c, l);
        if extra > 0 {
            w.write_bits(val as u32, extra as u32);
        }
    }

    let lit_code = CanonicalCode::from_lengths(&lit_lens).expect("literal code");
    // The distance code may be a single zero-length entry (no matches);
    // write_token_stream will then never request a distance code.
    let dist_code = CanonicalCode::from_lengths(&dist_lens).expect("distance code");
    write_token_stream(w, tokens, &lit_code, &dist_code);
}

#[cfg(test)]
mod tests {
    use super::*;
    // Explicit import shadows proptest's `Strategy` trait from the glob.
    use super::Strategy;
    use crate::inflate::decompress;
    use proptest::prelude::*;

    #[test]
    fn stored_round_trip() {
        let data = b"stored block payload".to_vec();
        let out = compress_with(&data, MatcherConfig::default(), Strategy::Stored);
        assert_eq!(decompress(&out).unwrap(), data);
        // Stored adds 5 bytes of framing.
        assert_eq!(out.len(), data.len() + 5);
    }

    #[test]
    fn stored_empty_input() {
        let out = compress_with(b"", MatcherConfig::default(), Strategy::Stored);
        assert_eq!(decompress(&out).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn stored_multi_block_large_input() {
        let data = vec![0xABu8; 70_000]; // > 65535 forces two stored blocks
        let out = compress_with(&data, MatcherConfig::default(), Strategy::Stored);
        assert_eq!(decompress(&out).unwrap(), data);
    }

    #[test]
    fn fixed_round_trip() {
        let data = b"fixed huffman fixed huffman fixed huffman".to_vec();
        let out = compress_with(&data, MatcherConfig::default(), Strategy::Fixed);
        assert!(out.len() < data.len());
        assert_eq!(decompress(&out).unwrap(), data);
    }

    #[test]
    fn dynamic_round_trip() {
        let data = b"dynamic blocks build a bespoke code from symbol frequencies; frequencies vary"
            .repeat(8);
        let out = compress_with(&data, MatcherConfig::default(), Strategy::Dynamic);
        assert!(out.len() < data.len());
        assert_eq!(decompress(&out).unwrap(), data);
    }

    #[test]
    fn dynamic_literals_only() {
        // No matches -> single zero-length distance code path.
        let data: Vec<u8> = (0..=255).collect();
        let out = compress_with(&data, MatcherConfig::default(), Strategy::Dynamic);
        assert_eq!(decompress(&out).unwrap(), data);
    }

    #[test]
    fn auto_picks_stored_for_random_data() {
        let mut rng = simkit::DetRng::new(99);
        let mut data = vec![0u8; 4096];
        rng.fill_bytes(&mut data);
        let auto = compress(&data);
        // Incompressible: auto must not expand beyond stored + framing.
        assert!(auto.len() <= data.len() + 5 * ((data.len() / 65535) + 1));
        assert_eq!(decompress(&auto).unwrap(), data);
    }

    #[test]
    fn auto_picks_compressed_for_text() {
        let data = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaabbbbbbbbcccccccc".repeat(16);
        let out = compress(&data);
        assert!(out.len() < data.len() / 4);
        assert_eq!(decompress(&out).unwrap(), data);
    }

    #[test]
    fn rle_encodes_long_zero_runs() {
        let lengths = vec![0u8; 150];
        let rle = rle_code_lengths(&lengths);
        // 150 zeros = 138 (sym 18) + 12 (sym 18).
        assert_eq!(rle.len(), 2);
        assert_eq!(rle[0], (18, 7, 127));
        assert_eq!(rle[1], (18, 7, 1));
    }

    #[test]
    fn rle_encodes_repeats() {
        let lengths = vec![5u8; 8];
        let rle = rle_code_lengths(&lengths);
        // 5, then 16(repeat x6), then 5.
        assert_eq!(rle[0], (5, 0, 0));
        assert_eq!(rle[1], (16, 2, 3));
        assert_eq!(rle[2], (5, 0, 0));
        assert_eq!(rle.len(), 3);
    }

    #[test]
    fn rle_round_trips_through_expansion() {
        let lengths: Vec<u8> = vec![0, 0, 0, 0, 3, 3, 3, 3, 3, 3, 3, 0, 7, 7, 0, 0, 0]
            .into_iter()
            .chain(std::iter::repeat_n(4, 20))
            .collect();
        let rle = rle_code_lengths(&lengths);
        // Expand back.
        let mut expanded: Vec<u8> = Vec::new();
        for &(sym, _, val) in &rle {
            match sym {
                0..=15 => expanded.push(sym),
                16 => {
                    let prev = *expanded.last().expect("repeat with no previous");
                    for _ in 0..val + 3 {
                        expanded.push(prev);
                    }
                }
                17 => expanded.extend(std::iter::repeat_n(0, val as usize + 3)),
                18 => expanded.extend(std::iter::repeat_n(0, val as usize + 11)),
                _ => unreachable!(),
            }
        }
        assert_eq!(expanded, lengths);
    }

    proptest! {
        #[test]
        fn prop_all_strategies_round_trip(
            data in proptest::collection::vec(any::<u8>(), 0..3000),
        ) {
            for strategy in [Strategy::Stored, Strategy::Fixed, Strategy::Dynamic, Strategy::Auto] {
                let out = compress_with(&data, MatcherConfig::default(), strategy);
                prop_assert_eq!(&decompress(&out).unwrap(), &data, "strategy {:?}", strategy);
            }
        }

        #[test]
        fn prop_compressible_data_shrinks(
            word in proptest::collection::vec(any::<u8>(), 4..16),
            reps in 32usize..128,
        ) {
            let data: Vec<u8> = word.iter().cycle().take(word.len() * reps).copied().collect();
            let out = compress(&data);
            prop_assert!(out.len() < data.len());
            prop_assert_eq!(decompress(&out).unwrap(), data);
        }
    }
}
