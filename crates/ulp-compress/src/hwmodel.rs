//! The SmartDIMM Deflate DSA model (§V-B).
//!
//! A specialized adaptation of the fully pipelined FPGA compressor of
//! Fowers et al., with the paper's design choices:
//!
//! * data is consumed in 64-byte cachelines, one per buffer-device clock
//!   cycle, subdivided into *parallelization windows* (default 8 bytes)
//!   for the match-selection logic;
//! * the candidate store is an 8-bank Config-Memory array; when more
//!   lookups map to one bank in a cycle than it has ports, the excess
//!   candidates are *discarded* (best-effort matching);
//! * the hash table covers a 4 KB history window; inserting into an
//!   occupied slot replaces the oldest entry;
//! * match lengths are capped at twice the parallelization window (the
//!   width of the hardware comparator array), so enlarging the window
//!   marginally improves the compression ratio while the comparator and
//!   memory cost grows quadratically — exactly the trade-off §V-B
//!   describes;
//! * output uses fixed-Huffman encoding (no second pass over the data,
//!   deterministic latency) with a stored-block fallback so a page never
//!   expands past `input + 5` bytes;
//! * compression happens at 4 KB page granularity only; larger messages
//!   take one CompCpy call per page (§V-C).
//!
//! Every output page is a valid Deflate stream decodable by
//! [`crate::inflate`].

use crate::deflate::{encode_tokens, Strategy};
use crate::lz77::{Token, MAX_MATCH, MIN_MATCH};

/// Deflate-DSA configuration. Defaults mirror the paper's prototype.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwDeflateConfig {
    /// Parallelization window in bytes (paper: 8).
    pub window: usize,
    /// Number of Config-Memory banks (paper: 8).
    pub banks: usize,
    /// Hash-table slots per bank (paper: sized to cover a 4 KB window).
    pub entries_per_bank: usize,
    /// Read/write port pairs per bank and cycle (paper: 8); accesses
    /// beyond the port count in a cycle are dropped (best-effort).
    pub ports_per_bank: usize,
    /// History window in bytes (paper: 4 KB).
    pub history: usize,
}

impl Default for HwDeflateConfig {
    fn default() -> Self {
        HwDeflateConfig {
            window: 8,
            banks: 8,
            entries_per_bank: 512,
            ports_per_bank: 8,
            history: 4096,
        }
    }
}

impl HwDeflateConfig {
    /// Maximum match length the comparator array can confirm: twice the
    /// parallelization window, clamped to Deflate's limits.
    pub fn max_match(&self) -> usize {
        (self.window * 2).clamp(MIN_MATCH, MAX_MATCH)
    }

    /// Candidate-store size in bits, the §V-B "memory requirement" that
    /// grows with the window (wider comparators need wider candidate
    /// reads). Used by the area/power model and the window ablation.
    pub fn candidate_memory_bits(&self) -> usize {
        // Each slot stores a position tag (16 bits) plus the candidate
        // bytes the comparators need (2 * window bytes).
        self.banks * self.entries_per_bank * (16 + 16 * self.window)
    }
}

/// Counters exposed by the DSA model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwStats {
    /// Cycles spent in the match pipeline (one per 64-byte cacheline).
    pub cycles: u64,
    /// Candidate lookups dropped because a bank ran out of read ports.
    pub lookups_dropped: u64,
    /// Hash-table inserts dropped because a bank ran out of write ports.
    pub inserts_dropped: u64,
    /// Matches emitted.
    pub matches_emitted: u64,
    /// Literals emitted.
    pub literals_emitted: u64,
    /// Pages that fell back to a stored block.
    pub stored_fallbacks: u64,
}

/// Result of compressing one 4 KB page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageResult {
    /// The Deflate stream for this page.
    pub data: Vec<u8>,
    /// Whether the fixed-Huffman encoding lost to the stored fallback.
    pub stored: bool,
    /// Buffer-device cycles consumed (deterministic: one per cacheline).
    pub cycles: u64,
}

/// The Deflate DSA: hardware-model compressor.
///
/// # Example
///
/// ```
/// use ulp_compress::hwmodel::HwCompressor;
/// use ulp_compress::inflate;
///
/// let mut dsa = HwCompressor::new(Default::default());
/// let page = b"near-memory processing near-memory processing!!!".repeat(20);
/// let result = dsa.compress_page(&page[..page.len().min(4096)]);
/// assert!(result.data.len() < page.len().min(4096));
/// assert_eq!(inflate::decompress(&result.data).unwrap(), &page[..page.len().min(4096)]);
/// ```
#[derive(Debug, Clone)]
pub struct HwCompressor {
    config: HwDeflateConfig,
    stats: HwStats,
}

const PAGE: usize = 4096;
const CACHELINE: usize = 64;

impl HwCompressor {
    /// Creates a compressor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if any configuration field is zero.
    pub fn new(config: HwDeflateConfig) -> HwCompressor {
        assert!(config.window > 0, "window must be positive");
        assert!(config.banks > 0, "banks must be positive");
        assert!(config.entries_per_bank > 0, "entries must be positive");
        assert!(config.ports_per_bank > 0, "ports must be positive");
        assert!(config.history >= config.max_match(), "history too small");
        HwCompressor {
            config,
            stats: HwStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HwDeflateConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HwStats {
        self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = HwStats::default();
    }

    /// Compresses one page (at most 4 KB) into an independent Deflate
    /// stream, exactly as one CompCpy offload does.
    ///
    /// # Panics
    ///
    /// Panics if `page` is empty or longer than 4 KB.
    pub fn compress_page(&mut self, page: &[u8]) -> PageResult {
        assert!(!page.is_empty(), "empty page");
        assert!(page.len() <= PAGE, "DSA compresses at 4KB page granularity");
        let tokens = self.tokenize_page(page);
        let cycles = page.len().div_ceil(CACHELINE) as u64;
        self.stats.cycles += cycles;
        let fixed = encode_tokens(&tokens, page, Strategy::Fixed);
        let (data, stored) = if fixed.len() >= page.len() + 5 {
            // Stored fallback keeps the compressed page within the
            // registered destination pages.
            self.stats.stored_fallbacks += 1;
            (encode_tokens(&[], page, Strategy::Stored), true)
        } else {
            (fixed, false)
        };
        PageResult {
            data,
            stored,
            cycles,
        }
    }

    /// Compresses an arbitrary message as a sequence of independent 4 KB
    /// page streams (the §V-C software-stack contract: each page is
    /// written to the TCP socket separately).
    pub fn compress_message(&mut self, data: &[u8]) -> Vec<PageResult> {
        data.chunks(PAGE).map(|p| self.compress_page(p)).collect()
    }

    /// Best-effort banked-hash-table tokenizer for one page.
    fn tokenize_page(&mut self, page: &[u8]) -> Vec<Token> {
        let cfg = self.config;
        let max_match = cfg.max_match();
        let slots = cfg.banks * cfg.entries_per_bank;
        // slot -> position of the most recent candidate (oldest replaced).
        let mut table: Vec<Option<u32>> = vec![None; slots];
        let mut tokens = Vec::new();

        let hash = |data: &[u8], pos: usize| -> usize {
            let h = (data[pos] as u32)
                .wrapping_mul(0x1_93)
                .wrapping_add((data[pos + 1] as u32).wrapping_mul(0x61))
                .wrapping_add((data[pos + 2] as u32).wrapping_mul(0x1F));
            (h as usize) % slots
        };

        let mut covered_until = 0usize; // positions below this are inside an emitted match
        let mut pos = 0usize;
        while pos < page.len() {
            // One cycle: a 64-byte cacheline.
            let line_end = (pos + CACHELINE).min(page.len());
            // Per-cycle bank port accounting.
            let mut reads_per_bank = vec![0usize; cfg.banks];
            let mut writes_per_bank = vec![0usize; cfg.banks];

            for p in pos..line_end {
                if p + MIN_MATCH > page.len() {
                    if p >= covered_until {
                        tokens.push(Token::Literal(page[p]));
                        self.stats.literals_emitted += 1;
                    }
                    continue;
                }
                let slot = hash(page, p);
                let bank = slot % cfg.banks;

                // Candidate lookup (only needed for uncovered positions,
                // but the hardware looks up every lane).
                let candidate = if reads_per_bank[bank] < cfg.ports_per_bank {
                    reads_per_bank[bank] += 1;
                    table[slot]
                } else {
                    self.stats.lookups_dropped += 1;
                    None
                };

                // Insert this position (replacing the older entry).
                if writes_per_bank[bank] < cfg.ports_per_bank {
                    writes_per_bank[bank] += 1;
                    table[slot] = Some(p as u32);
                } else {
                    self.stats.inserts_dropped += 1;
                }

                if p < covered_until {
                    continue; // inside a previously selected match
                }

                let try_candidate = |cand: usize| -> Option<(usize, usize)> {
                    let dist = p - cand;
                    if dist == 0 || dist > cfg.history {
                        return None;
                    }
                    let limit = (page.len() - p).min(max_match);
                    let mut l = 0;
                    while l < limit && page[cand + l] == page[p + l] {
                        l += 1;
                    }
                    if l >= MIN_MATCH {
                        Some((l, dist))
                    } else {
                        None
                    }
                };
                // The comparator array always sees the adjacent lane, so a
                // distance-1 candidate (run detection) is free — no Config
                // Memory port is consumed. This is how pipelined hardware
                // compressors handle runs.
                let neighbor = if p >= 1 { try_candidate(p - 1) } else { None };
                let table_match = candidate.and_then(|cand| try_candidate(cand as usize));
                let matched = match (neighbor, table_match) {
                    (Some(a), Some(b)) => Some(if b.0 > a.0 { b } else { a }),
                    (a, b) => a.or(b),
                };

                match matched {
                    Some((len, dist)) => {
                        tokens.push(Token::Match {
                            length: len as u16,
                            distance: dist as u16,
                        });
                        self.stats.matches_emitted += 1;
                        covered_until = p + len;
                    }
                    None => {
                        tokens.push(Token::Literal(page[p]));
                        self.stats.literals_emitted += 1;
                    }
                }
            }
            pos = line_end;
        }
        tokens
    }
}

/// The decompression DSA: functionally a streaming inflater with the same
/// deterministic cacheline-per-cycle model. Returns the decompressed page
/// and the buffer-device cycles consumed (one per 64 output bytes).
///
/// # Errors
///
/// Propagates [`crate::DecodeError`] from the inflater.
pub fn decompress_page(data: &[u8]) -> Result<(Vec<u8>, u64), crate::DecodeError> {
    let out = crate::inflate::decompress(data)?;
    let cycles = out.len().div_ceil(CACHELINE) as u64;
    Ok((out, cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::decompress;
    use crate::{corpus, deflate};
    use proptest::prelude::*;

    #[test]
    fn round_trip_compressible_page() {
        let page = b"SmartDIMM compresses pages near memory. ".repeat(50);
        let page = &page[..4096.min(page.len())];
        let mut dsa = HwCompressor::new(Default::default());
        let result = dsa.compress_page(page);
        assert!(!result.stored);
        assert!(result.data.len() < page.len());
        assert_eq!(decompress(&result.data).unwrap(), page);
        assert_eq!(result.cycles, (page.len() as u64).div_ceil(64));
    }

    #[test]
    fn incompressible_page_falls_back_to_stored() {
        let mut rng = simkit::DetRng::new(42);
        let mut page = vec![0u8; 4096];
        rng.fill_bytes(&mut page);
        let mut dsa = HwCompressor::new(Default::default());
        let result = dsa.compress_page(&page);
        assert!(result.stored);
        assert!(result.data.len() <= page.len() + 5);
        assert_eq!(decompress(&result.data).unwrap(), page);
        assert_eq!(dsa.stats().stored_fallbacks, 1);
    }

    #[test]
    fn message_splits_into_pages() {
        let msg = corpus::html(10_000, 7);
        let mut dsa = HwCompressor::new(Default::default());
        let pages = dsa.compress_message(&msg);
        assert_eq!(pages.len(), 3); // 4096 + 4096 + 1808
        let mut out = Vec::new();
        for p in &pages {
            out.extend(decompress(&p.data).unwrap());
        }
        assert_eq!(out, msg);
    }

    #[test]
    fn matches_are_capped_by_comparator_width() {
        // A long run: software would emit 258-byte matches, the DSA is
        // capped at 2*window.
        let page = vec![b'x'; 1024];
        let mut dsa = HwCompressor::new(Default::default());
        let result = dsa.compress_page(&page);
        assert_eq!(decompress(&result.data).unwrap(), page);
        let max = dsa.config().max_match();
        assert_eq!(max, 16);
        // Ratio is worse than software's, but still strongly compressed.
        let sw = deflate::compress(&page);
        assert!(result.data.len() >= sw.len());
        assert!(result.data.len() < page.len() / 4);
    }

    #[test]
    fn wider_window_improves_ratio_on_long_runs() {
        let page = corpus::text(4096, 3);
        let small = {
            let mut dsa = HwCompressor::new(HwDeflateConfig {
                window: 4,
                ..Default::default()
            });
            dsa.compress_page(&page).data.len()
        };
        let large = {
            let mut dsa = HwCompressor::new(HwDeflateConfig {
                window: 16,
                ..Default::default()
            });
            dsa.compress_page(&page).data.len()
        };
        assert!(large <= small, "window 16 ({large}) vs window 4 ({small})");
    }

    #[test]
    fn memory_cost_grows_with_window() {
        let a = HwDeflateConfig {
            window: 4,
            ..Default::default()
        };
        let b = HwDeflateConfig {
            window: 16,
            ..Default::default()
        };
        assert!(b.candidate_memory_bits() > 2 * a.candidate_memory_bits());
    }

    #[test]
    fn port_starvation_drops_candidates() {
        // One bank and one port: most parallel lookups in each cacheline
        // are dropped.
        let mut dsa = HwCompressor::new(HwDeflateConfig {
            banks: 1,
            ports_per_bank: 1,
            ..Default::default()
        });
        let page = corpus::text(4096, 5);
        let result = dsa.compress_page(&page);
        assert_eq!(decompress(&result.data).unwrap(), page);
        assert!(dsa.stats().lookups_dropped > 0);
        assert!(dsa.stats().inserts_dropped > 0);
    }

    #[test]
    fn history_window_respected() {
        let mut dsa = HwCompressor::new(HwDeflateConfig {
            history: 64,
            ..Default::default()
        });
        let mut page = corpus::text(600, 9);
        page.truncate(600);
        let result = dsa.compress_page(&page);
        assert_eq!(decompress(&result.data).unwrap(), page);
    }

    #[test]
    #[should_panic(expected = "4KB page granularity")]
    fn oversized_page_rejected() {
        HwCompressor::new(Default::default()).compress_page(&[0u8; 4097]);
    }

    #[test]
    fn decompress_page_cycle_accounting() {
        let page = corpus::json(2048, 1);
        let mut dsa = HwCompressor::new(Default::default());
        let result = dsa.compress_page(&page);
        let (out, cycles) = decompress_page(&result.data).unwrap();
        assert_eq!(out, page);
        assert_eq!(cycles, (page.len() as u64).div_ceil(64));
    }

    proptest! {
        #[test]
        fn prop_hw_round_trips_any_page(
            data in proptest::collection::vec(any::<u8>(), 1..4096),
        ) {
            let mut dsa = HwCompressor::new(Default::default());
            let result = dsa.compress_page(&data);
            prop_assert_eq!(decompress(&result.data).unwrap(), data);
        }

        #[test]
        fn prop_hw_round_trips_compressible(
            word in proptest::collection::vec(any::<u8>(), 3..12),
            reps in 10usize..300,
            window in 2usize..16,
        ) {
            let data: Vec<u8> = word.iter().cycle().take((word.len() * reps).min(4096)).copied().collect();
            let mut dsa = HwCompressor::new(HwDeflateConfig { window, ..Default::default() });
            let result = dsa.compress_page(&data);
            prop_assert_eq!(decompress(&result.data).unwrap(), data);
        }

        #[test]
        fn prop_output_never_expands_past_stored(
            data in proptest::collection::vec(any::<u8>(), 1..4096),
        ) {
            let mut dsa = HwCompressor::new(Default::default());
            let result = dsa.compress_page(&data);
            prop_assert!(result.data.len() <= data.len() + 5);
        }
    }
}
