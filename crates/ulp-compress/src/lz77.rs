//! LZ77 token model and the software hash-chain match finder.
//!
//! The token stream ([`Token`]) is shared by the software Deflate encoder
//! (the CPU baseline) and the hardware-model compressor; both lower their
//! tokens to the same Deflate bit syntax. This module also owns the RFC
//! 1951 length/distance symbol tables used by the encoder and decoder.

/// Minimum match length Deflate can encode.
pub const MIN_MATCH: usize = 3;
/// Maximum match length Deflate can encode.
pub const MAX_MATCH: usize = 258;
/// Maximum back-reference distance.
pub const MAX_DISTANCE: usize = 32 * 1024;

/// One LZ77 token: a literal byte or a back-reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A `(length, distance)` back-reference: copy `length` bytes from
    /// `distance` bytes back.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        length: u16,
        /// Distance in `1..=MAX_DISTANCE`.
        distance: u16,
    },
}

/// `(base_length, extra_bits)` for length symbols 257..=285.
pub const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// `(base_distance, extra_bits)` for distance symbols 0..=29.
pub const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Maps a match length (3..=258) to `(symbol, extra_bits, extra_value)`.
///
/// # Panics
///
/// Panics if `length` is out of range.
pub fn length_to_symbol(length: u16) -> (u16, u8, u16) {
    assert!(
        (MIN_MATCH..=MAX_MATCH).contains(&(length as usize)),
        "match length out of range: {length}"
    );
    // Find the last entry whose base <= length.
    let idx = LENGTH_TABLE
        .iter()
        .rposition(|&(base, _)| base <= length)
        .expect("length table covers 3..=258");
    // Length 258 must use symbol 285 (the dedicated zero-extra code).
    let (base, extra) = LENGTH_TABLE[idx];
    (257 + idx as u16, extra, length - base)
}

/// Maps a distance (1..=32768) to `(symbol, extra_bits, extra_value)`.
///
/// # Panics
///
/// Panics if `distance` is out of range.
pub fn distance_to_symbol(distance: u16) -> (u16, u8, u16) {
    assert!(
        (1..=MAX_DISTANCE as u32).contains(&(distance as u32)),
        "distance out of range: {distance}"
    );
    let idx = DIST_TABLE
        .iter()
        .rposition(|&(base, _)| base <= distance)
        .expect("distance table covers 1..=32768");
    let (base, extra) = DIST_TABLE[idx];
    (idx as u16, extra, distance - base)
}

/// Reconstructs the original bytes described by a token stream.
///
/// This is the token-level oracle used by tests: every match finder must
/// produce tokens that expand back to the input.
///
/// # Panics
///
/// Panics if a match reaches before the start of the output.
pub fn expand_tokens(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { length, distance } => {
                let dist = distance as usize;
                assert!(dist >= 1 && dist <= out.len(), "invalid distance");
                for _ in 0..length {
                    let b = out[out.len() - dist];
                    out.push(b);
                }
            }
        }
    }
    out
}

/// Configuration for the software hash-chain match finder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherConfig {
    /// Sliding-window size in bytes (at most [`MAX_DISTANCE`]).
    pub window: usize,
    /// Maximum hash-chain links followed per position (the zlib
    /// `max_chain` "effort" knob).
    pub max_chain: usize,
    /// Whether to use lazy matching (defer a match one byte if the next
    /// position matches longer), as zlib levels ≥ 4 do.
    pub lazy: bool,
}

impl Default for MatcherConfig {
    /// zlib-level-6-like defaults.
    fn default() -> Self {
        MatcherConfig {
            window: MAX_DISTANCE,
            max_chain: 128,
            lazy: true,
        }
    }
}

const HASH_BITS: usize = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Length of the common prefix of `data[cand..]` and `data[pos..]`, capped
/// at `max_len`. Compares eight bytes per step and pinpoints the diverging
/// byte with a trailing-zero count, falling back to byte steps only for
/// the sub-word tail. Requires `cand < pos` and `pos + max_len <= data.len()`.
#[inline]
fn match_len(data: &[u8], cand: usize, pos: usize, max_len: usize) -> usize {
    let mut l = 0;
    while l + 8 <= max_len {
        let a = u64::from_le_bytes(data[cand + l..cand + l + 8].try_into().unwrap());
        let b = u64::from_le_bytes(data[pos + l..pos + l + 8].try_into().unwrap());
        let diff = a ^ b;
        if diff != 0 {
            return l + (diff.trailing_zeros() >> 3) as usize;
        }
        l += 8;
    }
    while l < max_len && data[cand + l] == data[pos + l] {
        l += 1;
    }
    l
}

fn hash3(data: &[u8], pos: usize) -> usize {
    let h = (data[pos] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[pos + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add((data[pos + 2] as u32).wrapping_mul(0x7F4A));
    (h as usize) & (HASH_SIZE - 1)
}

/// Greedy/lazy hash-chain LZ77 tokenizer — the software baseline that
/// stands in for zlib running on the CPU.
///
/// # Example
///
/// ```
/// use ulp_compress::lz77::{tokenize, expand_tokens, MatcherConfig, Token};
/// let data = b"abcabcabcabc";
/// let tokens = tokenize(data, MatcherConfig::default());
/// assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
/// assert_eq!(expand_tokens(&tokens), data);
/// ```
pub fn tokenize(data: &[u8], config: MatcherConfig) -> Vec<Token> {
    let window = config.window.clamp(1, MAX_DISTANCE);
    let mut tokens = Vec::new();
    if data.is_empty() {
        return tokens;
    }
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut chain = vec![usize::MAX; data.len()];

    let find_match = |head: &[usize], chain: &[usize], pos: usize| -> Option<(usize, usize)> {
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut cand = head[hash3(data, pos)];
        let mut links = config.max_chain;
        let limit = pos.saturating_sub(window);
        let max_len = (data.len() - pos).min(MAX_MATCH);
        while cand != usize::MAX && cand >= limit && links > 0 {
            if cand < pos {
                // A candidate can only improve on `best_len` if it agrees
                // at offset `best_len`; one byte probe rejects most chains
                // without running the full prefix compare.
                if data[cand + best_len] == data[pos + best_len] {
                    let l = match_len(data, cand, pos, max_len);
                    if l > best_len {
                        best_len = l;
                        best_dist = pos - cand;
                        if l == max_len {
                            break;
                        }
                    }
                }
            }
            cand = chain[cand];
            links -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    };

    let insert = |head: &mut [usize], chain: &mut [usize], pos: usize| {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            chain[pos] = head[h];
            head[h] = pos;
        }
    };

    let mut pos = 0usize;
    while pos < data.len() {
        let cur = find_match(&head, &chain, pos);
        let (emit_len, emit_dist) = match cur {
            None => {
                tokens.push(Token::Literal(data[pos]));
                insert(&mut head, &mut chain, pos);
                pos += 1;
                continue;
            }
            Some((len, dist)) if config.lazy && pos + 1 < data.len() => {
                // Lazy evaluation: see if deferring one byte finds better.
                insert(&mut head, &mut chain, pos);
                match find_match(&head, &chain, pos + 1) {
                    Some((nlen, _)) if nlen > len => {
                        tokens.push(Token::Literal(data[pos]));
                        pos += 1;
                        continue;
                    }
                    _ => (len, dist),
                }
            }
            Some((len, dist)) => {
                insert(&mut head, &mut chain, pos);
                (len, dist)
            }
        };
        tokens.push(Token::Match {
            length: emit_len as u16,
            distance: emit_dist as u16,
        });
        // Insert hash entries for the matched span (skipping pos, done).
        for p in pos + 1..pos + emit_len {
            insert(&mut head, &mut chain, p);
        }
        pos += emit_len;
    }
    tokens
}

/// Reference LZ77 tokenizer that scans every window position linearly
/// (O(n · window) worst case) instead of following hash chains.
///
/// This is the "before" side of the `bench_hotpaths` match-finder
/// measurement and a correctness oracle for [`tokenize`]: both must
/// round-trip through [`expand_tokens`], though they may legitimately
/// pick different (equally valid) matches. `max_chain` is ignored — the
/// linear scan visits the whole window by construction. Not for hot
/// paths.
pub fn tokenize_linear(data: &[u8], config: MatcherConfig) -> Vec<Token> {
    let window = config.window.clamp(1, MAX_DISTANCE);
    let mut tokens = Vec::new();

    let find_match = |pos: usize| -> Option<(usize, usize)> {
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        let max_len = (data.len() - pos).min(MAX_MATCH);
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        // Nearest candidate first, exactly like the chain walk.
        for cand in (pos.saturating_sub(window)..pos).rev() {
            let mut l = 0;
            while l < max_len && data[cand + l] == data[pos + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = pos - cand;
                if l == max_len {
                    break;
                }
            }
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    };

    let mut pos = 0usize;
    while pos < data.len() {
        let (emit_len, emit_dist) = match find_match(pos) {
            None => {
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
                continue;
            }
            Some((len, dist)) if config.lazy && pos + 1 < data.len() => match find_match(pos + 1) {
                Some((nlen, _)) if nlen > len => {
                    tokens.push(Token::Literal(data[pos]));
                    pos += 1;
                    continue;
                }
                _ => (len, dist),
            },
            Some((len, dist)) => (len, dist),
        };
        tokens.push(Token::Match {
            length: emit_len as u16,
            distance: emit_dist as u16,
        });
        pos += emit_len;
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn length_symbol_boundaries() {
        assert_eq!(length_to_symbol(3), (257, 0, 0));
        assert_eq!(length_to_symbol(10), (264, 0, 0));
        assert_eq!(length_to_symbol(11), (265, 1, 0));
        assert_eq!(length_to_symbol(12), (265, 1, 1));
        assert_eq!(length_to_symbol(13), (266, 1, 0));
        assert_eq!(length_to_symbol(257), (284, 5, 30));
        assert_eq!(length_to_symbol(258), (285, 0, 0));
    }

    #[test]
    fn distance_symbol_boundaries() {
        assert_eq!(distance_to_symbol(1), (0, 0, 0));
        assert_eq!(distance_to_symbol(4), (3, 0, 0));
        assert_eq!(distance_to_symbol(5), (4, 1, 0));
        assert_eq!(distance_to_symbol(6), (4, 1, 1));
        assert_eq!(distance_to_symbol(24577), (29, 13, 0));
        assert_eq!(distance_to_symbol(32768), (29, 13, 8191));
    }

    #[test]
    fn symbol_tables_cover_all_values() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (sym, extra, val) = length_to_symbol(len as u16);
            assert!((257..=285).contains(&sym));
            assert!(val < (1 << extra) || extra == 0 && val == 0, "len {len}");
            let (base, _) = LENGTH_TABLE[(sym - 257) as usize];
            assert_eq!(base as usize + val as usize, len);
        }
        for dist in 1..=MAX_DISTANCE {
            let (sym, extra, val) = distance_to_symbol(dist as u16);
            assert!(sym < 30);
            assert!(val < (1 << extra) || extra == 0 && val == 0, "dist {dist}");
            let (base, _) = DIST_TABLE[sym as usize];
            assert_eq!(base as usize + val as usize, dist);
        }
    }

    #[test]
    fn expand_literal_only() {
        let tokens = vec![Token::Literal(b'h'), Token::Literal(b'i')];
        assert_eq!(expand_tokens(&tokens), b"hi");
    }

    #[test]
    fn expand_overlapping_match() {
        // "aaaa...": literal 'a' then an overlapping match dist=1.
        let tokens = vec![
            Token::Literal(b'a'),
            Token::Match {
                length: 7,
                distance: 1,
            },
        ];
        assert_eq!(expand_tokens(&tokens), b"aaaaaaaa");
    }

    #[test]
    fn tokenize_finds_repeats() {
        let data = b"abcdefabcdefabcdef";
        let tokens = tokenize(data, MatcherConfig::default());
        let matches: Vec<_> = tokens
            .iter()
            .filter(|t| matches!(t, Token::Match { .. }))
            .collect();
        assert!(!matches.is_empty());
        assert_eq!(expand_tokens(&tokens), data);
    }

    #[test]
    fn tokenize_incompressible() {
        // All-distinct bytes: no matches possible.
        let data: Vec<u8> = (0..=255).collect();
        let tokens = tokenize(&data, MatcherConfig::default());
        assert_eq!(tokens.len(), 256);
        assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
    }

    #[test]
    fn tokenize_empty_and_tiny() {
        assert!(tokenize(b"", MatcherConfig::default()).is_empty());
        assert_eq!(
            expand_tokens(&tokenize(b"ab", MatcherConfig::default())),
            b"ab"
        );
    }

    #[test]
    fn tokenize_respects_window() {
        // Repeat is farther away than the window: must not match.
        let mut data = b"uniqueprefix".to_vec();
        data.extend(std::iter::repeat_n(0u8, 300));
        data.extend_from_slice(b"uniqueprefix");
        let tokens = tokenize(
            &data,
            MatcherConfig {
                window: 64,
                max_chain: 64,
                lazy: false,
            },
        );
        assert_eq!(expand_tokens(&tokens), data);
        for t in &tokens {
            if let Token::Match { distance, .. } = t {
                assert!(*distance as usize <= 64);
            }
        }
    }

    #[test]
    fn greedy_vs_lazy_both_correct() {
        let data = b"abcbcdbcdebcdefbcdefg".repeat(4);
        for lazy in [false, true] {
            let tokens = tokenize(
                &data,
                MatcherConfig {
                    lazy,
                    ..MatcherConfig::default()
                },
            );
            assert_eq!(expand_tokens(&tokens), data, "lazy={lazy}");
        }
    }

    #[test]
    fn match_len_helper_agrees_with_byte_loop() {
        let mut data = b"abcdefgh_abcdefgh_abcdefgX_tail".to_vec();
        data.extend_from_slice(&[7u8; 40]);
        for pos in 1..data.len() {
            for cand in 0..pos {
                let max_len = data.len() - pos;
                let mut expect = 0;
                while expect < max_len && data[cand + expect] == data[pos + expect] {
                    expect += 1;
                }
                assert_eq!(
                    match_len(&data, cand, pos, max_len),
                    expect,
                    "{cand}->{pos}"
                );
            }
        }
    }

    #[test]
    fn linear_matcher_round_trips_and_finds_repeats() {
        let data = b"abcdefabcdefabcdef";
        for lazy in [false, true] {
            let tokens = tokenize_linear(
                data,
                MatcherConfig {
                    lazy,
                    ..MatcherConfig::default()
                },
            );
            assert_eq!(expand_tokens(&tokens), data, "lazy={lazy}");
            assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        }
        assert!(tokenize_linear(b"", MatcherConfig::default()).is_empty());
    }

    proptest! {
        #[test]
        fn prop_tokenize_round_trips(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            let tokens = tokenize(&data, MatcherConfig::default());
            prop_assert_eq!(expand_tokens(&tokens), data);
        }

        #[test]
        fn prop_linear_and_chain_both_round_trip(
            data in proptest::collection::vec(any::<u8>(), 0..600),
        ) {
            // The two matchers may pick different matches; both streams
            // must reconstruct the input byte-for-byte.
            let chain = tokenize(&data, MatcherConfig::default());
            let linear = tokenize_linear(&data, MatcherConfig::default());
            prop_assert_eq!(expand_tokens(&chain), data.clone());
            prop_assert_eq!(expand_tokens(&linear), data);
        }

        #[test]
        fn prop_tokenize_compressible_round_trips(
            seed in proptest::collection::vec(0u8..4, 1..32),
            reps in 1usize..64,
        ) {
            let data: Vec<u8> = seed.iter().cycle().take(seed.len() * reps).copied().collect();
            let tokens = tokenize(&data, MatcherConfig::default());
            prop_assert_eq!(expand_tokens(&tokens), data);
        }

        #[test]
        fn prop_matches_within_bounds(data in proptest::collection::vec(any::<u8>(), 0..1500)) {
            let tokens = tokenize(&data, MatcherConfig::default());
            let mut produced = 0usize;
            for t in &tokens {
                match t {
                    Token::Literal(_) => produced += 1,
                    Token::Match { length, distance } => {
                        prop_assert!((MIN_MATCH..=MAX_MATCH).contains(&(*length as usize)));
                        prop_assert!(*distance as usize >= 1);
                        prop_assert!((*distance as usize) <= produced);
                        produced += *length as usize;
                    }
                }
            }
            prop_assert_eq!(produced, data.len());
        }
    }
}
