//! Deterministic synthetic corpora.
//!
//! The paper's artifact uses public compression corpora and Nginx-served
//! web pages; neither ships with this reproduction, so these generators
//! produce content with comparable statistics: HTML markup (highly
//! compressible), JSON API responses, English-like text, log lines, and
//! incompressible random bytes. All are seeded and deterministic.

use simkit::DetRng;

const WORDS: &[&str] = &[
    "the",
    "quick",
    "server",
    "request",
    "response",
    "memory",
    "cache",
    "protocol",
    "network",
    "stream",
    "packet",
    "buffer",
    "page",
    "table",
    "offload",
    "channel",
    "latency",
    "bandwidth",
    "record",
    "cipher",
    "window",
    "match",
    "symbol",
    "encode",
    "transfer",
    "datacenter",
    "system",
    "kernel",
    "socket",
    "thread",
    "copy",
    "flush",
    "device",
    "module",
    "accelerate",
    "compress",
];

/// English-like text of exactly `size` bytes.
pub fn text(size: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed ^ 0x7e57);
    let mut out = Vec::with_capacity(size + 16);
    while out.len() < size {
        let w = WORDS[rng.gen_range(0..WORDS.len() as u64) as usize];
        out.extend_from_slice(w.as_bytes());
        out.push(if rng.gen_bool(0.1) { b'.' } else { b' ' });
    }
    out.truncate(size);
    out
}

/// HTML-like markup of exactly `size` bytes (tag-heavy, repetitive —
/// the web-page content an Nginx server ships).
pub fn html(size: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed ^ 0x47a1);
    let mut out = Vec::with_capacity(size + 128);
    out.extend_from_slice(b"<!DOCTYPE html><html><head><title>bench</title></head><body>");
    while out.len() < size {
        match rng.gen_range(0..4) {
            0 => {
                out.extend_from_slice(b"<div class=\"content-row\"><p>");
                out.extend_from_slice(&text(rng.gen_range(20..120) as usize, rng.next_u64()));
                out.extend_from_slice(b"</p></div>");
            }
            1 => {
                out.extend_from_slice(b"<a href=\"/static/page-");
                out.extend_from_slice(rng.gen_range(0..10_000).to_string().as_bytes());
                out.extend_from_slice(b".html\">link</a>");
            }
            2 => {
                out.extend_from_slice(b"<span class=\"item badge badge-primary\">item</span>");
            }
            _ => {
                out.extend_from_slice(b"<li data-id=\"");
                out.extend_from_slice(rng.gen_range(0..1_000).to_string().as_bytes());
                out.extend_from_slice(b"\">entry</li>");
            }
        }
    }
    out.truncate(size);
    out
}

/// JSON-like API response of exactly `size` bytes.
pub fn json(size: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed ^ 0x150a);
    let mut out = Vec::with_capacity(size + 64);
    out.extend_from_slice(b"{\"items\":[");
    let mut first = true;
    while out.len() < size {
        if !first {
            out.push(b',');
        }
        first = false;
        out.extend_from_slice(b"{\"id\":");
        out.extend_from_slice(rng.gen_range(0..1_000_000).to_string().as_bytes());
        out.extend_from_slice(b",\"name\":\"");
        out.extend_from_slice(&text(rng.gen_range(5..20) as usize, rng.next_u64()));
        out.extend_from_slice(b"\",\"active\":");
        out.extend_from_slice(if rng.gen_bool(0.5) { b"true" } else { b"false" });
        out.push(b'}');
    }
    out.truncate(size);
    out
}

/// Incompressible random bytes (already-compressed or encrypted content).
pub fn random(size: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed ^ 0xda7a);
    let mut out = vec![0u8; size];
    rng.fill_bytes(&mut out);
    out
}

/// All-zero bytes (maximally compressible).
pub fn zeros(size: usize) -> Vec<u8> {
    vec![0u8; size]
}

/// A named corpus kind, for parameterized benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// English-like text.
    Text,
    /// HTML markup.
    Html,
    /// JSON API responses.
    Json,
    /// Incompressible random bytes.
    Random,
    /// All zeros.
    Zeros,
}

impl Kind {
    /// Every corpus kind, for exhaustive sweeps.
    pub const ALL: [Kind; 5] = [
        Kind::Text,
        Kind::Html,
        Kind::Json,
        Kind::Random,
        Kind::Zeros,
    ];

    /// Generates `size` bytes of this kind.
    pub fn generate(self, size: usize, seed: u64) -> Vec<u8> {
        match self {
            Kind::Text => text(size, seed),
            Kind::Html => html(size, seed),
            Kind::Json => json(size, seed),
            Kind::Random => random(size, seed),
            Kind::Zeros => zeros(size),
        }
    }

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Text => "text",
            Kind::Html => "html",
            Kind::Json => "json",
            Kind::Random => "random",
            Kind::Zeros => "zeros",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate;

    #[test]
    fn generators_hit_exact_size() {
        for kind in Kind::ALL {
            for size in [1usize, 100, 4096, 10_000] {
                assert_eq!(kind.generate(size, 1).len(), size, "{kind:?}/{size}");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for kind in Kind::ALL {
            assert_eq!(kind.generate(2048, 7), kind.generate(2048, 7), "{kind:?}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(text(1024, 1), text(1024, 2));
        assert_ne!(html(1024, 1), html(1024, 2));
        assert_ne!(json(1024, 1), json(1024, 2));
        assert_ne!(random(1024, 1), random(1024, 2));
    }

    #[test]
    fn compressibility_ordering_is_sane() {
        let size = 8192;
        let ratio = |data: &[u8]| deflate::compress(data).len() as f64 / data.len() as f64;
        let r_zeros = ratio(&zeros(size));
        let r_html = ratio(&html(size, 3));
        let r_text = ratio(&text(size, 3));
        let r_random = ratio(&random(size, 3));
        assert!(r_zeros < 0.01, "zeros ratio {r_zeros}");
        assert!(r_html < 0.5, "html ratio {r_html}");
        assert!(r_text < 0.6, "text ratio {r_text}");
        assert!(r_random > 0.99, "random ratio {r_random}");
        assert!(r_zeros < r_html && r_html < r_random);
    }
}
