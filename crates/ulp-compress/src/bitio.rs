//! LSB-first bit I/O, the bit order Deflate (RFC 1951 §3.1.1) uses:
//! within a byte, bits are consumed least-significant first; Huffman
//! codes are packed starting from their *most* significant bit, so the
//! writer provides [`BitWriter::write_huffman`] which reverses the code.

use crate::DecodeError;

/// Accumulates bits LSB-first into a byte vector.
///
/// # Example
///
/// ```
/// use ulp_compress::bitio::BitWriter;
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0b11, 2);
/// let bytes = w.finish();
/// assert_eq!(bytes, vec![0b0001_1101]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Writes the low `n` bits of `value`, LSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn write_bits(&mut self, value: u32, n: u32) {
        assert!(n <= 32, "at most 32 bits per call");
        debug_assert!(n == 32 || value < (1 << n), "value wider than n bits");
        self.acc |= (value as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Writes a Huffman code of `len` bits: Deflate packs codes starting
    /// from the MSB, so the code is bit-reversed before writing.
    pub fn write_huffman(&mut self, code: u32, len: u32) {
        let reversed = code.reverse_bits() >> (32 - len);
        self.write_bits(reversed, len);
    }

    /// Pads to a byte boundary with zero bits (used before stored blocks).
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.write_bits(0, pad);
        }
    }

    /// Appends raw bytes; the writer must be byte-aligned.
    ///
    /// # Panics
    ///
    /// Panics if the writer is not at a byte boundary.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(self.nbits, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Flushes any partial byte (zero-padded) and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

/// Reads bits LSB-first from a byte slice.
///
/// # Example
///
/// ```
/// use ulp_compress::bitio::BitReader;
/// let mut r = BitReader::new(&[0b0001_1101]);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_bits(2).unwrap(), 0b11);
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Reads `n` bits.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than `n` bits
    /// remain.
    pub fn read_bits(&mut self, n: u32) -> Result<u32, DecodeError> {
        assert!(n <= 32, "at most 32 bits per call");
        self.refill();
        if self.nbits < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let v = (self.acc & ((1u64 << n) - 1)) as u32;
        let v = if n == 0 { 0 } else { v };
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Peeks up to `n` bits without consuming them; missing bits at the
    /// end of input read as zero (standard for Huffman table lookup).
    pub fn peek_bits(&mut self, n: u32) -> u32 {
        self.refill();
        (self.acc & ((1u64 << n) - 1)) as u32
    }

    /// Consumes `n` bits previously peeked.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than `n` bits
    /// remain.
    pub fn consume(&mut self, n: u32) -> Result<(), DecodeError> {
        if self.nbits < n {
            return Err(DecodeError::UnexpectedEof);
        }
        self.acc >>= n;
        self.nbits -= n;
        Ok(())
    }

    /// Discards bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Reads `n` raw bytes; the reader must be byte-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if not enough bytes remain.
    ///
    /// # Panics
    ///
    /// Panics if the reader is not byte-aligned.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, DecodeError> {
        assert_eq!(self.nbits % 8, 0, "read_bytes requires byte alignment");
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let b = self.read_bits(8)?;
            out.push(b as u8);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn writer_packs_lsb_first() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 1);
        w.write_bits(0b111, 3);
        assert_eq!(w.finish(), vec![0b0001_1101]);
    }

    #[test]
    fn huffman_codes_are_reversed() {
        let mut w = BitWriter::new();
        // Code 0b110 (3 bits) must be emitted MSB-first: bits 1,1,0.
        w.write_huffman(0b110, 3);
        assert_eq!(w.finish(), vec![0b0000_0011]);
    }

    #[test]
    fn align_and_raw_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_byte();
        w.write_bytes(&[0xAB, 0xCD]);
        assert_eq!(w.finish(), vec![0x01, 0xAB, 0xCD]);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn reader_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0x3FF, 10);
        w.write_bits(0, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(10).unwrap(), 0x3FF);
        assert_eq!(r.read_bits(2).unwrap(), 0);
    }

    #[test]
    fn reader_eof() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = BitReader::new(&[0b0101_0101]);
        assert_eq!(r.peek_bits(4), 0b0101);
        assert_eq!(r.peek_bits(4), 0b0101);
        r.consume(2).unwrap();
        assert_eq!(r.read_bits(2).unwrap(), 0b01);
    }

    #[test]
    fn peek_past_end_reads_zeros() {
        let mut r = BitReader::new(&[0b1]);
        assert_eq!(r.peek_bits(16), 1);
    }

    #[test]
    fn reader_align_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_bytes(&[0x42]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        assert_eq!(r.read_bytes(1).unwrap(), vec![0x42]);
    }

    proptest! {
        #[test]
        fn prop_round_trip_bit_sequences(fields in proptest::collection::vec((0u32..=0xFFFF, 1u32..=16), 0..64)) {
            let mut w = BitWriter::new();
            for &(v, n) in &fields {
                w.write_bits(v & ((1 << n) - 1), n);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(v, n) in &fields {
                prop_assert_eq!(r.read_bits(n).unwrap(), v & ((1 << n) - 1));
            }
        }
    }
}
