//! Deflate decoder (RFC 1951): handles stored, fixed-Huffman and
//! dynamic-Huffman blocks.
//!
//! The decoder is deliberately independent of the encoder internals: it
//! rebuilds every table from the bit stream, so encoder/decoder agreement
//! is real evidence of format conformance (and both sides are further
//! validated against each other by property tests).

use crate::bitio::BitReader;
use crate::huffman::{fixed_distance_lengths, fixed_literal_lengths, Decoder};
use crate::lz77::{DIST_TABLE, LENGTH_TABLE};
use crate::DecodeError;

const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Decompresses a complete raw Deflate stream.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated input, malformed headers,
/// invalid Huffman codes or out-of-window back-references.
///
/// # Example
///
/// ```
/// use ulp_compress::{deflate, inflate};
/// let out = deflate::compress(b"inflate me");
/// assert_eq!(inflate::decompress(&out).unwrap(), b"inflate me");
/// ```
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let mut reader = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let is_final = reader.read_bits(1)? == 1;
        let btype = reader.read_bits(2)?;
        match btype {
            0b00 => inflate_stored(&mut reader, &mut out)?,
            0b01 => {
                let lit = Decoder::from_lengths(&fixed_literal_lengths())
                    .ok_or(DecodeError::InvalidStream("fixed literal table"))?;
                let dist = Decoder::from_lengths(&fixed_distance_lengths())
                    .ok_or(DecodeError::InvalidStream("fixed distance table"))?;
                inflate_block(&mut reader, &mut out, &lit, Some(&dist))?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_tables(&mut reader)?;
                inflate_block(&mut reader, &mut out, &lit, dist.as_ref())?;
            }
            _ => return Err(DecodeError::InvalidStream("reserved block type")),
        }
        if is_final {
            return Ok(out);
        }
    }
}

fn inflate_stored(reader: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), DecodeError> {
    reader.align_byte();
    let len_bytes = reader.read_bytes(2)?;
    let nlen_bytes = reader.read_bytes(2)?;
    let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]);
    let nlen = u16::from_le_bytes([nlen_bytes[0], nlen_bytes[1]]);
    if len != !nlen {
        return Err(DecodeError::InvalidStream("stored LEN/NLEN mismatch"));
    }
    let payload = reader.read_bytes(len as usize)?;
    out.extend_from_slice(&payload);
    Ok(())
}

fn read_dynamic_tables(
    reader: &mut BitReader<'_>,
) -> Result<(Decoder, Option<Decoder>), DecodeError> {
    let hlit = reader.read_bits(5)? as usize + 257;
    let hdist = reader.read_bits(5)? as usize + 1;
    let hclen = reader.read_bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(DecodeError::InvalidStream("table sizes out of range"));
    }
    let mut clc_lens = [0u8; 19];
    for &sym in CLC_ORDER.iter().take(hclen) {
        clc_lens[sym] = reader.read_bits(3)? as u8;
    }
    let clc =
        Decoder::from_lengths(&clc_lens).ok_or(DecodeError::InvalidStream("code-length code"))?;

    let total = hlit + hdist;
    let mut lengths = Vec::with_capacity(total);
    while lengths.len() < total {
        let sym = clc.decode(reader)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let prev = *lengths
                    .last()
                    .ok_or(DecodeError::InvalidStream("repeat with no previous length"))?;
                let run = reader.read_bits(2)? + 3;
                for _ in 0..run {
                    lengths.push(prev);
                }
            }
            17 => {
                let run = reader.read_bits(3)? + 3;
                lengths.extend(std::iter::repeat_n(0, run as usize));
            }
            18 => {
                let run = reader.read_bits(7)? + 11;
                lengths.extend(std::iter::repeat_n(0, run as usize));
            }
            _ => return Err(DecodeError::InvalidStream("bad code-length symbol")),
        }
    }
    if lengths.len() != total {
        return Err(DecodeError::InvalidStream("code lengths overflow tables"));
    }
    let (lit_lens, dist_lens) = lengths.split_at(hlit);
    if lit_lens[256] == 0 {
        return Err(DecodeError::InvalidStream("no end-of-block code"));
    }
    let lit = Decoder::from_lengths(lit_lens)
        .ok_or(DecodeError::InvalidStream("literal/length table"))?;
    // A stream with no matches may transmit an empty distance code.
    let dist = Decoder::from_lengths(dist_lens);
    Ok((lit, dist))
}

fn inflate_block(
    reader: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Decoder,
    dist: Option<&Decoder>,
) -> Result<(), DecodeError> {
    loop {
        let sym = lit.decode(reader)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let (base, extra) = LENGTH_TABLE[(sym - 257) as usize];
                let length = base as usize + reader.read_bits(extra as u32)? as usize;
                let dist_decoder =
                    dist.ok_or(DecodeError::InvalidStream("match with no distance table"))?;
                let dsym = dist_decoder.decode(reader)?;
                if dsym >= 30 {
                    return Err(DecodeError::InvalidStream("bad distance symbol"));
                }
                let (dbase, dextra) = DIST_TABLE[dsym as usize];
                let distance = dbase as usize + reader.read_bits(dextra as u32)? as usize;
                if distance == 0 || distance > out.len() {
                    return Err(DecodeError::BadDistance);
                }
                for _ in 0..length {
                    let b = out[out.len() - distance];
                    out.push(b);
                }
            }
            _ => return Err(DecodeError::InvalidStream("bad literal/length symbol")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{compress, compress_with, Strategy};
    use crate::lz77::MatcherConfig;
    use proptest::prelude::*;

    #[test]
    fn handcrafted_stored_block() {
        // BFINAL=1, BTYPE=00, align, LEN=3, NLEN=!3, "abc".
        let stream = [0x01, 0x03, 0x00, 0xFC, 0xFF, b'a', b'b', b'c'];
        assert_eq!(decompress(&stream).unwrap(), b"abc");
    }

    #[test]
    fn stored_nlen_mismatch_rejected() {
        let stream = [0x01, 0x03, 0x00, 0x00, 0x00, b'a', b'b', b'c'];
        assert_eq!(
            decompress(&stream),
            Err(DecodeError::InvalidStream("stored LEN/NLEN mismatch"))
        );
    }

    #[test]
    fn truncated_input_rejected() {
        let good = compress(b"hello hello hello hello");
        for cut in 0..good.len() {
            // Every strict prefix must fail (never panic, never succeed
            // with the full output).
            if let Ok(out) = decompress(&good[..cut]) {
                assert_ne!(out, b"hello hello hello hello");
            }
        }
    }

    #[test]
    fn reserved_block_type_rejected() {
        // BFINAL=1, BTYPE=11.
        let stream = [0b0000_0111];
        assert_eq!(
            decompress(&stream),
            Err(DecodeError::InvalidStream("reserved block type"))
        );
    }

    #[test]
    fn empty_input_is_eof() {
        assert_eq!(decompress(&[]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn bad_distance_rejected() {
        // Craft a fixed block: one literal then a match with distance 4
        // (> output length 1).
        use crate::bitio::BitWriter;
        use crate::lz77::Token;
        let tokens = [
            Token::Literal(b'x'),
            Token::Match {
                length: 3,
                distance: 4,
            },
        ];
        let mut w = BitWriter::new();
        crate::deflate::write_fixed_block(&mut w, &tokens, true);
        let stream = w.finish();
        assert_eq!(decompress(&stream), Err(DecodeError::BadDistance));
    }

    #[test]
    fn multi_block_streams() {
        // Two fixed blocks back to back.
        use crate::bitio::BitWriter;
        use crate::lz77::Token;
        let mut w = BitWriter::new();
        crate::deflate::write_fixed_block(&mut w, &[Token::Literal(b'a')], false);
        crate::deflate::write_fixed_block(&mut w, &[Token::Literal(b'b')], true);
        assert_eq!(decompress(&w.finish()).unwrap(), b"ab");
    }

    proptest! {
        #[test]
        fn prop_decompress_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decompress(&junk); // must return, never panic
        }

        #[test]
        fn prop_round_trip_all_strategies(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            for s in [Strategy::Stored, Strategy::Fixed, Strategy::Dynamic] {
                let out = compress_with(&data, MatcherConfig::default(), s);
                prop_assert_eq!(&decompress(&out).unwrap(), &data);
            }
        }
    }
}
