//! Property-based round-trip suites for the Deflate codec: every stream
//! `deflate::compress` emits must `inflate::decompress` back to the
//! original bytes, for arbitrary generated input and for every corpus
//! generator the simulators feed through the hardware model.

use proptest::prelude::*;
use ulp_compress::{corpus, deflate, inflate};

proptest! {
    #[test]
    fn prop_arbitrary_bytes_round_trip(
        data in proptest::collection::vec(any::<u8>(), 0..6000),
    ) {
        let compressed = deflate::compress(&data);
        prop_assert_eq!(inflate::decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn prop_html_corpus_round_trips_and_shrinks(
        size in 64usize..8192,
        seed in any::<u64>(),
    ) {
        let page = corpus::html(size, seed);
        let compressed = deflate::compress(&page);
        prop_assert_eq!(inflate::decompress(&compressed).unwrap(), page.clone());
        // Markup is redundant: the codec must actually help on it, or
        // the SmartDIMM compression results would be meaningless.
        if size >= 1024 {
            prop_assert!(
                compressed.len() < page.len(),
                "html page of {} bytes grew to {}",
                page.len(),
                compressed.len()
            );
        }
    }

    #[test]
    fn prop_every_corpus_kind_round_trips(
        kind in 0u8..4,
        size in 1usize..4096,
        seed in any::<u64>(),
    ) {
        let page = match kind {
            0 => corpus::text(size, seed),
            1 => corpus::html(size, seed),
            2 => corpus::json(size, seed),
            _ => corpus::random(size, seed),
        };
        let compressed = deflate::compress(&page);
        prop_assert_eq!(inflate::decompress(&compressed).unwrap(), page);
    }

    #[test]
    fn prop_runs_of_repeated_bytes_round_trip(
        byte in any::<u8>(),
        len in 1usize..16384,
    ) {
        // Long back-reference chains are where LZ77 window handling
        // breaks first.
        let data = vec![byte; len];
        let compressed = deflate::compress(&data);
        prop_assert_eq!(inflate::decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn prop_truncated_streams_never_decode_to_wrong_bytes(
        size in 256usize..2048,
        seed in any::<u64>(),
        cut in 1usize..64,
    ) {
        // Fault injection delivers truncated streams to the inflater
        // (deferred writebacks); it must error, not fabricate output.
        let page = corpus::text(size, seed);
        let compressed = deflate::compress(&page);
        prop_assume!(cut < compressed.len());
        let truncated = &compressed[..compressed.len() - cut];
        if let Ok(decoded) = inflate::decompress(truncated) {
            prop_assert_ne!(decoded, page, "truncated stream decoded to the full page");
        }
    }
}

#[test]
fn zeros_compress_massively() {
    let page = corpus::zeros(4096);
    let compressed = deflate::compress(&page);
    assert!(
        compressed.len() < 64,
        "4 KB of zeros became {} bytes",
        compressed.len()
    );
    assert_eq!(inflate::decompress(&compressed).unwrap(), page);
}
