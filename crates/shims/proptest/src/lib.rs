//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! real `proptest` cannot be fetched. This shim implements the subset of the
//! API the workspace uses — `proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `Strategy`/`prop_map`, `any::<T>()`, integer/float range
//! strategies, tuple strategies and `collection::vec` — on top of a small
//! deterministic RNG.
//!
//! Differences from real proptest, by design:
//! - No shrinking. A failing case panics with the sampled inputs unshrunk.
//! - Cases are derived deterministically from the test name and case index,
//!   so every run (and every machine) explores the identical inputs.

pub mod test_runner {
    /// xoshiro256++ seeded via SplitMix64 — same construction simkit uses,
    /// reimplemented here so the shim has no dependencies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Stable per-test, per-case seed: FNV-1a over the test name mixed
        /// with the case index.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::new(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        pub fn gen_u64_below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Modulo bias is acceptable for test-input generation.
            self.next_u64() % bound
        }

        pub fn gen_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Only the `cases` knob is honoured; everything else real proptest
    /// configures (shrinking, persistence, forking) has no analogue here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Value-generation strategy. Unlike real proptest there is no value
    /// tree / shrinking: a strategy just samples concrete values.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// `Just(v)` — always yields a clone of `v`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive samples",
                self.whence
            );
        }
    }

    /// Uniform choice between boxed alternatives — backs `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_u64_below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start.wrapping_add(rng.gen_u64_below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128) + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.gen_u64_below(span as u64) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.gen_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.gen_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! arb_tuple {
        ($(($($n:ident),+);)*) => {$(
            impl<$($n: Arbitrary),+> Arbitrary for ($($n,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($n::arbitrary(rng),)+)
                }
            }
        )*};
    }
    arb_tuple! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
    }

    /// Strategy form of `Arbitrary`, returned by `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.gen_u64_below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `prop::collection::vec(..)`-style paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($args:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(stringify!($name), __case);
                    // A closure per case so `prop_assume!` can early-return.
                    let __one_case = |__rng: &mut $crate::test_runner::TestRng| {
                        $crate::__proptest_bind!(__rng, ($($args)*), $body)
                    };
                    __one_case(&mut __rng);
                }
            }
        )*
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident, ($p:pat in $s:expr, $($rest:tt)*), $body:block) => {{
        let $p = $crate::strategy::Strategy::sample(&($s), $rng);
        $crate::__proptest_bind!($rng, ($($rest)*), $body)
    }};
    ($rng:ident, ($p:pat in $s:expr), $body:block) => {{
        let $p = $crate::strategy::Strategy::sample(&($s), $rng);
        $crate::__proptest_bind!($rng, (), $body)
    }};
    ($rng:ident, ($i:ident : $t:ty, $($rest:tt)*), $body:block) => {{
        let $i: $t = $crate::arbitrary::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng, ($($rest)*), $body)
    }};
    ($rng:ident, ($i:ident : $t:ty), $body:block) => {{
        let $i: $t = $crate::arbitrary::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng, (), $body)
    }};
    ($rng:ident, (), $body:block) => { $body };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn shim_ranges_in_bounds(x in 10u64..20, y in 0u8..4, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn shim_typed_args(seed: u64, key: [u8; 16], flag: bool) {
            let _ = (seed, key, flag);
            prop_assert_eq!(key.len(), 16);
        }

        #[test]
        fn shim_vec_and_assume(v in collection::vec(any::<u8>(), 0..32)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 32);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u64),
        B(bool),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![(0u64..100).prop_map(Op::A), any::<bool>().prop_map(Op::B),]
    }

    proptest! {
        #[test]
        fn shim_oneof_and_map(ops in collection::vec(op_strategy(), 1..8)) {
            prop_assert!(!ops.is_empty());
        }
    }

    #[test]
    fn shim_is_deterministic() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
