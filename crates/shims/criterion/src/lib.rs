//! Offline stand-in for the `criterion` crate.
//!
//! Implements enough of the API for the workspace's `harness = false`
//! benches to compile and run: each benchmark executes a short warmup plus a
//! fixed number of timed iterations and prints mean wall-clock time (and
//! throughput when configured). There is no statistical analysis, HTML
//! report, or comparison against saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

pub struct Bencher {
    /// Mean time per iteration, filled in by `iter`.
    mean: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup, then timed loop.
        for _ in 0..2 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean = start.elapsed() / self.iters as u32;
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: self.sample_size.min(20).max(3),
        };
        f(&mut b);
        let mut line = format!("{}/{}: {:?}/iter", self.name, label, b.mean);
        if let Some(t) = self.throughput {
            let secs = b.mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => {
                    line += &format!(" ({:.1} MiB/s)", n as f64 / secs / (1024.0 * 1024.0));
                }
                Throughput::Elements(n) => {
                    line += &format!(" ({:.0} elem/s)", n as f64 / secs);
                }
            }
        }
        println!("{line}");
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        self.run(label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label();
        self.run(&label, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: "bench".into(),
            throughput: None,
            sample_size: 10,
            _parent: self,
        };
        group.run(label, f);
        drop(group);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Bytes(1024));
        let mut count = 0u64;
        group.bench_function("noop", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("sized", 64), &64usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(count > 0);
    }
}
