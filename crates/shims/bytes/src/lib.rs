//! Offline stand-in for the `bytes` crate.
//!
//! Only the surface the workspace uses: `Bytes` as an immutable, cheaply
//! clonable byte buffer with `from_static`, `copy_from_slice`, the common
//! `From` conversions, and slice access via `Deref`/`AsRef`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(bytes.to_vec()),
        }
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: Arc::new(bytes.to_vec()),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: Arc::new(s.into_bytes()),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes {
            data: Arc::new(s.as_bytes().to_vec()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(b.to_vec()),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data.as_ref() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(64) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 64 {
            write!(f, "... ({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_eq() {
        let a = Bytes::from("hello".to_string());
        let b = Bytes::from_static(b"hello");
        let c = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
