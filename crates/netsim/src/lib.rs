//! `netsim` models the network path of the SmartDIMM evaluation: a
//! discrete-event TCP sender/receiver with configurable segment loss, the
//! autonomous-SmartNIC kTLS offload state machine of Pismenny et al.
//! (which the paper's Observation 1 and Fig. 2 are built on), and a
//! minimal HTTP/1.1 codec used by the server harness in `platforms`.
//!
//! # Example
//!
//! ```
//! use netsim::tcp::{TcpConfig, simulate_transfer};
//!
//! let cfg = TcpConfig::default();           // lossless 100 GbE flow
//! let run = simulate_transfer(16 << 20, &cfg, |_ev| 0);
//! assert_eq!(run.delivered_bytes, 16 << 20);
//! assert!(run.goodput_gbps() > 1.0);
//! ```

pub mod http;
pub mod ktls;
pub mod tcp;
