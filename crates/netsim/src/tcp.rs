//! A discrete-event TCP flow model: sliding window, slow start /
//! congestion avoidance, fast retransmit on triple duplicate ACKs,
//! retransmission timeouts, and seeded segment loss.
//!
//! The model carries *byte ranges*, not payloads — every consumer in this
//! workspace (the kTLS offload model, the server harness) only needs the
//! order and timing of segment transmissions and deliveries. Reliability
//! is an asserted invariant: the receiver must see every byte exactly
//! once, in order.
//!
//! Time is in nanoseconds.

use std::collections::BTreeMap;

use simkit::{Cycle, DetRng, EventQueue};

/// Flow configuration.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: usize,
    /// Link rate in Gbit/s (100 GbE in the paper's testbed).
    pub link_gbps: f64,
    /// Round-trip time in nanoseconds (datacenter-scale default).
    pub rtt_ns: u64,
    /// Initial congestion window in segments.
    pub init_cwnd: usize,
    /// Maximum congestion window in segments (receive-window cap).
    pub max_cwnd: usize,
    /// Per-segment drop probability (the programmable-switch injection
    /// of §III / Fig. 2).
    pub loss_prob: f64,
    /// Per-segment reordering probability: the segment is delayed in the
    /// network so it arrives after its successors (Observation 1 names
    /// reordering alongside loss as what breaks autonomous NIC offloads —
    /// late arrivals trigger duplicate ACKs and spurious retransmits).
    pub reorder_prob: f64,
    /// Extra in-network delay applied to reordered segments (ns).
    pub reorder_delay_ns: u64,
    /// Retransmission timeout in nanoseconds.
    pub rto_ns: u64,
    /// RNG seed for loss decisions.
    pub seed: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            link_gbps: 100.0,
            rtt_ns: 50_000,
            init_cwnd: 10,
            max_cwnd: 1024,
            loss_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay_ns: 150_000,
            rto_ns: 200_000,
            seed: 1,
        }
    }
}

impl TcpConfig {
    /// Wire time of `len` payload bytes (with ~Ethernet/IP/TCP framing
    /// overhead of 78 bytes per segment).
    pub fn wire_time_ns(&self, len: usize) -> u64 {
        let bits = ((len + 78) * 8) as f64;
        (bits / self.link_gbps).ceil() as u64
    }
}

/// Events surfaced to the flow observer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowEvent {
    /// The sender put a segment on the wire. The observer's return value
    /// is added to the sender's processing time (e.g. CPU encryption).
    Tx {
        /// First byte of the segment.
        seq: u64,
        /// Payload length.
        len: usize,
        /// Whether this is a retransmission.
        retransmission: bool,
        /// Transmission time (ns).
        now: u64,
    },
    /// The receiver consumed in-order bytes.
    Deliver {
        /// First byte delivered.
        seq: u64,
        /// Number of bytes delivered.
        len: usize,
        /// Delivery time (ns).
        now: u64,
    },
}

/// Result of a simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpRun {
    /// Bytes delivered in order to the application.
    pub delivered_bytes: u64,
    /// Total elapsed time (ns).
    pub elapsed_ns: u64,
    /// Segments retransmitted (fast retransmit + timeout).
    pub retransmits: u64,
    /// Retransmission timeouts taken.
    pub timeouts: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Segments dropped by the loss process.
    pub drops: u64,
    /// Of `drops`, those forced by an installed fault injector (rather
    /// than the seeded random loss process).
    pub forced_drops: u64,
    /// Segments delayed by the reordering process.
    pub reordered: u64,
}

impl TcpRun {
    /// Application goodput in Gbit/s.
    pub fn goodput_gbps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        (self.delivered_bytes * 8) as f64 / self.elapsed_ns as f64
    }

    /// Registers the flow metrics under `scope` for a `telemetry/v1`
    /// snapshot.
    pub fn export_telemetry(&self, scope: &mut simkit::telemetry::Scope) {
        scope.set_counter("delivered_bytes", self.delivered_bytes);
        scope.set_counter("elapsed_ns", self.elapsed_ns);
        scope.set_counter("retransmits", self.retransmits);
        scope.set_counter("timeouts", self.timeouts);
        scope.set_counter("fast_retransmits", self.fast_retransmits);
        scope.set_counter("drops", self.drops);
        scope.set_counter("forced_drops", self.forced_drops);
        scope.set_counter("reordered", self.reordered);
        scope.set_gauge("goodput_gbps", self.goodput_gbps());
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Segment reaches the receiver.
    Arrival { seq: u64, len: usize },
    /// Cumulative ACK reaches the sender.
    Ack { ackno: u64 },
    /// Retransmission timer fires (valid only if epoch matches).
    Timeout { epoch: u64 },
}

/// Simulates the one-way transfer of `total_bytes` and returns flow
/// metrics. `observer` sees every Tx/Deliver event; for Tx events its
/// return value is added to the sender's per-segment processing time (the
/// hook the kTLS models use). It must return 0 for Deliver events.
///
/// # Panics
///
/// Panics if the flow fails to make progress (internal invariant).
pub fn simulate_transfer(
    total_bytes: u64,
    cfg: &TcpConfig,
    observer: impl FnMut(&FlowEvent) -> u64,
) -> TcpRun {
    simulate_transfer_with_faults(total_bytes, cfg, None, observer)
}

/// [`simulate_transfer`] with an optional fault injector: armed
/// `TcpLossBurst` events force-drop the segments whose transmission index
/// falls inside the burst window, on top of the configured random loss.
/// With `fault == None` the RNG draw sequence is identical to
/// [`simulate_transfer`].
pub fn simulate_transfer_with_faults(
    total_bytes: u64,
    cfg: &TcpConfig,
    fault: Option<&simkit::FaultHandle>,
    mut observer: impl FnMut(&FlowEvent) -> u64,
) -> TcpRun {
    assert!(total_bytes > 0, "empty transfer");
    let mut rng = DetRng::new(cfg.seed);
    let mut seg_counter: u64 = 0;
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut now: u64 = 0;

    // Sender state.
    let mut send_base: u64 = 0;
    let mut next_seq: u64 = 0;
    let mut cwnd: f64 = (cfg.init_cwnd * cfg.mss) as f64;
    let mut ssthresh: f64 = (cfg.max_cwnd * cfg.mss) as f64;
    let mut dup_acks = 0u32;
    // RFC 5681 §3.2 fast-recovery state: while set, additional duplicate
    // ACKs inflate cwnd (segments have left the network) and the next new
    // ACK deflates cwnd back to ssthresh.
    let mut in_recovery = false;
    let mut timer_epoch = 0u64;
    let mut link_free: u64 = 0;

    // Receiver state.
    let mut rcv_next: u64 = 0;
    let mut ooo: BTreeMap<u64, usize> = BTreeMap::new();

    let mut run = TcpRun {
        delivered_bytes: 0,
        elapsed_ns: 0,
        retransmits: 0,
        timeouts: 0,
        fast_retransmits: 0,
        drops: 0,
        forced_drops: 0,
        reordered: 0,
    };

    let max_cwnd_bytes = (cfg.max_cwnd * cfg.mss) as f64;
    let one_way = cfg.rtt_ns / 2;

    macro_rules! send_segment {
        ($q:expr, $seq:expr, $len:expr, $rtx:expr) => {{
            let seq: u64 = $seq;
            let len: usize = $len;
            let extra = observer(&FlowEvent::Tx {
                seq,
                len,
                retransmission: $rtx,
                now,
            });
            let start = now.max(link_free) + extra;
            let done = start + cfg.wire_time_ns(len);
            link_free = done;
            if $rtx {
                run.retransmits += 1;
            }
            // The random draw happens unconditionally so the RNG sequence
            // matches a fault-free run of the same config and seed.
            let random_drop = rng.gen_bool(cfg.loss_prob);
            let forced_drop = fault.is_some_and(|f| f.tcp_force_drop(seg_counter));
            seg_counter += 1;
            if random_drop || forced_drop {
                run.drops += 1;
                if forced_drop {
                    run.forced_drops += 1;
                }
            } else if rng.gen_bool(cfg.reorder_prob) {
                run.reordered += 1;
                $q.push(
                    Cycle(done + one_way + cfg.reorder_delay_ns),
                    Ev::Arrival { seq, len },
                );
            } else {
                $q.push(Cycle(done + one_way), Ev::Arrival { seq, len });
            }
        }};
    }

    macro_rules! arm_timer {
        ($q:expr) => {{
            timer_epoch += 1;
            $q.push(Cycle(now + cfg.rto_ns), Ev::Timeout { epoch: timer_epoch });
        }};
    }

    // Prime the window.
    while next_seq < total_bytes && (next_seq - send_base) as f64 + cfg.mss as f64 <= cwnd {
        let len = ((total_bytes - next_seq) as usize).min(cfg.mss);
        send_segment!(q, next_seq, len, false);
        next_seq += len as u64;
    }
    arm_timer!(q);

    let mut guard = 0u64;
    while send_base < total_bytes {
        guard += 1;
        assert!(guard < 100_000_000, "TCP simulation stuck");
        let Some((t, ev)) = q.pop() else {
            // Nothing in flight (everything dropped): timeout path should
            // have fired; if the queue is empty the flow is stuck.
            panic!("TCP event queue drained before completion");
        };
        now = now.max(t.raw());
        match ev {
            Ev::Arrival { seq, len } => {
                if seq == rcv_next {
                    rcv_next += len as u64;
                    // Drain contiguous out-of-order segments.
                    while let Some((&s, &l)) = ooo.first_key_value() {
                        if s <= rcv_next {
                            let end = s + l as u64;
                            if end > rcv_next {
                                rcv_next = end;
                            }
                            ooo.pop_first();
                        } else {
                            break;
                        }
                    }
                    let delivered = rcv_next - run.delivered_bytes;
                    observer(&FlowEvent::Deliver {
                        seq: run.delivered_bytes,
                        len: delivered as usize,
                        now,
                    });
                    run.delivered_bytes = rcv_next;
                } else if seq > rcv_next {
                    ooo.insert(seq, len);
                }
                q.push(Cycle(now + one_way), Ev::Ack { ackno: rcv_next });
            }
            Ev::Ack { ackno } => {
                if ackno > send_base {
                    send_base = ackno;
                    dup_acks = 0;
                    if in_recovery {
                        // Fast recovery exits on the first new ACK: deflate
                        // the window back to ssthresh (RFC 5681 §3.2 step 6)
                        // instead of growing from the inflated value.
                        in_recovery = false;
                        cwnd = ssthresh;
                    } else if cwnd < ssthresh {
                        // Slow start.
                        cwnd += cfg.mss as f64;
                    } else {
                        // Congestion avoidance.
                        cwnd += (cfg.mss * cfg.mss) as f64 / cwnd;
                    }
                    cwnd = cwnd.min(max_cwnd_bytes);
                    if send_base < total_bytes {
                        arm_timer!(q);
                    }
                } else if ackno == send_base && send_base < total_bytes {
                    dup_acks += 1;
                    if dup_acks == 3 && !in_recovery {
                        // Fast retransmit, then enter fast recovery with the
                        // window inflated by the three segments known to
                        // have left the network (RFC 5681 §3.2 steps 2–3).
                        run.fast_retransmits += 1;
                        in_recovery = true;
                        ssthresh = (cwnd / 2.0).max(2.0 * cfg.mss as f64);
                        cwnd = (ssthresh + 3.0 * cfg.mss as f64).min(max_cwnd_bytes);
                        let len = ((total_bytes - send_base) as usize).min(cfg.mss);
                        send_segment!(q, send_base, len, true);
                        arm_timer!(q);
                    } else if in_recovery {
                        // Each further duplicate ACK means another segment
                        // left the network: inflate by one MSS so new data
                        // can be clocked out (RFC 5681 §3.2 step 4).
                        cwnd = (cwnd + cfg.mss as f64).min(max_cwnd_bytes);
                    }
                }
                // Transmit whatever the updated window allows.
                while next_seq < total_bytes
                    && (next_seq - send_base) as f64 + cfg.mss as f64 <= cwnd
                {
                    let len = ((total_bytes - next_seq) as usize).min(cfg.mss);
                    send_segment!(q, next_seq, len, false);
                    next_seq += len as u64;
                }
            }
            Ev::Timeout { epoch } => {
                if epoch == timer_epoch && send_base < total_bytes {
                    run.timeouts += 1;
                    ssthresh = (cwnd / 2.0).max(2.0 * cfg.mss as f64);
                    cwnd = cfg.mss as f64;
                    // An RTO abandons fast recovery and its dup-ACK count;
                    // stale dup ACKs must not trigger a spurious fast
                    // retransmit after the window restarts.
                    dup_acks = 0;
                    in_recovery = false;
                    let len = ((total_bytes - send_base) as usize).min(cfg.mss);
                    send_segment!(q, send_base, len, true);
                    arm_timer!(q);
                }
            }
        }
    }
    run.elapsed_ns = now;
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lossless_transfer_completes() {
        let cfg = TcpConfig::default();
        let run = simulate_transfer(10 << 20, &cfg, |_| 0);
        assert_eq!(run.delivered_bytes, 10 << 20);
        assert_eq!(run.retransmits, 0);
        assert_eq!(run.drops, 0);
        assert!(run.goodput_gbps() > 1.0, "goodput {}", run.goodput_gbps());
    }

    #[test]
    fn goodput_bounded_by_link_rate() {
        let cfg = TcpConfig::default();
        let run = simulate_transfer(64 << 20, &cfg, |_| 0);
        assert!(run.goodput_gbps() <= cfg.link_gbps * 1.01);
    }

    #[test]
    fn delivery_is_in_order_and_exact() {
        let cfg = TcpConfig {
            loss_prob: 0.02,
            seed: 42,
            ..TcpConfig::default()
        };
        let mut expected_seq = 0u64;
        let run = simulate_transfer(4 << 20, &cfg, |ev| {
            if let FlowEvent::Deliver { seq, len, .. } = ev {
                assert_eq!(*seq, expected_seq, "in-order delivery");
                expected_seq += *len as u64;
            }
            0
        });
        assert_eq!(expected_seq, 4 << 20);
        assert_eq!(run.delivered_bytes, 4 << 20);
        assert!(run.drops > 0);
        assert!(run.retransmits >= run.drops);
    }

    #[test]
    fn loss_reduces_goodput() {
        let base = TcpConfig::default();
        let clean = simulate_transfer(16 << 20, &base, |_| 0);
        let lossy_cfg = TcpConfig {
            loss_prob: 0.01,
            ..base
        };
        let lossy = simulate_transfer(16 << 20, &lossy_cfg, |_| 0);
        assert!(
            lossy.goodput_gbps() < clean.goodput_gbps() * 0.8,
            "lossy {} vs clean {}",
            lossy.goodput_gbps(),
            clean.goodput_gbps()
        );
    }

    #[test]
    fn higher_loss_is_worse() {
        let mut prev = f64::INFINITY;
        for loss in [0.0, 0.002, 0.01, 0.05] {
            let cfg = TcpConfig {
                loss_prob: loss,
                seed: 7,
                ..TcpConfig::default()
            };
            let run = simulate_transfer(8 << 20, &cfg, |_| 0);
            assert_eq!(run.delivered_bytes, 8 << 20, "reliable at loss {loss}");
            assert!(
                run.goodput_gbps() <= prev * 1.05,
                "goodput must not increase with loss ({loss})"
            );
            prev = run.goodput_gbps();
        }
    }

    #[test]
    fn goodput_monotone_non_increasing_in_loss() {
        // Regression for the RFC 5681 fast-recovery fixes: before cwnd was
        // deflated to ssthresh on recovery exit (and dup ACKs inflated it,
        // and RTOs reset the dup-ACK count), the sweep below was not
        // monotone — seed 63 showed goodput *rising* from 0.001 to 0.002
        // loss because the un-deflated window overshot after recovery.
        for seed in [7u64, 21, 63] {
            let mut prev = f64::INFINITY;
            for loss in [0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.08] {
                let cfg = TcpConfig {
                    loss_prob: loss,
                    seed,
                    ..TcpConfig::default()
                };
                let run = simulate_transfer(8 << 20, &cfg, |_| 0);
                assert_eq!(run.delivered_bytes, 8 << 20, "reliable at loss {loss}");
                assert!(
                    run.goodput_gbps() <= prev,
                    "goodput increased with loss (seed {seed}, loss {loss}): \
                     {} > {prev}",
                    run.goodput_gbps()
                );
                prev = run.goodput_gbps();
            }
        }
    }

    #[test]
    fn sender_processing_cost_throttles_flow() {
        let cfg = TcpConfig::default();
        let fast = simulate_transfer(8 << 20, &cfg, |_| 0);
        // 2 µs of CPU work per segment caps throughput well below line rate.
        let slow = simulate_transfer(8 << 20, &cfg, |ev| match ev {
            FlowEvent::Tx { .. } => 2_000,
            _ => 0,
        });
        assert!(slow.goodput_gbps() < fast.goodput_gbps() * 0.7);
        // 1460B / 2µs ≈ 5.8 Gbps upper bound from the CPU cost alone.
        assert!(slow.goodput_gbps() < 7.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TcpConfig {
            loss_prob: 0.01,
            seed: 99,
            ..TcpConfig::default()
        };
        let a = simulate_transfer(2 << 20, &cfg, |_| 0);
        let b = simulate_transfer(2 << 20, &cfg, |_| 0);
        assert_eq!(a, b);
    }

    #[test]
    fn retransmissions_are_flagged() {
        let cfg = TcpConfig {
            loss_prob: 0.05,
            seed: 3,
            ..TcpConfig::default()
        };
        let mut rtx_seen = 0u64;
        let run = simulate_transfer(2 << 20, &cfg, |ev| {
            if let FlowEvent::Tx {
                retransmission: true,
                ..
            } = ev
            {
                rtx_seen += 1;
            }
            0
        });
        assert_eq!(rtx_seen, run.retransmits);
        assert!(rtx_seen > 0);
    }

    #[test]
    fn reordering_delivers_everything_in_order() {
        let cfg = TcpConfig {
            reorder_prob: 0.05,
            seed: 11,
            ..TcpConfig::default()
        };
        let mut expected = 0u64;
        let run = simulate_transfer(4 << 20, &cfg, |ev| {
            if let FlowEvent::Deliver { seq, len, .. } = ev {
                assert_eq!(*seq, expected);
                expected += *len as u64;
            }
            0
        });
        assert_eq!(run.delivered_bytes, 4 << 20);
        assert!(run.reordered > 0);
        assert_eq!(run.drops, 0);
    }

    #[test]
    fn reordering_costs_throughput_without_losing_data() {
        let clean = simulate_transfer(8 << 20, &TcpConfig::default(), |_| 0);
        let cfg = TcpConfig {
            reorder_prob: 0.02,
            seed: 12,
            ..TcpConfig::default()
        };
        let reordered = simulate_transfer(8 << 20, &cfg, |_| 0);
        assert_eq!(reordered.delivered_bytes, 8 << 20);
        assert!(reordered.goodput_gbps() < clean.goodput_gbps());
        // Spurious fast retransmits from duplicate ACKs are the mechanism.
        assert!(reordered.fast_retransmits > 0 || reordered.timeouts > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_reliable_delivery_under_any_loss(
            bytes in 1u64..500_000,
            loss in 0.0f64..0.12,
            seed: u64,
        ) {
            let cfg = TcpConfig { loss_prob: loss, seed, ..TcpConfig::default() };
            let mut deliveries: Vec<(u64, usize)> = Vec::new();
            let run = simulate_transfer(bytes, &cfg, |ev| {
                if let FlowEvent::Deliver { seq, len, .. } = ev {
                    deliveries.push((*seq, *len));
                }
                0
            });
            prop_assert_eq!(run.delivered_bytes, bytes);
            // Deliveries are contiguous, in order, and cover [0, bytes).
            let mut cursor = 0u64;
            for (seq, len) in deliveries {
                prop_assert_eq!(seq, cursor);
                cursor += len as u64;
            }
            prop_assert_eq!(cursor, bytes);
        }
    }
}
