//! A minimal HTTP/1.1 codec: enough for the Nginx-like server harness
//! (request parsing, response building, Content-Encoding negotiation).

use bytes::Bytes;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (only GET is used by the harness).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Whether the client advertised `Accept-Encoding: deflate`.
    pub accepts_deflate: bool,
    /// Whether the connection should stay open.
    pub keep_alive: bool,
}

impl Request {
    /// Builds a GET request for `path`.
    pub fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            accepts_deflate: false,
            keep_alive: true,
        }
    }

    /// Enables `Accept-Encoding: deflate`.
    pub fn with_deflate(mut self) -> Request {
        self.accepts_deflate = true;
        self
    }

    /// Serializes to wire format.
    pub fn to_bytes(&self) -> Bytes {
        let mut s = format!("{} {} HTTP/1.1\r\nHost: bench\r\n", self.method, self.path);
        if self.accepts_deflate {
            s.push_str("Accept-Encoding: deflate\r\n");
        }
        if !self.keep_alive {
            s.push_str("Connection: close\r\n");
        }
        s.push_str("\r\n");
        Bytes::from(s)
    }

    /// Parses a request head.
    ///
    /// # Errors
    ///
    /// Returns a static description of the malformation.
    pub fn parse(data: &[u8]) -> Result<Request, &'static str> {
        let text = std::str::from_utf8(data).map_err(|_| "not utf-8")?;
        let head = text
            .split("\r\n\r\n")
            .next()
            .ok_or("no header terminator")?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or("empty request")?;
        let mut parts = request_line.split(' ');
        let method = parts.next().ok_or("missing method")?.to_string();
        let path = parts.next().ok_or("missing path")?.to_string();
        let version = parts.next().ok_or("missing version")?;
        if !version.starts_with("HTTP/1.") {
            return Err("unsupported version");
        }
        let mut accepts_deflate = false;
        let mut keep_alive = true;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_ascii_lowercase();
            match name.as_str() {
                "accept-encoding" => accepts_deflate = value.contains("deflate"),
                "connection" => keep_alive = value != "close",
                _ => {}
            }
        }
        Ok(Request {
            method,
            path,
            accepts_deflate,
            keep_alive,
        })
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 404, ...).
    pub status: u16,
    /// Body bytes (possibly already content-encoded).
    pub body: Bytes,
    /// Whether the body carries `Content-Encoding: deflate`.
    pub deflate_encoded: bool,
}

impl Response {
    /// A 200 response with a plain body.
    pub fn ok(body: impl Into<Bytes>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            deflate_encoded: false,
        }
    }

    /// A 404 response.
    pub fn not_found() -> Response {
        Response {
            status: 404,
            body: Bytes::from_static(b"not found"),
            deflate_encoded: false,
        }
    }

    /// Marks the body as deflate-encoded.
    pub fn with_deflate_body(mut self, body: impl Into<Bytes>) -> Response {
        self.body = body.into();
        self.deflate_encoded = true;
        self
    }

    /// Serializes header + body to wire format.
    pub fn to_bytes(&self) -> Bytes {
        let reason = match self.status {
            200 => "OK",
            404 => "Not Found",
            _ => "Unknown",
        };
        let mut s = format!(
            "HTTP/1.1 {} {}\r\nServer: smartdimm-bench\r\nContent-Length: {}\r\n",
            self.status,
            reason,
            self.body.len()
        );
        if self.deflate_encoded {
            s.push_str("Content-Encoding: deflate\r\n");
        }
        s.push_str("\r\n");
        let mut out = Vec::with_capacity(s.len() + self.body.len());
        out.extend_from_slice(s.as_bytes());
        out.extend_from_slice(&self.body);
        Bytes::from(out)
    }

    /// Parses a full response (header + complete body).
    ///
    /// # Errors
    ///
    /// Returns a static description of the malformation.
    pub fn parse(data: &[u8]) -> Result<Response, &'static str> {
        let split = data
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .ok_or("no header terminator")?;
        let head = std::str::from_utf8(&data[..split]).map_err(|_| "not utf-8")?;
        let body = &data[split + 4..];
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or("empty response")?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .ok_or("missing status")?
            .parse()
            .map_err(|_| "bad status")?;
        let mut content_length = None;
        let mut deflate = false;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = Some(value.trim().parse().map_err(|_| "bad length")?)
                }
                "content-encoding" => deflate = value.trim().eq_ignore_ascii_case("deflate"),
                _ => {}
            }
        }
        let len: usize = content_length.ok_or("missing content-length")?;
        if body.len() < len {
            return Err("truncated body");
        }
        Ok(Response {
            status,
            body: Bytes::copy_from_slice(&body[..len]),
            deflate_encoded: deflate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = Request::get("/index.html").with_deflate();
        let parsed = Request::parse(&req.to_bytes()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_connection_close() {
        let mut req = Request::get("/x");
        req.keep_alive = false;
        let parsed = Request::parse(&req.to_bytes()).unwrap();
        assert!(!parsed.keep_alive);
    }

    #[test]
    fn request_parse_rejects_garbage() {
        assert!(Request::parse(b"\xff\xfe").is_err());
        assert!(Request::parse(b"GET /\r\n\r\n").is_err()); // no version
        assert!(Request::parse(b"GET / SPDY/3\r\n\r\n").is_err());
    }

    #[test]
    fn response_round_trip_plain() {
        let resp = Response::ok("hello body");
        let parsed = Response::parse(&resp.to_bytes()).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(&parsed.body[..], b"hello body");
        assert!(!parsed.deflate_encoded);
    }

    #[test]
    fn response_round_trip_deflate() {
        let resp = Response::ok("").with_deflate_body(vec![1u8, 2, 3]);
        let parsed = Response::parse(&resp.to_bytes()).unwrap();
        assert!(parsed.deflate_encoded);
        assert_eq!(&parsed.body[..], &[1, 2, 3]);
    }

    #[test]
    fn response_rejects_truncation() {
        let resp = Response::ok(vec![9u8; 100]);
        let bytes = resp.to_bytes();
        assert_eq!(
            Response::parse(&bytes[..bytes.len() - 1]),
            Err("truncated body")
        );
    }

    #[test]
    fn not_found_serializes() {
        let parsed = Response::parse(&Response::not_found().to_bytes()).unwrap();
        assert_eq!(parsed.status, 404);
    }
}
