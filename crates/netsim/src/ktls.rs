//! Autonomous TLS offload placements over a TCP flow — the model behind
//! Observation 1 and Fig. 2.
//!
//! Two ways to encrypt an HTTPS stream's payload:
//!
//! * [`TlsPlacement::CpuAesNi`] — the kernel/OpenSSL encrypts every byte
//!   on the CPU with AES-NI before it enters the TCP stack; constant cost
//!   per transmitted byte, indifferent to losses.
//! * [`TlsPlacement::SmartNic`] — autonomous inline offload (Pismenny et
//!   al.): the NIC holds the crypto state for the *expected* TCP sequence
//!   number and encrypts in-order segments for free. Any transmission
//!   that does not match the expected sequence (a retransmission) forces
//!   a **resynchronization**: the driver stalls, rebuilds the record
//!   state, and the affected record is encrypted on the CPU as a
//!   fallback. Under packet drops these resyncs erase the offload's
//!   benefit — the effect Fig. 2 shows.

use crate::tcp::{simulate_transfer_with_faults, FlowEvent, TcpConfig, TcpRun};

/// Where TLS record encryption runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TlsPlacement {
    /// On-CPU AES-NI encryption.
    CpuAesNi {
        /// Encryption cost in CPU cycles per byte (AES-GCM with AES-NI:
        /// ~0.7–1.3 cpb on Xeon-class cores).
        cycles_per_byte: f64,
        /// Core clock in GHz.
        cpu_ghz: f64,
        /// Cores encrypting records in parallel ahead of the send queue;
        /// only the crypto time exceeding the wire time stalls the
        /// sender (the paper's Xeon keeps up with the NIC at zero loss).
        crypto_cores: u32,
    },
    /// Autonomous inline NIC offload with CPU fallback on resync.
    SmartNic {
        /// Driver/NIC resynchronization stall per out-of-sequence
        /// transmission, in nanoseconds.
        resync_ns: u64,
        /// TLS record size — the CPU re-encrypts the whole affected
        /// record on resync.
        record_bytes: usize,
        /// CPU fallback encryption cost (cycles/byte).
        cycles_per_byte: f64,
        /// Core clock in GHz.
        cpu_ghz: f64,
    },
}

impl TlsPlacement {
    /// A Xeon-Gold-class AES-NI software path (crypto pipelined over
    /// four cores, as a multi-threaded sender would).
    pub fn cpu_default() -> TlsPlacement {
        TlsPlacement::CpuAesNi {
            cycles_per_byte: 1.0,
            cpu_ghz: 2.8,
            crypto_cores: 4,
        }
    }

    /// A ConnectX-6-class autonomous kTLS offload.
    pub fn smartnic_default() -> TlsPlacement {
        TlsPlacement::SmartNic {
            resync_ns: 30_000,
            record_bytes: 16 * 1024,
            cycles_per_byte: 1.0,
            cpu_ghz: 2.8,
        }
    }
}

/// Metrics of one encrypted transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncryptedFlowReport {
    /// Underlying TCP metrics.
    pub tcp: TcpRun,
    /// NIC resynchronizations performed (SmartNIC placement only).
    pub resyncs: u64,
    /// CPU nanoseconds spent on encryption (software path or fallback).
    pub cpu_crypto_ns: u64,
    /// Bytes encrypted by the NIC hardware.
    pub nic_encrypted_bytes: u64,
}

impl EncryptedFlowReport {
    /// Application goodput in Gbit/s.
    pub fn goodput_gbps(&self) -> f64 {
        self.tcp.goodput_gbps()
    }

    /// Fraction of wall-clock time the CPU spent encrypting.
    pub fn cpu_crypto_fraction(&self) -> f64 {
        if self.tcp.elapsed_ns == 0 {
            return 0.0;
        }
        self.cpu_crypto_ns as f64 / self.tcp.elapsed_ns as f64
    }

    /// Registers the encryption metrics (with the underlying TCP flow
    /// under `tcp`) for a `telemetry/v1` snapshot.
    pub fn export_telemetry(&self, scope: &mut simkit::telemetry::Scope) {
        scope.set_counter("resyncs", self.resyncs);
        scope.set_counter("cpu_crypto_ns", self.cpu_crypto_ns);
        scope.set_counter("nic_encrypted_bytes", self.nic_encrypted_bytes);
        scope.set_gauge("cpu_crypto_fraction", self.cpu_crypto_fraction());
        self.tcp.export_telemetry(scope.scope("tcp"));
    }
}

/// Runs an encrypted transfer of `bytes` with the given placement.
pub fn run_encrypted_flow(
    bytes: u64,
    tcp: &TcpConfig,
    placement: TlsPlacement,
) -> EncryptedFlowReport {
    run_encrypted_flow_with_faults(bytes, tcp, None, placement)
}

/// [`run_encrypted_flow`] with an optional fault injector (armed
/// `TcpLossBurst` events force-drop segments by transmission index), used
/// to study resync behaviour under precisely placed losses.
pub fn run_encrypted_flow_with_faults(
    bytes: u64,
    tcp: &TcpConfig,
    fault: Option<&simkit::FaultHandle>,
    placement: TlsPlacement,
) -> EncryptedFlowReport {
    let mut resyncs = 0u64;
    let mut cpu_crypto_ns = 0u64;
    let mut nic_encrypted = 0u64;
    let mut nic_expected_seq = 0u64;

    let run = simulate_transfer_with_faults(bytes, tcp, fault, |ev| {
        let FlowEvent::Tx {
            seq,
            len,
            retransmission,
            ..
        } = *ev
        else {
            return 0;
        };
        match placement {
            TlsPlacement::CpuAesNi {
                cycles_per_byte,
                cpu_ghz,
                crypto_cores,
            } => {
                let ns = (len as f64 * cycles_per_byte / cpu_ghz).ceil() as u64;
                cpu_crypto_ns += ns;
                // Parallel crypto pipelines: the sender only stalls when
                // per-core crypto falls behind the wire.
                let effective = ns / crypto_cores.max(1) as u64;
                let wire = tcp.wire_time_ns(len);
                effective.saturating_sub(wire)
            }
            TlsPlacement::SmartNic {
                resync_ns,
                record_bytes,
                cycles_per_byte,
                cpu_ghz,
            } => {
                if !retransmission && seq == nic_expected_seq {
                    // In-order: the NIC encrypts inline, zero CPU cost.
                    nic_expected_seq = seq + len as u64;
                    nic_encrypted += len as u64;
                    0
                } else {
                    // Out-of-sequence: hardware resync + CPU fallback for
                    // the affected record. The expected sequence advances
                    // monotonically — a retransmission of an *old* segment
                    // must not rewind it, or every in-flight segment behind
                    // it would spuriously count as out-of-sequence too.
                    resyncs += 1;
                    let fallback = (record_bytes as f64 * cycles_per_byte / cpu_ghz).ceil() as u64;
                    cpu_crypto_ns += fallback;
                    nic_expected_seq = nic_expected_seq.max(seq + len as u64);
                    resync_ns + fallback
                }
            }
        }
    });
    EncryptedFlowReport {
        tcp: run,
        resyncs,
        cpu_crypto_ns,
        nic_encrypted_bytes: nic_encrypted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp(loss: f64, seed: u64) -> TcpConfig {
        TcpConfig {
            loss_prob: loss,
            seed,
            ..TcpConfig::default()
        }
    }

    #[test]
    fn lossless_smartnic_encrypts_everything_in_hardware() {
        let report = run_encrypted_flow(8 << 20, &tcp(0.0, 1), TlsPlacement::smartnic_default());
        assert_eq!(report.resyncs, 0);
        assert_eq!(report.cpu_crypto_ns, 0);
        assert_eq!(report.nic_encrypted_bytes, 8 << 20);
    }

    #[test]
    fn cpu_placement_pays_per_byte() {
        let report = run_encrypted_flow(8 << 20, &tcp(0.0, 1), TlsPlacement::cpu_default());
        assert!(report.cpu_crypto_ns > 0);
        assert_eq!(report.nic_encrypted_bytes, 0);
        // ~1 cpb at 2.8 GHz over 8 MiB ≈ 3 ms of CPU time.
        let expect = (8u64 << 20) as f64 / 2.8;
        let actual = report.cpu_crypto_ns as f64;
        assert!(
            (actual - expect).abs() / expect < 0.05,
            "{actual} vs {expect}"
        );
    }

    #[test]
    fn drops_trigger_resyncs() {
        let report = run_encrypted_flow(8 << 20, &tcp(0.01, 2), TlsPlacement::smartnic_default());
        assert!(report.resyncs > 0);
        assert!(report.cpu_crypto_ns > 0, "fallback encryption happened");
        assert_eq!(report.tcp.delivered_bytes, 8 << 20);
    }

    #[test]
    fn smartnic_advantage_fades_with_loss() {
        // Fig. 2's crossover: at zero loss the NIC wins (or ties); with
        // drops the NIC's resync penalty makes it lose to the CPU.
        let size = 16u64 << 20;
        let nic_clean = run_encrypted_flow(size, &tcp(0.0, 5), TlsPlacement::smartnic_default());
        let cpu_clean = run_encrypted_flow(size, &tcp(0.0, 5), TlsPlacement::cpu_default());
        assert!(nic_clean.goodput_gbps() >= cpu_clean.goodput_gbps() * 0.99);

        let nic_lossy = run_encrypted_flow(size, &tcp(0.01, 5), TlsPlacement::smartnic_default());
        let cpu_lossy = run_encrypted_flow(size, &tcp(0.01, 5), TlsPlacement::cpu_default());
        assert!(
            nic_lossy.goodput_gbps() < cpu_lossy.goodput_gbps(),
            "nic {} vs cpu {} at 1% loss",
            nic_lossy.goodput_gbps(),
            cpu_lossy.goodput_gbps()
        );
    }

    #[test]
    fn single_loss_causes_exactly_matching_resyncs() {
        // Regression for the expected-sequence rewind bug: a retransmission
        // of an old segment used to set nic_expected_seq backwards, so the
        // next in-flight *new* segment also counted as out-of-sequence —
        // doubling the resync count. With the monotonic advance, resyncs
        // match the actual out-of-sequence transmissions one-to-one.
        use simkit::{FaultEvent, FaultHandle, FaultKind, FaultPlan};
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                at_offload: 0,
                kind: FaultKind::TcpLossBurst { start: 30, len: 1 },
            }],
        };
        let handle = FaultHandle::new(plan);
        let report = run_encrypted_flow_with_faults(
            4 << 20,
            &tcp(0.0, 1),
            Some(&handle),
            TlsPlacement::smartnic_default(),
        );
        assert_eq!(report.tcp.drops, 1, "exactly the injected loss");
        assert_eq!(report.tcp.forced_drops, 1);
        assert!(report.tcp.retransmits >= 1);
        assert_eq!(
            report.resyncs, report.tcp.retransmits,
            "one resync per out-of-sequence transmission, no spurious extras"
        );
        assert_eq!(report.tcp.delivered_bytes, 4 << 20);
    }

    #[test]
    fn resyncs_match_retransmits_under_random_loss() {
        // Every retransmission is out-of-sequence at the NIC, and — with
        // the monotonic expected-sequence fix — nothing else is.
        for seed in [2u64, 5, 9] {
            let report =
                run_encrypted_flow(4 << 20, &tcp(0.01, seed), TlsPlacement::smartnic_default());
            assert!(report.tcp.retransmits > 0);
            assert_eq!(report.resyncs, report.tcp.retransmits, "seed {seed}");
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let a = run_encrypted_flow(1 << 20, &tcp(0.02, 9), TlsPlacement::smartnic_default());
        let b = run_encrypted_flow(1 << 20, &tcp(0.02, 9), TlsPlacement::smartnic_default());
        assert_eq!(a, b);
    }
}
