//! §IV-D micro-experiment: the time budget between the rdCAS that feeds a
//! source cacheline to the DSA and the wrCAS that recycles the matching
//! destination line.
//!
//! The paper measures this slack on a Broadwell server with AxDIMM and
//! finds it "exceeds 1 µs" — the reason SmartDIMM can offload
//! synchronously without a completion notification: the DSA comfortably
//! finishes a 64-byte transformation before the result is consumed.

use cache::CacheConfig;
use dram::PhysAddr;
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};

fn main() {
    // Two contention levels: a roomy LLC (writebacks late, big slack) and
    // a contended one (writebacks early, the worst case for slack).
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, llc) in [
        ("16MB LLC", CacheConfig::mb(16, 16)),
        ("2MB LLC", CacheConfig::mb(2, 16)),
        ("256KB LLC", CacheConfig::kb(256, 16)),
    ] {
        let mut cfg = HostConfig::default();
        cfg.mem.llc = Some(llc);
        let mut host = CompCpyHost::new(cfg);
        let key = [1u8; 16];
        for i in 0..100u64 {
            let src = host.alloc_pages(1);
            let dst = host.alloc_pages(1);
            let msg = ulp_compress::corpus::text(4096, i);
            host.mem_mut().store(src, &msg, 0);
            let iv = [i as u8; 12];
            let handle = host
                .comp_cpy(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    false,
                    0,
                )
                .expect("offload accepted");
            let _ = host.use_buffer(&handle);
        }
        // Force any stragglers through so the histogram is complete.
        let _ = host.force_recycle(usize::MAX);
        let _ = PhysAddr(0);
        let hist = host.device().slack_histogram().clone();
        let to_us = |cycles: u64| cycles as f64 / 1600.0; // 1600 cyc = 1 µs
        let min = hist.min().unwrap_or(0);
        let p50 = hist.quantile(0.5).unwrap_or(0);
        let mean = hist.mean();
        rows.push(vec![
            label.to_string(),
            format!("{}", hist.count()),
            format!("{:.2} µs", to_us(min)),
            format!("{:.2} µs", to_us(p50)),
            format!("{:.2} µs", mean / 1600.0),
            format!("{}", min > 1600),
        ]);
        csv.push(format!(
            "{label},{},{},{},{:.1}",
            hist.count(),
            min,
            p50,
            mean
        ));
    }
    bench::print_table(
        "§IV-D — rdCAS(sbuf) → wrCAS(dbuf) slack (DSA compute budget)",
        &["config", "lines", "min", "p50", "mean", "min > 1µs"],
        &rows,
    );
    bench::write_csv(
        "micro_slack.csv",
        "config,lines,min_cycles,p50_cycles,mean_cycles",
        &csv,
    );
}
