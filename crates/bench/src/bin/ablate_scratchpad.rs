//! §VII-A ablation: Force-Recycle frequency vs Scratchpad size.
//!
//! The paper sizes the Scratchpad at 2048 pages (8 MB) and reports that
//! Force-Recycle calls become effectively zero at that size because LLC
//! writebacks self-recycle pages faster than new offloads allocate them.
//! This sweep shrinks the Scratchpad and counts Force-Recycles for the
//! same offload stream.

use cache::CacheConfig;
use dram::PhysAddr;
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};

fn main() {
    let offloads = 600u64;
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for pages in [8usize, 32, 128, 512, 2048] {
        let mut cfg = HostConfig::default();
        cfg.dimm.scratchpad_pages = pages;
        // Generous LLC: writebacks are *late*, the worst case for
        // scratchpad pressure.
        cfg.mem.llc = Some(CacheConfig::mb(8, 16));
        let mut host = CompCpyHost::new(cfg);
        let key = [5u8; 16];
        for i in 0..offloads {
            let base = 0x0100_0000 + i * 0x3000;
            let src = PhysAddr(base);
            let dst = PhysAddr(base + 0x1000);
            let msg = ulp_compress::corpus::text(4096, i);
            host.mem_mut().store(src, &msg, 0);
            let iv = [i as u8; 12];
            let _ = host
                .comp_cpy(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    false,
                    0,
                )
                .expect("offload accepted");
        }
        let force = host.force_recycle_count();
        let stats = host.device_stats();
        rows.push(vec![
            format!("{pages} ({} KB)", pages * 4),
            force.to_string(),
            stats.self_recycles.to_string(),
            stats.offloads_completed.to_string(),
        ]);
        csv.push(format!("{pages},{force},{}", stats.self_recycles));
    }
    bench::print_table(
        "§VII-A — Force-Recycle calls vs Scratchpad size (600 offloads, late writebacks)",
        &[
            "scratchpad pages",
            "force-recycles",
            "self-recycled lines",
            "offloads done",
        ],
        &rows,
    );
    println!("\npaper: at 2048 pages, Force-Recycle calls are ~zero");
    bench::write_csv(
        "ablate_scratchpad.csv",
        "pages,force_recycles,self_recycled_lines",
        &csv,
    );
}
