//! Self-timing hot-path micro-benchmarks → `BENCH_hotpaths.json`.
//!
//! Measures the three optimizations of the hot-path pass, each against
//! the retained reference implementation it replaced:
//!
//! 1. `gf128_mul` — GHASH-style GF(2^128) fold: bit-at-a-time
//!    `Gf128::mul_bitwise` vs the per-key 4-bit table (`GfMulTable`).
//! 2. `compcpy_page_copy` — CompCpy's copy step through a
//!    SmartDIMM-backed memory system: per-line loads/stores vs the
//!    batched whole-page path (one buffer-device interception and one
//!    translation probe per 4 KB page).
//! 3. `lz77_match_finder` — LZ77 tokenization: linear window scan
//!    (`tokenize_linear`) vs the hash-chain matcher (`tokenize`).
//! 4. `dram_backend_whole_sim` — the 4-channel run_report sweep on the
//!    cycle-accurate FR-FCFS backend vs the fast fixed-latency tier.
//! 5. `whole_sim_parallel` — the same sweep's independent entries run
//!    back to back vs fanned out on a 4-worker `simkit::par` pool.
//!
//! All inputs are seeded and deterministic; only the wall-clock timings
//! vary run to run. Modes:
//!
//! * `smoke` — tiny inputs/iterations for CI (ratios not meaningful);
//!   writes to `target/BENCH_hotpaths.smoke.json` so a CI run never
//!   clobbers the committed full-mode numbers,
//! * `full` — the committed numbers at `BENCH_hotpaths.json` (default),
//! * `check` — parse-validate the committed `BENCH_hotpaths.json` and
//!   exit non-zero if missing or malformed (used by `ci.sh`).

use bench::harness::{json_parses, median_ns_per_op, report, BenchSpec, HotPath};
use cache::CacheConfig;
use platforms::{run_server, BackendKind, PlatformKind, UlpKind, WorkloadConfig};
use simkit::DetRng;
use smartdimm::{CompCpyHost, HostConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use ulp_crypto::gf128::{Gf128, GfMulTable};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

fn bench_gf128(spec: BenchSpec, blocks: usize) -> HotPath {
    let mut rng = DetRng::new(0x9e3779b97f4a7c15);
    let mut rand_block = move || {
        let mut b = [0u8; 16];
        rng.fill_bytes(&mut b);
        Gf128::from_bytes(&b)
    };
    let h = rand_block();
    let data: Vec<Gf128> = (0..blocks).map(|_| rand_block()).collect();

    let before = median_ns_per_op(spec, || {
        let mut y = Gf128::ZERO;
        for &b in &data {
            y = (y + b).mul_bitwise(h);
        }
        assert_ne!(y, Gf128::ZERO);
    });
    let after = median_ns_per_op(spec, || {
        let table = GfMulTable::new(h); // once per key, as in GHASH
        let mut y = Gf128::ZERO;
        for &b in &data {
            y = table.mul(y + b);
        }
        assert_ne!(y, Gf128::ZERO);
    });
    HotPath {
        name: "gf128_mul",
        before_impl: "Gf128::mul_bitwise (bit-at-a-time, SP 800-38D reference)",
        after_impl: "GfMulTable (per-key 4-bit tables, 32-step nibble Horner)",
        work_units: format!(
            "GHASH fold over {blocks} blocks ({} KB)",
            blocks * 16 / 1024
        ),
        before_ns_per_op: before,
        after_ns_per_op: after,
    }
}

fn bench_compcpy(spec: BenchSpec, pages: usize) -> HotPath {
    let size = pages * 4096;
    let payload: Vec<u8> = {
        let mut rng = DetRng::new(0xC0FFEE);
        let mut v = vec![0u8; size];
        rng.fill_bytes(&mut v);
        v
    };
    // One op = the CompCpy copy step (Algorithm 2 lines 19 + 24-31):
    // flush the source to DRAM, then copy it through the cache while the
    // SmartDIMM intercepts every miss. Pages are unmapped, isolating the
    // copy engine from DSA work (identical in both paths).
    let run = |batch: bool| {
        let mut cfg = HostConfig::default();
        cfg.mem.batch_page_copy = batch;
        let mut host = CompCpyHost::new(cfg);
        let src = host.alloc_pages(pages);
        let dst = host.alloc_pages(pages);
        host.mem_mut().store(src, &payload, 0);
        median_ns_per_op(spec, || {
            let mem = host.mem_mut();
            mem.flush(src, size);
            mem.memcpy(dst, src, size, 0, false);
        })
    };
    let before = run(false);
    let after = run(true);
    HotPath {
        name: "compcpy_page_copy",
        before_impl: "per-line loads/stores (64 CAS interceptions per page)",
        after_impl: "batched page copy (one interception + one xlat probe per page)",
        work_units: format!(
            "flush + copy of {pages} pages ({} KB) through a SmartDIMM memsys",
            pages * 4
        ),
        before_ns_per_op: before,
        after_ns_per_op: after,
    }
}

fn bench_lz77(spec: BenchSpec, input_len: usize) -> HotPath {
    let data = ulp_compress::corpus::text(input_len, 42);
    let config = ulp_compress::lz77::MatcherConfig::default();
    let before = median_ns_per_op(spec, || {
        let toks = ulp_compress::lz77::tokenize_linear(&data, config);
        assert!(!toks.is_empty());
    });
    let after = median_ns_per_op(spec, || {
        let toks = ulp_compress::lz77::tokenize(&data, config);
        assert!(!toks.is_empty());
    });
    HotPath {
        name: "lz77_match_finder",
        before_impl: "tokenize_linear (exhaustive backwards window scan)",
        after_impl: "tokenize (hash-chain match finder, lazy matching)",
        work_units: format!("tokenize {} KB of seeded text corpus", input_len / 1024),
        before_ns_per_op: before,
        after_ns_per_op: after,
    }
}

fn bench_backend_sweep(spec: BenchSpec, connections: usize, requests: usize) -> HotPath {
    // One op = the 4-channel SmartDIMM slice of the `run_report` sweep
    // (§V-D): TLS under fine interleave plus deflate under coarse
    // interleave, end to end through the server harness. Both backends
    // run the byte-identical workload — the differential harness pins
    // the functional equality — so the ratio is pure simulator
    // wall-clock: FR-FCFS bank state machines, bus turnaround and
    // refresh vs the fixed-latency per-channel FIFO.
    let run_sweep = |backend: BackendKind| {
        let tls_cfg = WorkloadConfig {
            message_bytes: 4096,
            connections,
            requests,
            ulp: UlpKind::Tls,
            llc: Some(CacheConfig::mb(2, 16)),
            channels: 4,
            channel_interleave_lines: 1,
            backend,
            ..WorkloadConfig::default()
        };
        let deflate_cfg = WorkloadConfig {
            ulp: UlpKind::Compression,
            channel_interleave_lines: 64,
            ..tls_cfg.clone()
        };
        median_ns_per_op(spec, || {
            let m = run_server(PlatformKind::SmartDimm, &tls_cfg);
            assert!(m.rps > 0.0);
            let m = run_server(PlatformKind::SmartDimm, &deflate_cfg);
            assert!(m.rps > 0.0);
        })
    };
    let before = run_sweep(BackendKind::CycleAccurate);
    let after = run_sweep(BackendKind::FastQueue);
    HotPath {
        name: "dram_backend_whole_sim",
        before_impl: "cycle-accurate FR-FCFS DramSystem (per-bank state machines)",
        after_impl: "fast fixed-latency + per-channel-FIFO backend (FastDramSystem)",
        work_units: format!(
            "4-channel run_report sweep: TLS fine + deflate coarse, \
             {connections} conns x {requests} reqs"
        ),
        before_ns_per_op: before,
        after_ns_per_op: after,
    }
}

fn bench_whole_sim_parallel(spec: BenchSpec, connections: usize, requests: usize) -> HotPath {
    // One op = the 4-channel slice of the `run_report` sweep: four
    // independent simulations (TLS on CPU and SmartDIMM under fine
    // interleave, deflate under coarse, TLS on the fast backend).
    // Before: the pre-parallel report builder — entries run one after
    // another on the caller's thread. After: the same entries fanned
    // out on a 4-worker `simkit::par` pool, exactly as `run_report`
    // now executes them. Results are byte-identical either way
    // (`tests/parallel_determinism.rs` pins this); the ratio is the
    // wall-clock scaling of whole-simulation parallelism, bounded by
    // the slowest single entry (deflate).
    let entries = || -> Vec<(PlatformKind, WorkloadConfig)> {
        let tls_cfg = WorkloadConfig {
            message_bytes: 4096,
            connections,
            requests,
            ulp: UlpKind::Tls,
            llc: Some(CacheConfig::mb(2, 16)),
            channels: 4,
            channel_interleave_lines: 1,
            threads: 1,
            ..WorkloadConfig::default()
        };
        let deflate_cfg = WorkloadConfig {
            ulp: UlpKind::Compression,
            channel_interleave_lines: 64,
            ..tls_cfg.clone()
        };
        let fast_cfg = WorkloadConfig {
            backend: BackendKind::FastQueue,
            ..tls_cfg.clone()
        };
        vec![
            (PlatformKind::Cpu, tls_cfg.clone()),
            (PlatformKind::SmartDimm, tls_cfg),
            (PlatformKind::SmartDimm, deflate_cfg),
            (PlatformKind::SmartDimm, fast_cfg),
        ]
    };
    let before = median_ns_per_op(spec, || {
        for (kind, cfg) in entries() {
            let m = run_server(kind, &cfg);
            assert!(m.rps > 0.0);
        }
    });
    let after = median_ns_per_op(spec, || {
        let (metrics, _) =
            simkit::par::run_indexed(4, entries(), |_, (kind, cfg)| run_server(kind, &cfg));
        assert!(metrics.iter().all(|m| m.rps > 0.0));
    });
    HotPath {
        name: "whole_sim_parallel",
        before_impl: "sequential report builder (entries run back to back)",
        after_impl: "4-worker simkit::par fan-out (work-stealing deque, ordered mount)",
        work_units: format!(
            "4-channel run_report entries: TLS cpu+smartdimm fine, deflate \
             coarse, TLS fast-backend, {connections} conns x {requests} reqs"
        ),
        before_ns_per_op: before,
        after_ns_per_op: after,
    }
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let out_path = repo_root().join("BENCH_hotpaths.json");

    if mode == "check" {
        return match std::fs::read_to_string(&out_path) {
            Ok(s) if json_parses(&s) && s.contains("bench_hotpaths/v1") => {
                println!("[ok] {} parses", out_path.display());
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!("[err] {} is not valid report JSON", out_path.display());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("[err] {}: {e}", out_path.display());
                ExitCode::FAILURE
            }
        };
    }

    let (spec, gf_blocks, pages, lz_len, sweep_scale, out_path) = match mode.as_str() {
        "smoke" => (
            BenchSpec::smoke(),
            256,
            4,
            1024,
            (16, 60),
            repo_root().join("target").join("BENCH_hotpaths.smoke.json"),
        ),
        "full" => (BenchSpec::full(), 256, 32, 8192, (32, 150), out_path),
        other => {
            eprintln!("usage: bench_hotpaths [smoke|full|check] (got {other:?})");
            return ExitCode::FAILURE;
        }
    };

    println!("hot-path benchmarks ({mode} mode)");
    let paths = vec![
        bench_gf128(spec, gf_blocks),
        bench_compcpy(spec, pages),
        bench_lz77(spec, lz_len),
        bench_backend_sweep(spec, sweep_scale.0, sweep_scale.1),
        bench_whole_sim_parallel(spec, sweep_scale.0, sweep_scale.1),
    ];
    let mut rows = Vec::new();
    for p in &paths {
        rows.push(vec![
            p.name.to_string(),
            format!("{:.0}", p.before_ns_per_op),
            format!("{:.0}", p.after_ns_per_op),
            bench::ratio(p.speedup()),
        ]);
    }
    bench::print_table(
        "hot paths (median ns/op)",
        &["path", "before", "after", "speedup"],
        &rows,
    );

    let doc = report(&mode, spec, &paths).render();
    assert!(json_parses(&doc), "emitted report must be valid JSON");
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir).expect("create report dir");
    }
    std::fs::write(&out_path, doc).expect("write BENCH_hotpaths.json");
    println!("\n[report written to {}]", out_path.display());
    ExitCode::SUCCESS
}
