//! Figure 13: the qualitative comparison of the ULP processing design
//! space, rendered from the scores in `platforms::designspace` — with
//! two of the qualitative claims cross-checked against measured
//! behaviour from this repository's own simulators.

use netsim::ktls::{run_encrypted_flow, TlsPlacement};
use netsim::tcp::TcpConfig;
use platforms::designspace;

fn main() {
    println!("{}", designspace::render_matrix());

    // Cross-check 1: SmartNIC loss resilience is genuinely poor.
    let clean = TcpConfig::default();
    let lossy = TcpConfig {
        loss_prob: 0.01,
        ..clean
    };
    let nic_clean = run_encrypted_flow(8 << 20, &clean, TlsPlacement::smartnic_default());
    let nic_lossy = run_encrypted_flow(8 << 20, &lossy, TlsPlacement::smartnic_default());
    let cpu_lossy = run_encrypted_flow(8 << 20, &lossy, TlsPlacement::cpu_default());
    println!(
        "check: SmartNIC goodput {:.1} -> {:.1} Gbps under 1% loss (CPU: {:.1}) — loses its edge: {}",
        nic_clean.goodput_gbps(),
        nic_lossy.goodput_gbps(),
        cpu_lossy.goodput_gbps(),
        nic_lossy.goodput_gbps() < cpu_lossy.goodput_gbps()
    );

    // Cross-check 2: the SmartNIC cannot take non-size-preserving ULPs.
    println!(
        "check: SmartNIC supports compression offload: {}",
        platforms::PlatformKind::SmartNic.supports(platforms::UlpKind::Compression)
    );

    let csv: Vec<String> = designspace::Criterion::ALL
        .iter()
        .map(|&c| {
            format!(
                "{},{},{},{},{}",
                c.label(),
                designspace::score(platforms::PlatformKind::Cpu, c),
                designspace::score(platforms::PlatformKind::SmartNic, c),
                designspace::score(platforms::PlatformKind::QuickAssist, c),
                designspace::score(platforms::PlatformKind::SmartDimm, c),
            )
        })
        .collect();
    bench::write_csv(
        "fig13_design_space.csv",
        "criterion,cpu,smartnic,quickassist,smartdimm",
        &csv,
    );
}
