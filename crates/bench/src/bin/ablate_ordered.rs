//! Algorithm 2 ablation: the cost of *ordered* CompCpy.
//!
//! (De)compression DSAs consume their input sequentially, so CompCpy must
//! break the copy into 64-byte segments with a memory barrier between
//! each (lines 24–28). TLS needs no ordering (out-of-order GHASH). This
//! sweep quantifies what the fences cost and why Observation 4
//! (incremental computability) matters: if AES-GCM required ordering the
//! way Deflate does, every TLS offload would pay this tax.

use smartdimm::{CompCpyHost, HostConfig, OffloadOp};

fn run_offloads(ordered: bool, size: usize, n: u64) -> f64 {
    let mut host = CompCpyHost::new(HostConfig::default());
    let key = [3u8; 16];
    let t0 = host.mem().now();
    for i in 0..n {
        let pages = size.div_ceil(4096);
        let src = host.alloc_pages(pages);
        let dst = host.alloc_pages(pages);
        let msg = ulp_compress::corpus::text(size, i);
        host.mem_mut().store(src, &msg, 0);
        let iv = [i as u8; 12];
        let handle = host
            .comp_cpy(
                dst,
                src,
                size,
                OffloadOp::TlsEncrypt { key, iv },
                ordered,
                0,
            )
            .expect("offload accepted");
        let _ = host.use_buffer(&handle);
    }
    (host.mem().now() - t0) as f64 / n as f64 / 1.6 // ns per offload
}

fn main() {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &size in &[4096usize, 16384, 65536] {
        let n = (40 * 4096 / size).max(8) as u64;
        let unordered = run_offloads(false, size, n);
        let ordered = run_offloads(true, size, n);
        let overhead = ordered / unordered - 1.0;
        rows.push(vec![
            format!("{}KB", size / 1024),
            format!("{:.2} µs", unordered / 1000.0),
            format!("{:.2} µs", ordered / 1000.0),
            bench::pct(overhead),
        ]);
        csv.push(format!("{size},{unordered:.1},{ordered:.1},{overhead:.4}"));
    }
    bench::print_table(
        "Algorithm 2 — ordered (fenced) vs unordered CompCpy latency",
        &["size", "unordered", "ordered", "fence overhead"],
        &rows,
    );
    println!("\nObservation 4: AES-GCM's incremental computability avoids this tax;");
    println!("only the sequential Deflate DSA pays it.");
    bench::write_csv(
        "ablate_ordered.csv",
        "size_bytes,unordered_ns,ordered_ns,overhead",
        &csv,
    );
}
