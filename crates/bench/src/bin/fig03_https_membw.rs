//! Figure 3: HTTPS memory-bandwidth utilization normalized to HTTP for
//! different numbers of concurrent connections.
//!
//! Reproduces §III Observation 3: as the connection count grows past the
//! LLC, TLS processing's extra buffer passes turn into DRAM traffic — up
//! to ~2.5× the equivalent plain-HTTP (sendfile) transfers in the paper.

use cache::CacheConfig;
use platforms::{run_server, PlatformKind, UlpKind, WorkloadConfig};

fn main() {
    let connections = [64usize, 128, 256, 512, 1024];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &conns in &connections {
        let base = WorkloadConfig {
            message_bytes: 4096,
            connections: conns,
            requests: 2000,
            llc: Some(CacheConfig::mb(2, 16)),
            ..WorkloadConfig::default()
        };
        let http = run_server(
            PlatformKind::Cpu,
            &WorkloadConfig {
                ulp: UlpKind::None,
                ..base.clone()
            },
        );
        let https = run_server(
            PlatformKind::Cpu,
            &WorkloadConfig {
                ulp: UlpKind::Tls,
                ..base
            },
        );
        // The paper normalizes bandwidth at equal transfer rates, so the
        // per-request DRAM traffic ratio is the comparison that matters.
        // Guard: at small connection counts everything fits in the LLC
        // and HTTP's DRAM traffic approaches zero.
        let norm = if http.dram_bytes_per_req > 64.0 {
            https.dram_bytes_per_req / http.dram_bytes_per_req
        } else {
            f64::NAN
        };
        rows.push(vec![
            conns.to_string(),
            format!("{:.0}", http.dram_bytes_per_req),
            format!("{:.0}", https.dram_bytes_per_req),
            if norm.is_nan() {
                "-".into()
            } else {
                bench::ratio(norm)
            },
            format!("{:.3}", https.llc_miss_rate),
        ]);
        csv.push(format!(
            "{},{:.1},{:.1},{:.4},{:.4}",
            conns, http.dram_bytes_per_req, https.dram_bytes_per_req, norm, https.llc_miss_rate
        ));
    }
    bench::print_table(
        "Fig. 3 — HTTPS DRAM traffic normalized to HTTP vs concurrent connections",
        &[
            "connections",
            "HTTP B/req",
            "HTTPS B/req",
            "normalized",
            "HTTPS miss rate",
        ],
        &rows,
    );
    bench::write_csv(
        "fig03_https_membw.csv",
        "connections,http_bytes_per_req,https_bytes_per_req,normalized,https_miss_rate",
        &csv,
    );
}
