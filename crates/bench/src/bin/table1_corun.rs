//! Table I: slowdown of a co-running scenario — secure Nginx plus a
//! cache-intensive 505.mcf-like workload on shared LLC and DRAM.
//!
//! Paper values: Nginx slows 15.8 % (CPU), 7.3 % (SmartNIC), 28.7 %
//! (QuickAssist), 9.5 % (SmartDIMM); mcf slows 15.5 / 8.7 / 37.9 /
//! 10.3 %. The shape to reproduce: offloaded configurations (SmartNIC,
//! SmartDIMM) interfere far less than the CPU baseline, and QuickAssist
//! interferes the *most* (its DMA staging copies thrash the cache).

use cache::CacheConfig;
use platforms::corun::run_corun;
use platforms::{PlatformKind, UlpKind, WorkloadConfig};

fn main() {
    let cfg = WorkloadConfig {
        message_bytes: 4096,
        connections: 64, // LLC-resident solo, evictable under co-run
        requests: 1000,
        ulp: UlpKind::Tls,
        llc: Some(CacheConfig::mb(2, 16)),
        ..WorkloadConfig::default()
    };
    let platforms = [
        PlatformKind::Cpu,
        PlatformKind::SmartNic,
        PlatformKind::QuickAssist,
        PlatformKind::SmartDimm,
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &kind in &platforms {
        let report = run_corun(kind, &cfg, 16 << 20, 0.5);
        rows.push(vec![
            format!("{kind:?}"),
            bench::pct(report.nginx_slowdown),
            bench::pct(report.mcf_slowdown),
            format!("{:.0}", report.nginx_solo_cycles),
            format!("{:.0}", report.nginx_corun_cycles),
        ]);
        csv.push(format!(
            "{:?},{:.4},{:.4}",
            kind, report.nginx_slowdown, report.mcf_slowdown
        ));
    }
    bench::print_table(
        "Table I — co-run slowdowns (Nginx TLS + mcf-like), vs solo runs",
        &[
            "platform",
            "Nginx slowdown",
            "mcf slowdown",
            "solo cyc/req",
            "corun cyc/req",
        ],
        &rows,
    );
    bench::write_csv(
        "table1_corun.csv",
        "platform,nginx_slowdown,mcf_slowdown",
        &csv,
    );
}
