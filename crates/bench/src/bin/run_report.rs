//! Unified run report → `results/run_report.json`.
//!
//! Drives the HTTPS-server workload (§VI) on all four placements plus the
//! kTLS encrypted-flow models, gathers every component's statistics into
//! one `simkit::telemetry` registry — server harness {RPS, CPU util, BW},
//! LLC miss rates, DRAM CAS counters, SmartDIMM device/scratchpad/xlat
//! counters, TCP flow metrics — and emits a single JSON document: a
//! `run_report/v1` metadata wrapper around the deterministic
//! `telemetry/v1` snapshot.
//!
//! The wall-clock stamp lives *only* in the wrapper metadata; the inner
//! snapshot is byte-identical across same-seed runs (enforced by
//! `tests/telemetry_determinism.rs`). Modes follow `bench_hotpaths`:
//!
//! * `smoke` — tiny workload for CI; writes `target/run_report.smoke.json`
//!   so a CI run never clobbers the committed full-mode report,
//! * `full` — the committed report at `results/run_report.json` (default),
//! * `check` — validate the committed report (well-formed JSON, both
//!   schema tags, the expected top-level scopes) and exit non-zero
//!   otherwise (used by `ci.sh`).

use bench::harness::json_parses;
use cache::CacheConfig;
use netsim::ktls::{run_encrypted_flow, TlsPlacement};
use netsim::tcp::TcpConfig;
use platforms::{
    run_event_server_with_telemetry, run_server_with_telemetry, AdmissionConfig, AdmissionPolicy,
    EventWorkloadConfig, PlatformKind, UlpKind, WorkloadConfig,
};
use simkit::par::ParStats;
use simkit::telemetry::{Registry, Scope};
use smartdimm::PlacementPolicy;
use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

/// Scope names every report must contain — `check` mode and the
/// acceptance criteria both key off this list.
const REQUIRED_SCOPES: &[&str] = &[
    "server.https_cpu",
    "server.https_smartnic",
    "server.https_quickassist",
    "server.https_smartdimm",
    "netsim.ktls_cpu",
    "netsim.ktls_smartnic",
    // Placement × channel-count sweep (§V-D): 1/2/4 channels.
    "sweep.tls_ch1_cpu",
    "sweep.tls_ch1_smartdimm",
    "sweep.tls_ch2_cpu",
    "sweep.tls_ch2_smartdimm",
    "sweep.tls_ch4_cpu",
    "sweep.tls_ch4_smartdimm",
    "sweep.deflate_ch1_smartdimm",
    "sweep.deflate_ch2_smartdimm",
    "sweep.deflate_ch4_smartdimm",
    // Scale-out topology sweep (§V-D on a NUMA box): 2 sockets ×
    // 2 DIMMs/channel, CPU baseline plus SmartDIMM under both
    // placement policies.
    "sweep.topology_cpu",
    "sweep.topology_static_smartdimm",
    "sweep.topology_sched_smartdimm",
    // Fidelity-tier coverage: the 4-channel TLS sweep repeated on the
    // fast fixed-latency backend (tier 1). The differential harness
    // pins its functional equality with the accurate run above.
    "sweep.tls_ch4_smartdimm_fast",
    // Event-driven tail-latency sweep: >10k zipfian closed-loop
    // connections on the tier-1 backend, per placement, plus an
    // admission-controlled row on a starved scratchpad.
    "sweep.tail_latency_cpu",
    "sweep.tail_latency_smartnic",
    "sweep.tail_latency_quickassist",
    "sweep.tail_latency_smartdimm",
    "sweep.tail_latency_deflate_smartdimm",
    "sweep.tail_latency_smartdimm_admission",
];

/// Metric names that prove each stat surface named in the issue is
/// reachable from the one snapshot.
const REQUIRED_METRICS: &[&str] = &[
    "\"rps\"",
    "\"cpu_utilization\"",
    "\"mem_bw_bytes\"",
    "\"rd_cas\"",
    "\"wr_cas\"",
    "\"row_hits\"",
    "\"miss_rate\"",
    "\"sampled_miss_rate\"",
    "\"page_feeds\"",
    "\"xlat_failures\"",
    "\"bank_desyncs\"",
    "\"dropped_feeds\"",
    "\"orphan_lines\"",
    "\"force_recycles\"",
    "\"injected_faults\"",
    "\"goodput_gbps\"",
    "\"resyncs\"",
    // Multi-channel surfaces: per-channel shard scopes and the host's
    // cross-channel bounce counter.
    "\"channel0\"",
    "\"bounced_offloads\"",
    "\"cross_channel_rejects\"",
    // Backend identity: every memsys export names its memory backend
    // and fidelity tier, so snapshots are never compared across tiers
    // by accident.
    "\"fidelity_tier\"",
    "\"cycle_accurate\"",
    "\"fast_queue\"",
    // Parallel shard runtime: deterministic sync/merge counters under
    // each host's `par` scope. Worker/steal counts are scheduler
    // artifacts and live in the `run_report/v1` wrapper instead.
    "\"sync_points\"",
    "\"settled_lines\"",
    "\"merged_events\"",
    // Scale-out topology surfaces: per-socket rollup scopes with the
    // interconnect CAS counter, and the offload scheduler's placement
    // accounting.
    "\"socket0\"",
    "\"socket1\"",
    "\"remote_accesses\"",
    "\"static_placements\"",
    "\"rehomed_offloads\"",
    "\"migrated_offloads\"",
    "\"remote_placements\"",
    "\"local_placements\"",
    // Event-driven tail-latency surfaces: the request-latency histogram
    // (whose snapshot carries p50/p99/p999 and the small-sample p999
    // flag) and the admission-control counters.
    "\"latency_ns\"",
    "\"p999\"",
    "\"p999_resolvable\"",
    "\"admission_rejects\"",
    "\"fallback_under_pressure\"",
    "\"shed_requests\"",
    "\"completed_requests\"",
    "\"reconnects\"",
    "\"slow_drains\"",
    "\"makespan_ns\"",
    "\"mean_latency_ns\"",
    "\"max_pressure\"",
];

/// One independent simulation of the report: a server workload or a
/// kTLS flow, plus the dotted registry path its scope mounts at.
enum Entry {
    Server {
        kind: PlatformKind,
        cfg: WorkloadConfig,
        path: String,
        label: String,
    },
    Flow {
        placement: TlsPlacement,
        tcp: TcpConfig,
        transfer_bytes: u64,
        path: String,
        label: String,
    },
    Event {
        kind: PlatformKind,
        cfg: EventWorkloadConfig,
        path: String,
        label: String,
    },
}

/// Runs one entry into a detached scope; returns `(mount path, scope,
/// progress line)`. Pure function of the entry — safe on any worker.
fn run_entry(e: Entry) -> (String, Scope, String) {
    match e {
        Entry::Server {
            kind,
            cfg,
            path,
            label,
        } => {
            let mut scope = Scope::default();
            let m = run_server_with_telemetry(kind, &cfg, &mut scope);
            let line = format!(
                "  {label:<25} {:>10.0} rps  {:>5.1}% cpu  {:>6.2} GB/s",
                m.rps,
                m.cpu_utilization * 100.0,
                m.mem_bw_gbs()
            );
            (path, scope, line)
        }
        Entry::Flow {
            placement,
            tcp,
            transfer_bytes,
            path,
            label,
        } => {
            let mut scope = Scope::default();
            let report = run_encrypted_flow(transfer_bytes, &tcp, placement);
            report.export_telemetry(&mut scope);
            let line = format!(
                "  {label:<25} {:>9.2} Gbps  {:>4} resyncs  {:>4} rtx",
                report.goodput_gbps(),
                report.resyncs,
                report.tcp.retransmits
            );
            (path, scope, line)
        }
        Entry::Event {
            kind,
            cfg,
            path,
            label,
        } => {
            let mut scope = Scope::default();
            let m = run_event_server_with_telemetry(kind, &cfg, &mut scope);
            let line = format!(
                "  {label:<35} p50 {:>8} ns  p99 {:>8} ns  p999 {:>8} ns  {:>6.2} Gbps",
                m.p50_ns, m.p99_ns, m.p999_ns, m.goodput_gbps
            );
            (path, scope, line)
        }
    }
}

/// The report's full entry list for one workload scale. Every entry is
/// independent (own host, own seed), which is what lets the builder fan
/// them out across workers and still mount scopes in list order.
fn report_entries(connections: usize, requests: usize, transfer_bytes: u64) -> Vec<Entry> {
    let mut entries = Vec::new();

    // Inner simulations run their shard settling sequentially
    // (`threads: 1`): the report parallelizes *across* entries, and
    // nesting both levels would oversubscribe the pool.
    let cfg = WorkloadConfig {
        message_bytes: 4096,
        connections,
        requests,
        ulp: UlpKind::Tls,
        llc: Some(CacheConfig::mb(2, 16)),
        threads: 1,
        ..WorkloadConfig::default()
    };
    let platforms = [
        (PlatformKind::Cpu, "https_cpu"),
        (PlatformKind::SmartNic, "https_smartnic"),
        (PlatformKind::QuickAssist, "https_quickassist"),
        (PlatformKind::SmartDimm, "https_smartdimm"),
    ];
    for (kind, name) in platforms {
        entries.push(Entry::Server {
            kind,
            cfg: cfg.clone(),
            path: format!("server.{name}"),
            label: format!("server/{name}"),
        });
    }

    // Placement × channel-count sweep (§V-D, Fig. 11/12 at scale): TLS
    // under fine interleave stripes every offload across all shards;
    // deflate requires page-granular (coarse) interleave, where
    // cross-channel record→skb pairs exercise the driver's bounce path.
    // Runs at a reduced scale so the sweep adds breadth, not wall-clock.
    let sweep_conns = (connections / 4).max(16);
    let sweep_reqs = (requests / 4).max(64);
    for channels in [1usize, 2, 4] {
        let tls_cfg = WorkloadConfig {
            message_bytes: 4096,
            connections: sweep_conns,
            requests: sweep_reqs,
            ulp: UlpKind::Tls,
            llc: Some(CacheConfig::mb(2, 16)),
            channels,
            channel_interleave_lines: 1,
            threads: 1,
            ..WorkloadConfig::default()
        };
        for (kind, place) in [
            (PlatformKind::Cpu, "cpu"),
            (PlatformKind::SmartDimm, "smartdimm"),
        ] {
            let name = format!("tls_ch{channels}_{place}");
            entries.push(Entry::Server {
                kind,
                cfg: tls_cfg.clone(),
                path: format!("sweep.{name}"),
                label: format!("sweep/{name}"),
            });
        }
        let deflate_cfg = WorkloadConfig {
            ulp: UlpKind::Compression,
            channel_interleave_lines: 64,
            ..tls_cfg
        };
        let name = format!("deflate_ch{channels}_smartdimm");
        entries.push(Entry::Server {
            kind: PlatformKind::SmartDimm,
            cfg: deflate_cfg,
            path: format!("sweep.{name}"),
            label: format!("sweep/{name}"),
        });
    }

    // Scale-out topology sweep (§V-D on a NUMA box): 4 channels split
    // across 2 sockets with 2 DIMMs per channel — only slot 0 of each
    // channel carries the DSA, and remote-socket CAS pays a 200-cycle
    // interconnect penalty. One CPU baseline plus the SmartDIMM rows
    // under both placement policies, so the report shows the
    // occupancy+locality scheduler shifting offloads off the remote
    // socket (per-socket `remote_accesses` rollups and the host `sched`
    // counters make the shift auditable).
    let topo_cfg = WorkloadConfig {
        message_bytes: 4096,
        connections: sweep_conns,
        requests: sweep_reqs,
        ulp: UlpKind::Tls,
        llc: Some(CacheConfig::mb(2, 16)),
        channels: 4,
        channel_interleave_lines: 64,
        dimms_per_channel: 2,
        sockets: 2,
        interconnect_penalty_cycles: 200,
        threads: 1,
        ..WorkloadConfig::default()
    };
    entries.push(Entry::Server {
        kind: PlatformKind::Cpu,
        cfg: topo_cfg.clone(),
        path: "sweep.topology_cpu".to_string(),
        label: "sweep/topology_cpu".to_string(),
    });
    for (placement, name) in [
        (PlacementPolicy::Static, "topology_static_smartdimm"),
        (
            PlacementPolicy::OccupancyLocality,
            "topology_sched_smartdimm",
        ),
    ] {
        entries.push(Entry::Server {
            kind: PlatformKind::SmartDimm,
            cfg: WorkloadConfig {
                placement,
                ..topo_cfg.clone()
            },
            path: format!("sweep.{name}"),
            label: format!("sweep/{name}"),
        });
    }

    // Fidelity-tier row: the 4-channel TLS sweep once more on the fast
    // backend. Same workload bytes, tier-1 timing — archived so report
    // consumers can see both tiers side by side (and the `backend`
    // scope marking each).
    entries.push(Entry::Server {
        kind: PlatformKind::SmartDimm,
        cfg: WorkloadConfig {
            message_bytes: 4096,
            connections: sweep_conns,
            requests: sweep_reqs,
            ulp: UlpKind::Tls,
            llc: Some(CacheConfig::mb(2, 16)),
            channels: 4,
            channel_interleave_lines: 1,
            backend: platforms::BackendKind::FastQueue,
            threads: 1,
            ..WorkloadConfig::default()
        },
        path: "sweep.tls_ch4_smartdimm_fast".to_string(),
        label: "sweep/tls_ch4_smartdimm_fast".to_string(),
    });

    // Event-driven tail-latency sweep: the full-mode scale is 10240
    // logical zipfian connections and 12000 requests — enough samples to
    // resolve p999 — on the tier-1 fast backend (a cycle-accurate run at
    // this concurrency would dominate the report's wall-clock).
    let event_conns = connections * 20;
    let event_reqs = requests * 6;
    let event_cfg = EventWorkloadConfig {
        connections: event_conns,
        requests: event_reqs,
        workers: 64,
        ulp: UlpKind::Tls,
        llc: Some(CacheConfig::mb(2, 16)),
        churn_permille: 100,
        slow_client_permille: 50,
        threads: 1,
        ..EventWorkloadConfig::default()
    };
    for (kind, place) in [
        (PlatformKind::Cpu, "cpu"),
        (PlatformKind::SmartNic, "smartnic"),
        (PlatformKind::QuickAssist, "quickassist"),
        (PlatformKind::SmartDimm, "smartdimm"),
    ] {
        let name = format!("tail_latency_{place}");
        entries.push(Entry::Event {
            kind,
            cfg: event_cfg.clone(),
            path: format!("sweep.{name}"),
            label: format!("sweep/{name}"),
        });
    }
    entries.push(Entry::Event {
        kind: PlatformKind::SmartDimm,
        cfg: EventWorkloadConfig {
            ulp: UlpKind::Compression,
            ..event_cfg.clone()
        },
        path: "sweep.tail_latency_deflate_smartdimm".to_string(),
        label: "sweep/tail_latency_deflate_smartdimm".to_string(),
    });
    // Admission-controlled row: a starved scratchpad pushes queue
    // pressure over the watermark, so the committed report archives live
    // fallback/reject counters rather than structural zeros.
    entries.push(Entry::Event {
        kind: PlatformKind::SmartDimm,
        cfg: EventWorkloadConfig {
            scratchpad_pages: Some(48),
            admission: AdmissionConfig {
                policy: AdmissionPolicy::CpuFallback,
                watermark: 0.5,
            },
            ..event_cfg
        },
        path: "sweep.tail_latency_smartdimm_admission".to_string(),
        label: "sweep/tail_latency_smartdimm_admission".to_string(),
    });

    let tcp = TcpConfig {
        loss_prob: 0.005,
        seed: 7,
        ..TcpConfig::default()
    };
    for (placement, name) in [
        (TlsPlacement::cpu_default(), "ktls_cpu"),
        (TlsPlacement::smartnic_default(), "ktls_smartnic"),
    ] {
        entries.push(Entry::Flow {
            placement,
            tcp,
            transfer_bytes,
            path: format!("netsim.{name}"),
            label: format!("netsim/{name}"),
        });
    }
    entries
}

/// Builds the full telemetry tree for one workload scale, fanning the
/// independent entries across `threads` workers. Everything is seeded
/// and scopes mount in entry-list order, so the registry snapshots
/// byte-identically for the same `(connections, requests,
/// transfer_bytes)` triple at *any* worker count — only the returned
/// [`ParStats`] (wall-clock metadata) varies.
fn build_registry(
    connections: usize,
    requests: usize,
    transfer_bytes: u64,
    threads: usize,
) -> (Registry, ParStats) {
    let entries = report_entries(connections, requests, transfer_bytes);
    let (results, stats) = simkit::par::run_indexed(threads, entries, |_, e| run_entry(e));
    let mut reg = Registry::new();
    for (path, scope, line) in results {
        println!("{line}");
        *reg.scope(&path) = scope;
    }
    (reg, stats)
}

/// Wraps the telemetry snapshot in the `run_report/v1` metadata document.
/// The wall-clock stamp and the scheduler stats (worker count, task and
/// steal totals from the entry fan-out) are the only non-deterministic
/// fields, which is why they live out here and not inside the snapshot.
fn render_report(mode: &str, snapshot: &str, stats: ParStats) -> String {
    let indented = snapshot.replace('\n', "\n  ");
    format!(
        "{{\n  \"schema\": \"run_report/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"generated_at_unix\": {},\n  \"workers\": {},\n  \
         \"par_tasks\": {},\n  \"par_steals\": {},\n  \
         \"telemetry\": {indented}\n}}",
        simkit::timer::unix_time_secs(),
        stats.workers,
        stats.tasks,
        stats.steals
    )
}

fn check(path: &PathBuf) -> ExitCode {
    let doc = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[err] {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if !json_parses(&doc) {
        eprintln!("[err] {} is not well-formed JSON", path.display());
        return ExitCode::FAILURE;
    }
    for tag in ["run_report/v1", "telemetry/v1"] {
        if !doc.contains(tag) {
            eprintln!("[err] {} lacks schema tag {tag:?}", path.display());
            return ExitCode::FAILURE;
        }
    }
    // Scopes render as nested objects, so `server.https_cpu` appears as
    // the leaf name under the `server` scope.
    for scope in REQUIRED_SCOPES {
        let leaf = scope.rsplit('.').next().expect("non-empty scope path");
        if !doc.contains(&format!("\"{leaf}\"")) {
            eprintln!("[err] {} lacks scope {scope:?}", path.display());
            return ExitCode::FAILURE;
        }
    }
    for metric in REQUIRED_METRICS {
        if !doc.contains(metric) {
            eprintln!("[err] {} lacks metric {metric}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "[ok] {} parses and covers all stat surfaces",
        path.display()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let committed = bench::results_dir().join("run_report.json");

    if mode == "check" {
        return check(&committed);
    }

    let (connections, requests, transfer_bytes, out_path) = match mode.as_str() {
        "smoke" => (
            64,
            200,
            1u64 << 20,
            repo_root().join("target").join("run_report.smoke.json"),
        ),
        "full" => (512, 2000, 16u64 << 20, committed),
        other => {
            eprintln!("usage: run_report [smoke|full|check] (got {other:?})");
            return ExitCode::FAILURE;
        }
    };

    let threads = simkit::par::configured_threads(0);
    println!("run report ({mode} mode, {threads} worker(s))");
    let (reg, stats) = build_registry(connections, requests, transfer_bytes, threads);
    let snapshot = reg.snapshot();
    let doc = render_report(&mode, &snapshot, stats);
    assert!(json_parses(&doc), "emitted report must be valid JSON");
    for scope in REQUIRED_SCOPES {
        let leaf = scope.rsplit('.').next().expect("non-empty scope path");
        assert!(doc.contains(&format!("\"{leaf}\"")), "missing {scope}");
    }
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir).expect("create report dir");
    }
    std::fs::write(&out_path, &doc).expect("write run_report.json");
    println!(
        "\n[{} metrics across the registry; report written to {}]",
        reg.metric_count(),
        out_path.display()
    );
    ExitCode::SUCCESS
}
