//! Figure 2: achievable bandwidth over an encrypted connection for
//! SmartNIC and CPU placements under packet drops.
//!
//! Reproduces §III Observation 1: at zero loss the autonomous SmartNIC
//! offload ties (or marginally beats) AES-NI on the CPU; as soon as the
//! programmable switch injects drops, NIC↔driver resynchronizations and
//! CPU fallbacks erase the offload benefit.

use netsim::ktls::{run_encrypted_flow, TlsPlacement};
use netsim::tcp::TcpConfig;

fn main() {
    let transfer: u64 = 32 << 20;
    let drop_rates = [0.0, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &loss in &drop_rates {
        let tcp = TcpConfig {
            loss_prob: loss,
            seed: 7,
            ..TcpConfig::default()
        };
        let cpu = run_encrypted_flow(transfer, &tcp, TlsPlacement::cpu_default());
        let nic = run_encrypted_flow(transfer, &tcp, TlsPlacement::smartnic_default());
        rows.push(vec![
            format!("{:.2}%", loss * 100.0),
            format!("{:.2}", cpu.goodput_gbps()),
            format!("{:.2}", nic.goodput_gbps()),
            format!("{}", nic.resyncs),
            bench::pct(nic.cpu_crypto_fraction()),
        ]);
        csv.push(format!(
            "{},{:.4},{:.4},{},{:.4}",
            loss,
            cpu.goodput_gbps(),
            nic.goodput_gbps(),
            nic.resyncs,
            nic.cpu_crypto_fraction()
        ));
    }
    bench::print_table(
        "Fig. 2 — encrypted-flow bandwidth vs packet drops (32 MiB transfer)",
        &[
            "drop rate",
            "CPU Gbps",
            "SmartNIC Gbps",
            "resyncs",
            "NIC cpu-fallback",
        ],
        &rows,
    );
    bench::write_csv(
        "fig02_smartnic_drops.csv",
        "drop_rate,cpu_gbps,smartnic_gbps,resyncs,nic_cpu_fraction",
        &csv,
    );

    // Companion sweep: packet *reordering* (no loss) — Observation 1
    // names it alongside drops as what forces NIC resynchronization.
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &reorder in &[0.0, 0.001, 0.005, 0.01, 0.02] {
        let tcp = TcpConfig {
            reorder_prob: reorder,
            seed: 8,
            ..TcpConfig::default()
        };
        let cpu = run_encrypted_flow(transfer, &tcp, TlsPlacement::cpu_default());
        let nic = run_encrypted_flow(transfer, &tcp, TlsPlacement::smartnic_default());
        rows.push(vec![
            format!("{:.2}%", reorder * 100.0),
            format!("{:.2}", cpu.goodput_gbps()),
            format!("{:.2}", nic.goodput_gbps()),
            format!("{}", nic.resyncs),
            format!("{}", nic.tcp.reordered),
        ]);
        csv.push(format!(
            "{},{:.4},{:.4},{},{}",
            reorder,
            cpu.goodput_gbps(),
            nic.goodput_gbps(),
            nic.resyncs,
            nic.tcp.reordered
        ));
    }
    bench::print_table(
        "Fig. 2 companion — bandwidth vs packet reordering (no loss)",
        &[
            "reorder rate",
            "CPU Gbps",
            "SmartNIC Gbps",
            "resyncs",
            "reordered",
        ],
        &rows,
    );
    bench::write_csv(
        "fig02b_smartnic_reorder.csv",
        "reorder_rate,cpu_gbps,smartnic_gbps,resyncs,reordered_segments",
        &csv,
    );
}
