//! Figure 9: rdCAS/wrCAS memory trace collected from SmartDIMM while
//! four cores concurrently execute CompCpy calls.
//!
//! Each row of the CSV is one CAS command at the buffer device: time
//! (DDR command cycles), kind, physical address and the issuing core's
//! tag. The paper's observations to reproduce: (a) read commands belong
//! to the source addresses of the *current* CompCpy, (b) write commands
//! belong to self-recycles of destination buffers accessed *earlier*,
//! and (c) addresses inside one CompCpy increase monotonically.

use cache::CacheConfig;
use dram::PhysAddr;
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};

fn main() {
    let mut cfg = HostConfig::default();
    // Small LLC so dbuf writebacks (self-recycles) interleave with the
    // next offload's source reads — the Fig. 9 pattern.
    cfg.mem.llc = Some(CacheConfig::kb(256, 16));
    cfg.mem.dram.trace = true;
    let mut host = CompCpyHost::new(cfg);

    // Four "cores", each with buffers spaced 32 MB apart (as in §VII-A).
    const SPACING: u64 = 32 << 20;
    const CORE_BASE: u64 = 0x0100_0000;
    let key = [3u8; 16];
    let offloads_per_core = 4usize;

    for round in 0..offloads_per_core {
        for core in 0..4usize {
            let base = CORE_BASE + core as u64 * SPACING + (round as u64) * 0x4000;
            let src = PhysAddr(base);
            let dst = PhysAddr(base + 0x2000);
            let msg = ulp_compress::corpus::text(8192, (core * 10 + round) as u64);
            host.mem_mut().store(src, &msg, core);
            let iv = [core as u8 + round as u8; 12];
            let _ = host
                .comp_cpy(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    false,
                    core,
                )
                .expect("offload accepted");
            // No use_buffer: recycling happens via natural LLC evictions,
            // so wrCAS commands lag behind their offload's rdCAS stream.
        }
    }

    let trace = host.mem().dram().trace();
    let records = trace.records();
    let rd = records.iter().filter(|r| r.kind == "rdCAS").count();
    let wr = records.iter().filter(|r| r.kind == "wrCAS").count();
    println!(
        "collected {} CAS records ({} rdCAS, {} wrCAS)",
        records.len(),
        rd,
        wr
    );

    // Verify the monotonic-address property within each CompCpy source
    // stream (the magnified inset of Fig. 9).
    let mut last_src: Option<u64> = None;
    let mut monotonic_runs = 0u64;
    for r in records.iter().filter(|r| r.kind == "rdCAS") {
        match last_src {
            Some(prev) if r.value == prev + 64 => {}
            _ => monotonic_runs += 1,
        }
        last_src = Some(r.value);
    }
    println!("rdCAS stream breaks into {monotonic_runs} monotonic runs (streams/offloads)");

    let csv: Vec<String> = records
        .iter()
        .map(|r| format!("{},{},{:#x},{}", r.at.raw(), r.kind, r.value, r.tag))
        .collect();
    bench::write_csv("fig09_cas_trace.csv", "cycle,kind,phys_addr,core", &csv);
}
