//! Figure 11: Nginx serving HTTPS — requests per second, CPU utilization
//! and memory-bandwidth utilization for SmartNIC, QuickAssist and
//! SmartDIMM, normalized to the CPU configuration, at 4 KB / 16 KB /
//! 64 KB message sizes.
//!
//! Paper shape to reproduce: SmartDIMM wins RPS at every size (+21 % at
//! 4 KB, +35.8 % at 16 KB) with substantially lower memory bandwidth
//! (−49.1 % at 4 KB); SmartNIC and QuickAssist fail to beat the CPU at
//! 4 KB (offload-initialization overhead), SmartNIC pulls ahead at
//! 16 KB+; QuickAssist *increases* memory traffic.

use cache::CacheConfig;
use platforms::{run_server, PlatformKind, ServerMetrics, UlpKind, WorkloadConfig};
struct Row {
    message: usize,
    platform: String,
    rps: f64,
    rps_norm: f64,
    cpu_norm: f64,
    membw_norm: f64,
}

impl bench::ToJson for Row {
    fn to_json(&self) -> bench::Json {
        bench::Json::Obj(vec![
            ("message".into(), self.message.into()),
            ("platform".into(), self.platform.clone().into()),
            ("rps".into(), self.rps.into()),
            ("rps_norm".into(), self.rps_norm.into()),
            ("cpu_norm".into(), self.cpu_norm.into()),
            ("membw_norm".into(), self.membw_norm.into()),
        ])
    }
}

fn main() {
    let sizes = [4096usize, 16384, 65536];
    let platforms = [
        PlatformKind::Cpu,
        PlatformKind::SmartNic,
        PlatformKind::QuickAssist,
        PlatformKind::SmartDimm,
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &m in &sizes {
        // Scale request count so each size moves similar total bytes.
        let requests = (2000 * 4096 / m).max(300);
        let cfg = WorkloadConfig {
            message_bytes: m,
            connections: 1024,
            requests,
            ulp: UlpKind::Tls,
            llc: Some(CacheConfig::mb(2, 16)), // contended-LLC regime (§VI)
            ..WorkloadConfig::default()
        };
        let metrics: Vec<(PlatformKind, ServerMetrics)> = platforms
            .iter()
            .map(|&k| (k, run_server(k, &cfg)))
            .collect();
        let cpu = metrics[0].1.clone();
        for (k, m_) in &metrics {
            let rps_n = m_.rps / cpu.rps;
            // CPU and memory are compared per unit of work (utilization
            // at matched load), normalized to the CPU configuration.
            let cpu_n = m_.cpu_ns_per_req / cpu.cpu_ns_per_req;
            let bw_n = m_.dram_bytes_per_req / cpu.dram_bytes_per_req;
            rows.push(vec![
                format!("{}KB", m / 1024),
                format!("{k:?}"),
                format!("{:.0}", m_.rps),
                bench::ratio(rps_n),
                bench::ratio(cpu_n),
                bench::ratio(bw_n),
                format!("{:.0}", m_.dram_bytes_per_req),
            ]);
            json.push(Row {
                message: m,
                platform: format!("{k:?}"),
                rps: m_.rps,
                rps_norm: rps_n,
                cpu_norm: cpu_n,
                membw_norm: bw_n,
            });
        }
    }
    bench::print_table(
        "Fig. 11 — HTTPS (TLS) offload, normalized to the CPU configuration",
        &[
            "msg",
            "platform",
            "RPS",
            "RPS/cpu",
            "CPU/req norm",
            "DRAM/req norm",
            "DRAM B/req",
        ],
        &rows,
    );
    bench::write_json("fig11_tls_offload.json", &json);
}
