//! §IV-C ablation: cuckoo Translation Table behaviour vs occupancy.
//!
//! The paper sizes the table 3× over-provisioned (12288 slots for 4096
//! required entries) so occupancy stays below 33 %, where insertions
//! land on the first attempt or with a single displacement and the
//! failure probability is effectively zero. This sweep fills the table
//! to increasing occupancies and reports displacement/stash/failure
//! statistics.

use smartdimm::xlat::{Mapping, TranslationTable};

fn main() {
    let slots = 12288usize;
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for occupancy_pct in [10usize, 20, 33, 50, 70, 85, 95] {
        let entries = slots * occupancy_pct / 100;
        let mut table = TranslationTable::new(slots, 8);
        let mut failures = 0u64;
        for page in 0..entries as u64 {
            // Realistic page numbers: scattered, not sequential.
            let page = page.wrapping_mul(0x9E37_79B9).rotate_left(17);
            if table
                .insert(
                    page,
                    Mapping::Source {
                        offload: page,
                        msg_offset: 0,
                    },
                )
                .is_err()
            {
                failures += 1;
            }
        }
        let s = table.stats();
        let disp_per_insert = s.displacements as f64 / s.inserts.max(1) as f64;
        let first_try = s.first_try as f64 / s.inserts.max(1) as f64;
        rows.push(vec![
            format!("{occupancy_pct}%"),
            s.inserts.to_string(),
            format!("{:.4}", disp_per_insert),
            bench::pct(first_try),
            s.stash_spills.to_string(),
            (failures + s.failures).to_string(),
        ]);
        csv.push(format!(
            "{occupancy_pct},{},{:.6},{:.6},{},{}",
            s.inserts, disp_per_insert, first_try, s.stash_spills, failures
        ));
    }
    bench::print_table(
        "§IV-C — 3-ary cuckoo translation table vs occupancy (12288 slots, 8-entry CAM)",
        &[
            "occupancy",
            "inserts",
            "disp/insert",
            "first-try",
            "stash spills",
            "failures",
        ],
        &rows,
    );
    println!("\npaper: below 33% occupancy, displacement is rare and failures are ~zero");
    bench::write_csv(
        "ablate_cuckoo.csv",
        "occupancy_pct,inserts,displacements_per_insert,first_try_fraction,stash_spills,failures",
        &csv,
    );
}
