//! §VII-D: area and power report for the SmartDIMM buffer device.
//!
//! Reproduces the paper's accounting: 4.78 W dynamic power at full DDR
//! channel utilization, ~0.92 W on average across the benchmarks (which
//! keep channel utilization under 30 %), and the TLS offload consuming
//! ~21.8 % of the FPGA's resources.

use smartdimm::areapower;
use smartdimm::SmartDimmConfig;

fn main() {
    let cfg = SmartDimmConfig::default();
    let report = areapower::estimate(&cfg);
    println!("{}", report.render());

    let mut rows = Vec::new();
    rows.push(vec![
        "dynamic power @ full channel".to_string(),
        format!("{:.2} W", report.full_dynamic_watts()),
        "4.78 W".to_string(),
    ]);
    // The paper's benchmarks stay under 30% channel utilization.
    for util in [0.10, 0.20, 0.30] {
        rows.push(vec![
            format!("dynamic power @ {:.0}% channel", util * 100.0),
            format!("{:.2} W", report.dynamic_watts_at(util)),
            "~0.92 W avg".to_string(),
        ]);
    }
    rows.push(vec![
        "TLS offload FPGA share".to_string(),
        bench::pct(report.tls_fpga_fraction()),
        "~21.8%".to_string(),
    ]);
    bench::print_table(
        "§VII-D — area & power vs the paper's reported values",
        &["quantity", "model", "paper"],
        &rows,
    );

    let csv: Vec<String> = report
        .components
        .iter()
        .map(|c| {
            format!(
                "{},{},{},{:.3}",
                c.name, c.sram_bits, c.logic_units, c.dynamic_watts
            )
        })
        .collect();
    bench::write_csv(
        "micro_areapower.csv",
        "component,sram_bits,logic_units,dynamic_watts",
        &csv,
    );
}
