//! Differential fidelity check → `results/backend_differential.json`.
//!
//! Runs every committed workload shape (TLS 1/2/4-channel sweeps, the
//! deflate round trip, the fault-injected oracle seeds) on **both**
//! memory backends — the cycle-accurate `DramSystem` (fidelity tier 0)
//! and the fixed-latency `FastDramSystem` (tier 1) — and reports, per
//! workload:
//!
//! * whether the payload bytes and functional counters matched
//!   (`functional_match`; the binary exits non-zero if any row is
//!   false),
//! * simulated end-of-run cycles on each tier and their ratio (the
//!   committed tolerance band lives in `tests/backend_differential.rs`),
//! * wall-clock per tier, for the honest record of what the fast tier
//!   buys (the simulation is ULP-compute-bound, so expect ~1x in
//!   release — see DESIGN.md "Memory backend fidelity tiers").
//!
//! Modes mirror `bench_hotpaths`:
//!
//! * `smoke` — reduced seeds, report under `target/` (CI never clobbers
//!   the committed numbers),
//! * `full` — the committed `results/backend_differential.json`
//!   (default),
//! * `check` — parse-validate the committed report (used by `ci.sh`).

use bench::harness::json_parses;
use bench::Json;
use dram::DramTopology;
use memsys::BackendKind;
use simkit::timer::Stopwatch;
use simkit::FaultPlan;
use smartdimm::{CompCpyHost, FaultOracle, HostConfig, OffloadOp};
use std::path::PathBuf;
use std::process::ExitCode;

/// 64 lines per channel: page-granular (coarse) channel rotation.
const COARSE: usize = 64;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

/// Payload bytes + functional counters of one run (must be identical
/// across backends) plus the simulated clock (banded, not exact).
#[derive(PartialEq)]
struct Outcome {
    payloads: Vec<Vec<u8>>,
    bounced: u64,
    recycles: u64,
    faults: u64,
    rd_cas: u64,
    wr_cas: u64,
}

fn finish(host: &mut CompCpyHost, payloads: Vec<Vec<u8>>) -> (Outcome, u64) {
    let dram = host.mem().dram();
    let cycles = dram.now().raw();
    let outcome = Outcome {
        payloads,
        bounced: host.bounced_offload_count(),
        recycles: host.force_recycle_count(),
        faults: host.injected_fault_count(),
        rd_cas: dram.stats().rd_cas.value(),
        wr_cas: dram.stats().wr_cas.value(),
    };
    (outcome, cycles)
}

fn host_for(backend: BackendKind, channels: usize, interleave: usize) -> CompCpyHost {
    let mut cfg = HostConfig::default();
    cfg.mem.backend = backend;
    cfg.mem.dram.topology = DramTopology {
        channels,
        channel_interleave_lines: interleave,
        ..DramTopology::default()
    };
    CompCpyHost::new(cfg)
}

fn tls_sweep(
    backend: BackendKind,
    channels: usize,
    interleave: usize,
    offloads: u64,
) -> (Outcome, u64) {
    let mut host = host_for(backend, channels, interleave);
    let mut payloads = Vec::new();
    for seed in 0..offloads {
        let size = 2048 + (seed * 1777) as usize % 6000;
        let pages = size.div_ceil(4096);
        let src = host.alloc_pages(pages);
        let dst = host.alloc_pages(pages);
        let msg = ulp_compress::corpus::html(size, 40 + seed);
        host.mem_mut().store(src, &msg, 0);
        let key = [0x2Au8; 16];
        let iv = [seed as u8; 12];
        let handle = host
            .comp_cpy_with_aad(
                dst,
                src,
                size,
                OffloadOp::TlsEncrypt { key, iv },
                b"diff",
                false,
                0,
            )
            .expect("offload accepted");
        payloads.push(host.use_buffer(&handle));
        payloads.push(host.tag(&handle).expect("tag available").to_vec());
    }
    finish(&mut host, payloads)
}

fn deflate_sweep(backend: BackendKind, rounds: u64) -> (Outcome, u64) {
    let mut host = host_for(backend, 2, COARSE);
    let mut payloads = Vec::new();
    for seed in 0..rounds {
        let page = ulp_compress::corpus::html(4096, 70 + seed);
        let src = host.alloc_pages(1);
        let dst = host.alloc_pages(1);
        host.mem_mut().store(src, &page, 0);
        let handle = host
            .comp_cpy(dst, src, 4096, OffloadOp::Compress, true, 0)
            .expect("compression accepted");
        let compressed = host.use_buffer(&handle);
        let csrc = host.alloc_pages(1);
        let cdst = host.alloc_pages(1);
        host.mem_mut().store(csrc, &compressed, 0);
        let handle = host
            .comp_cpy(cdst, csrc, compressed.len(), OffloadOp::Decompress, true, 0)
            .expect("decompression accepted");
        payloads.push(compressed);
        payloads.push(host.use_buffer(&handle));
    }
    finish(&mut host, payloads)
}

fn fault_sweep(backend: BackendKind, seeds: u64) -> (Outcome, u64) {
    let mut bounced = 0;
    let mut recycles = 0;
    let mut faults = 0;
    let mut rd_cas = 0;
    let mut wr_cas = 0;
    let mut cycles = 0;
    for seed in 0..seeds {
        let plan = FaultPlan::generate(seed, 4);
        let mut cfg = HostConfig::default();
        cfg.mem.backend = backend;
        cfg.mem.dram.topology = DramTopology {
            channels: 2,
            channel_interleave_lines: COARSE,
            ..DramTopology::default()
        };
        cfg.dimm.scratchpad_pages = 16;
        cfg.dimm.xlat_entries = 64;
        cfg.dimm.cam_entries = 4;
        let mut oracle = FaultOracle::new(cfg, plan);
        let key = [0x5Cu8; 16];
        for i in 0..4u64 {
            let size = 600 + (seed * 977 + i * 4099) as usize % 7000;
            let msg = ulp_compress::corpus::text(size, seed * 31 + i);
            let mut iv = [0u8; 12];
            iv[..8].copy_from_slice(&(seed * 100 + i).to_le_bytes());
            // `check` panics on any byte divergence from software.
            oracle.check(OffloadOp::TlsEncrypt { key, iv }, &msg, b"hdr#f");
        }
        let host = oracle.host();
        bounced += host.bounced_offload_count();
        recycles += host.force_recycle_count();
        faults += host.injected_fault_count();
        let dram = host.mem().dram();
        rd_cas += dram.stats().rd_cas.value();
        wr_cas += dram.stats().wr_cas.value();
        cycles += dram.now().raw();
    }
    (
        Outcome {
            payloads: Vec::new(),
            bounced,
            recycles,
            faults,
            rd_cas,
            wr_cas,
        },
        cycles,
    )
}

struct Row {
    workload: String,
    accurate_cycles: u64,
    fast_cycles: u64,
    accurate_wall_ms: f64,
    fast_wall_ms: f64,
    functional_match: bool,
}

impl Row {
    fn measure(workload: &str, run: impl Fn(BackendKind) -> (Outcome, u64)) -> Row {
        let sw = Stopwatch::start();
        let (acc, acc_cycles) = run(BackendKind::CycleAccurate);
        let acc_ms = sw.elapsed_ns() as f64 / 1e6;
        let sw = Stopwatch::start();
        let (fast, fast_cycles) = run(BackendKind::FastQueue);
        let fast_ms = sw.elapsed_ns() as f64 / 1e6;
        Row {
            workload: workload.to_string(),
            accurate_cycles: acc_cycles,
            fast_cycles,
            accurate_wall_ms: acc_ms,
            fast_wall_ms: fast_ms,
            functional_match: acc == fast,
        }
    }

    fn cycle_ratio(&self) -> f64 {
        self.fast_cycles as f64 / self.accurate_cycles as f64
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workload".into(), self.workload.clone().into()),
            ("accurate_cycles".into(), self.accurate_cycles.into()),
            ("fast_cycles".into(), self.fast_cycles.into()),
            ("cycle_ratio".into(), self.cycle_ratio().into()),
            ("accurate_wall_ms".into(), self.accurate_wall_ms.into()),
            ("fast_wall_ms".into(), self.fast_wall_ms.into()),
            ("functional_match".into(), self.functional_match.into()),
        ])
    }
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let committed = repo_root()
        .join("results")
        .join("backend_differential.json");

    if mode == "check" {
        return match std::fs::read_to_string(&committed) {
            Ok(s) if json_parses(&s) && s.contains("backend_differential/v1") => {
                println!("[ok] {} parses", committed.display());
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!("[err] {} is not a valid report", committed.display());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("[err] {}: {e}", committed.display());
                ExitCode::FAILURE
            }
        };
    }

    let (offloads, rounds, seeds, out_path) = match mode.as_str() {
        "smoke" => (
            2u64,
            1u64,
            2u64,
            repo_root()
                .join("target")
                .join("backend_differential.smoke.json"),
        ),
        "full" => (6, 3, 12, committed),
        other => {
            eprintln!("usage: backend_differential [smoke|full|check] (got {other:?})");
            return ExitCode::FAILURE;
        }
    };

    println!("backend differential ({mode} mode)");
    let rows = vec![
        Row::measure("tls_ch1_fine", |b| tls_sweep(b, 1, 1, offloads)),
        Row::measure("tls_ch2_coarse", |b| tls_sweep(b, 2, COARSE, offloads)),
        Row::measure("tls_ch4_coarse", |b| tls_sweep(b, 4, COARSE, offloads)),
        Row::measure("deflate_ch2_coarse", |b| deflate_sweep(b, rounds)),
        Row::measure("fault_seed_sweep", |b| fault_sweep(b, seeds)),
    ];

    let mut table = Vec::new();
    for r in &rows {
        table.push(vec![
            r.workload.clone(),
            format!("{}", r.accurate_cycles),
            format!("{}", r.fast_cycles),
            format!("{:.3}", r.cycle_ratio()),
            format!("{:.1}", r.accurate_wall_ms),
            format!("{:.1}", r.fast_wall_ms),
            format!("{}", r.functional_match),
        ]);
    }
    bench::print_table(
        "fast vs accurate backend",
        &[
            "workload",
            "acc cycles",
            "fast cycles",
            "ratio",
            "acc ms",
            "fast ms",
            "match",
        ],
        &table,
    );

    let all_match = rows.iter().all(|r| r.functional_match);
    let doc = Json::Obj(vec![
        ("schema".into(), "backend_differential/v1".into()),
        ("mode".into(), mode.clone().into()),
        ("all_functional_match".into(), all_match.into()),
        (
            "workloads".into(),
            Json::Arr(rows.iter().map(Row::to_json).collect()),
        ),
    ])
    .render();
    assert!(json_parses(&doc), "emitted report must be valid JSON");
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir).expect("create report dir");
    }
    std::fs::write(&out_path, doc).expect("write backend_differential.json");
    println!("\n[report written to {}]", out_path.display());
    if !all_match {
        eprintln!("[err] functional divergence between backends");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
