//! Figure 12: Nginx serving deflate-compressed responses — RPS, CPU
//! utilization and memory bandwidth for QuickAssist and SmartDIMM,
//! normalized to the CPU configuration (SmartNIC cannot offload
//! non-size-preserving ULPs and is excluded, as in the paper).
//!
//! Paper shape to reproduce: offloading compression pays far more than
//! TLS (AES-NI makes software crypto cheap; software deflate is not):
//! SmartDIMM reaches 5.09×/10.28× the CPU's RPS at 4 KB/16 KB with
//! −81.5 % CPU and −88.9 % memory bandwidth, while QuickAssist gains
//! nothing at small messages and *adds* memory and CPU overhead.

use cache::CacheConfig;
use platforms::{run_server, PlatformKind, ServerMetrics, UlpKind, WorkloadConfig};
struct Row {
    message: usize,
    platform: String,
    rps: f64,
    rps_norm: f64,
    cpu_norm: f64,
    membw_norm: f64,
}

impl bench::ToJson for Row {
    fn to_json(&self) -> bench::Json {
        bench::Json::Obj(vec![
            ("message".into(), self.message.into()),
            ("platform".into(), self.platform.clone().into()),
            ("rps".into(), self.rps.into()),
            ("rps_norm".into(), self.rps_norm.into()),
            ("cpu_norm".into(), self.cpu_norm.into()),
            ("membw_norm".into(), self.membw_norm.into()),
        ])
    }
}

fn main() {
    let sizes = [4096usize, 16384];
    let platforms = [
        PlatformKind::Cpu,
        PlatformKind::QuickAssist,
        PlatformKind::SmartDimm,
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &m in &sizes {
        let requests = (1500 * 4096 / m).max(300);
        let cfg = WorkloadConfig {
            message_bytes: m,
            connections: 1024,
            requests,
            ulp: UlpKind::Compression,
            corpus: ulp_compress::corpus::Kind::Html,
            llc: Some(CacheConfig::mb(2, 16)),
            ..WorkloadConfig::default()
        };
        let metrics: Vec<(PlatformKind, ServerMetrics)> = platforms
            .iter()
            .map(|&k| (k, run_server(k, &cfg)))
            .collect();
        let cpu = metrics[0].1.clone();
        for (k, m_) in &metrics {
            let rps_n = m_.rps / cpu.rps;
            // Per-unit-of-work comparison (utilization at matched load).
            let cpu_n = m_.cpu_ns_per_req / cpu.cpu_ns_per_req;
            let bw_n = m_.dram_bytes_per_req / cpu.dram_bytes_per_req;
            rows.push(vec![
                format!("{}KB", m / 1024),
                format!("{k:?}"),
                format!("{:.0}", m_.rps),
                bench::ratio(rps_n),
                bench::ratio(cpu_n),
                bench::ratio(bw_n),
                format!("{:.0}", m_.wire_bytes_per_req),
            ]);
            json.push(Row {
                message: m,
                platform: format!("{k:?}"),
                rps: m_.rps,
                rps_norm: rps_n,
                cpu_norm: cpu_n,
                membw_norm: bw_n,
            });
        }
    }
    bench::print_table(
        "Fig. 12 — compression offload, normalized to the CPU configuration",
        &[
            "msg",
            "platform",
            "RPS",
            "RPS/cpu",
            "CPU/req norm",
            "DRAM/req norm",
            "wire B/req",
        ],
        &rows,
    );
    bench::write_json("fig12_compression_offload.json", &json);
}
