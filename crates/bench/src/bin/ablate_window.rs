//! §V-B ablation: Deflate DSA parallelization-window size vs compression
//! ratio and hardware cost.
//!
//! The paper fixes the window at 8 bytes, noting that a larger window
//! "marginally improves the compression ratio and bandwidth, but
//! exponentially raises the memory requirements and the logic
//! complexity". This sweep measures both sides of that trade-off on the
//! synthetic corpora, against software zlib-class deflate as the upper
//! bound.

use ulp_compress::corpus::Kind;
use ulp_compress::hwmodel::{HwCompressor, HwDeflateConfig};
use ulp_compress::{deflate, inflate};

fn main() {
    let corpora = [Kind::Text, Kind::Html, Kind::Json];
    let pages: Vec<(Kind, Vec<u8>)> = corpora
        .iter()
        .flat_map(|&k| (0..8u64).map(move |s| (k, k.generate(4096, s))))
        .collect();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for window in [2usize, 4, 8, 16, 32] {
        let cfg = HwDeflateConfig {
            window,
            ..HwDeflateConfig::default()
        };
        let mut hw = HwCompressor::new(cfg);
        let mut in_bytes = 0usize;
        let mut out_bytes = 0usize;
        for (_, page) in &pages {
            let result = hw.compress_page(page);
            assert_eq!(inflate::decompress(&result.data).unwrap(), *page);
            in_bytes += page.len();
            out_bytes += result.data.len();
        }
        let ratio = out_bytes as f64 / in_bytes as f64;
        let bits = cfg.candidate_memory_bits();
        rows.push(vec![
            window.to_string(),
            format!("{:.4}", ratio),
            format!("{} match", cfg.max_match()),
            format!("{} Kbit", bits / 1024),
            format!("{}", hw.stats().lookups_dropped),
        ]);
        csv.push(format!("{window},{ratio:.6},{bits}"));
    }
    // Software upper bound.
    let mut in_bytes = 0usize;
    let mut out_bytes = 0usize;
    for (_, page) in &pages {
        in_bytes += page.len();
        out_bytes += deflate::compress(page).len();
    }
    rows.push(vec![
        "software".to_string(),
        format!("{:.4}", out_bytes as f64 / in_bytes as f64),
        "258 match".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);

    bench::print_table(
        "§V-B — Deflate DSA window size vs compression ratio and memory cost",
        &[
            "window",
            "ratio (out/in)",
            "comparator",
            "candidate mem",
            "dropped lookups",
        ],
        &rows,
    );
    println!("\npaper: bigger window -> marginally better ratio, much more memory");
    bench::write_csv(
        "ablate_window.csv",
        "window,compression_ratio,candidate_memory_bits",
        &csv,
    );
}
