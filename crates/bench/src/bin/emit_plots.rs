//! Emits gnuplot scripts for the figure CSVs, mirroring the paper's
//! artifact workflow ("normalize and plot them using gnuplot scripts").
//!
//! After running the `fig*` binaries:
//! `cd results && gnuplot plot_fig02.gp plot_fig03.gp plot_fig10.gp`

use std::fs;

fn write(name: &str, body: &str) {
    let path = bench::results_dir().join(name);
    fs::write(&path, body).expect("write gnuplot script");
    println!("wrote {}", path.display());
}

fn main() {
    write(
        "plot_fig02.gp",
        r#"# Fig. 2: encrypted-flow bandwidth vs packet drops
set terminal pngcairo size 800,500
set output 'fig02_smartnic_drops.png'
set datafile separator ','
set xlabel 'packet drop rate'
set ylabel 'goodput (Gbps)'
set logscale x
set key top right
plot 'fig02_smartnic_drops.csv' using ($1+1e-5):2 skip 1 with linespoints title 'CPU (AES-NI)', \
     'fig02_smartnic_drops.csv' using ($1+1e-5):3 skip 1 with linespoints title 'SmartNIC (autonomous)'
"#,
    );
    write(
        "plot_fig03.gp",
        r#"# Fig. 3: HTTPS DRAM traffic normalized to HTTP vs connections
set terminal pngcairo size 800,500
set output 'fig03_https_membw.png'
set datafile separator ','
set xlabel 'concurrent connections'
set ylabel 'HTTPS DRAM bytes/req normalized to HTTP'
set logscale x 2
plot 'fig03_https_membw.csv' using 1:4 skip 1 with linespoints title 'HTTPS / HTTP'
"#,
    );
    write(
        "plot_fig09.gp",
        r#"# Fig. 9: rdCAS/wrCAS trace (addresses over time, per command kind)
set terminal pngcairo size 1000,600
set output 'fig09_cas_trace.png'
set datafile separator ','
set xlabel 'cycle'
set ylabel 'physical address'
set format y '%.0s%cB'
plot '< grep rdCAS fig09_cas_trace.csv' using 1:3 with dots lc rgb 'red' title 'rdCAS', \
     '< grep wrCAS fig09_cas_trace.csv' using 1:3 with dots lc rgb 'green' title 'wrCAS'
"#,
    );
    write(
        "plot_fig10.gp",
        r#"# Fig. 10: scratchpad occupancy over time per LLC provisioning
set terminal pngcairo size 900,500
set output 'fig10_scratchpad.png'
set datafile separator ','
set xlabel 'cycle'
set ylabel 'scratchpad occupancy (bytes)'
set key top left
plot for [llc in "4.00MB 2.00MB 0.50MB"] \
     '< grep '.llc.' fig10_scratchpad.csv' using 2:3 with lines title llc.' LLC'
"#,
    );
    println!("\nrender with: cd results && gnuplot plot_*.gp");
}
