//! Figure 10: Scratchpad utilization over time for different LLC
//! provisionings (Cache Allocation Technology).
//!
//! The paper shrinks the LLC with CAT way masks while four cores stream
//! CompCpy offloads, and shows Scratchpad occupancy reaching an
//! equilibrium where LLC writebacks recycle pages as fast as new offloads
//! allocate them — at *lower* occupancy when the LLC is more contended
//! (smaller), because dirty destination lines are evicted (and thus
//! self-recycled) sooner.

use cache::CacheConfig;
use dram::PhysAddr;
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};

fn run_with_ways(ways: usize) -> (String, Vec<(u64, f64)>, f64) {
    let mut cfg = HostConfig::default();
    // A 16-way LLC whose usable capacity is set via a CAT-style way
    // restriction on the offloading class.
    cfg.mem.llc = Some(CacheConfig::mb(4, 16));
    let mut host = CompCpyHost::new(cfg);
    host.mem_mut().llc_mut().set_ways(0, ways);

    let key = [9u8; 16];
    // Stream offloads from 4 cores without USE-flushes: recycling happens
    // only through natural LLC writebacks.
    for round in 0..200u64 {
        for core in 0..4u64 {
            let base = 0x0100_0000 + (core * 200 + round) * 0x3000;
            let src = PhysAddr(base);
            let dst = PhysAddr(base + 0x1000);
            let msg = ulp_compress::corpus::text(4096, core * 1000 + round);
            host.mem_mut().store(src, &msg, 0);
            let iv = [round as u8; 12];
            let _ = host
                .comp_cpy(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    false,
                    0,
                )
                .expect("offload accepted");
        }
    }
    let series: Vec<(u64, f64)> = host
        .device()
        .occupancy_series()
        .iter()
        .map(|(t, v)| (t.raw(), v))
        .collect();
    let equilibrium = host.device().occupancy_series().tail_mean(0.3);
    let label = format!("{:.2}MB", 4.0 * ways as f64 / 16.0);
    (label, series, equilibrium)
}

fn main() {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut equilibria = Vec::new();
    for ways in [16usize, 8, 2] {
        let (label, series, eq) = run_with_ways(ways);
        let peak = series.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        rows.push(vec![
            label.clone(),
            format!("{:.1} KB", eq / 1024.0),
            format!("{:.1} KB", peak / 1024.0),
            series.len().to_string(),
        ]);
        equilibria.push(eq);
        for (t, v) in series.iter().step_by(8) {
            csv.push(format!("{label},{t},{v}"));
        }
    }
    bench::print_table(
        "Fig. 10 — Scratchpad occupancy equilibrium vs LLC provisioning (CAT)",
        &["effective LLC", "equilibrium", "peak", "samples"],
        &rows,
    );
    println!(
        "\nsmaller LLC -> lower equilibrium: {}",
        equilibria.windows(2).all(|w| w[1] <= w[0] * 1.05)
    );
    bench::write_csv("fig10_scratchpad.csv", "llc,cycle,occupied_bytes", &csv);
}
