//! Shared plumbing for the experiment binaries: result-file locations,
//! CSV/JSON emission and a fixed-width table printer.
//!
//! Every `fig*`/`table*`/`ablate*`/`micro*` binary in `src/bin/` prints
//! its table to stdout *and* writes machine-readable results under
//! `results/` at the workspace root, which `EXPERIMENTS.md` references.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Resolves (and creates) the workspace-level `results/` directory.
pub fn results_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let dir = manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file into `results/`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let mut out = String::from(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    let path = results_dir().join(name);
    fs::write(&path, out).expect("write csv");
    println!("\n[results written to {}]", path.display());
}

/// Writes a JSON file into `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    fs::write(&path, serde_json::to_string_pretty(value).expect("serialize"))
        .expect("write json");
    println!("[results written to {}]", path.display());
}

/// Prints a fixed-width table: header row plus data rows.
pub fn print_table(title: &str, columns: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let header: Vec<String> = columns
        .iter()
        .zip(&widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect();
    println!("{}", header.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a ratio as `1.23x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn formatting() {
        assert_eq!(ratio(1.234), "1.23x");
        assert_eq!(pct(0.215), "21.5%");
    }
}
