//! Shared plumbing for the experiment binaries: result-file locations,
//! CSV/JSON emission and a fixed-width table printer.
//!
//! Every `fig*`/`table*`/`ablate*`/`micro*` binary in `src/bin/` prints
//! its table to stdout *and* writes machine-readable results under
//! `results/` at the workspace root, which `EXPERIMENTS.md` references
//! (its appendix maps each artifact back to the binary regenerating it).
//!
//! The [`harness`] module is the exception to the figure-reproduction
//! rule: it times the *simulator's own* hot paths (wall-clock, not
//! simulated cycles) for the `bench_hotpaths` binary, which writes
//! `BENCH_hotpaths.json` at the repo root. See DESIGN.md §7.

use std::fs;
use std::path::PathBuf;

pub mod harness;

/// Resolves (and creates) the workspace-level `results/` directory.
pub fn results_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let dir = manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file into `results/`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let mut out = String::from(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    let path = results_dir().join(name);
    fs::write(&path, out).expect("write csv");
    println!("\n[results written to {}]", path.display());
}

/// Minimal JSON document model, replacing serde_json so the workspace
/// builds without network access. Only what the `fig*` binaries emit.
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner_pad = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&inner_pad);
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&inner_pad);
                    out.push_str(&format!("\"{k}\": "));
                    v.render_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Conversion into the JSON document model; the replacement for
/// `serde::Serialize` in result emission.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|v| v.to_json()).collect())
    }
}

/// Writes a JSON file into `results/`.
pub fn write_json<T: ToJson>(name: &str, value: &T) {
    let path = results_dir().join(name);
    fs::write(&path, value.to_json().render()).expect("write json");
    println!("[results written to {}]", path.display());
}

/// Prints a fixed-width table: header row plus data rows.
pub fn print_table(title: &str, columns: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let header: Vec<String> = columns
        .iter()
        .zip(&widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect();
    println!("{}", header.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a ratio as `1.23x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn formatting() {
        assert_eq!(ratio(1.234), "1.23x");
        assert_eq!(pct(0.215), "21.5%");
    }
}
