//! Self-timing micro-benchmark harness for the hot-path pass.
//!
//! Criterion (under `benches/`) is the statistician's tool; this module
//! is the *CI-friendly* one: fixed iteration counts, a warmup phase, a
//! median-of-N wall-clock measurement via [`simkit::timer`], and stable
//! JSON emission (`BENCH_hotpaths.json` at the workspace root) that a
//! shell step can assert on. No sampling heuristics, no adaptive run
//! time — smoke mode finishes in seconds on any machine.

use crate::Json;
use simkit::timer::Stopwatch;

/// Iteration plan for one measurement.
#[derive(Debug, Clone, Copy)]
pub struct BenchSpec {
    /// Untimed calls to populate caches and branch predictors.
    pub warmup_iters: u64,
    /// Timed calls per sample.
    pub iters: u64,
    /// Samples taken; the median is reported. Keep this odd.
    pub samples: usize,
}

impl BenchSpec {
    /// Fast plan for CI smoke runs: enough to exercise the code and
    /// produce a parseable report, not enough for stable ratios.
    pub fn smoke() -> BenchSpec {
        BenchSpec {
            warmup_iters: 1,
            iters: 2,
            samples: 3,
        }
    }

    /// Full plan used to produce the committed `BENCH_hotpaths.json`.
    pub fn full() -> BenchSpec {
        BenchSpec {
            warmup_iters: 3,
            iters: 10,
            samples: 7,
        }
    }
}

/// Runs `f` under the spec and returns the median ns per call.
///
/// Each sample times `iters` back-to-back calls with one [`Stopwatch`]
/// and divides, so per-call clock-read overhead never enters the
/// number; the median over samples discards scheduler outliers.
pub fn median_ns_per_op(spec: BenchSpec, mut f: impl FnMut()) -> f64 {
    for _ in 0..spec.warmup_iters {
        f();
    }
    let mut per_op: Vec<f64> = (0..spec.samples)
        .map(|_| {
            let sw = Stopwatch::start();
            for _ in 0..spec.iters {
                f();
            }
            sw.elapsed_ns() as f64 / spec.iters as f64
        })
        .collect();
    per_op.sort_by(|a, b| a.partial_cmp(b).expect("ns/op is never NaN"));
    per_op[per_op.len() / 2]
}

/// One before/after pair in the hot-path report.
#[derive(Debug, Clone)]
pub struct HotPath {
    /// Stable identifier (JSON key), e.g. `"gf128_mul"`.
    pub name: &'static str,
    /// What the `before` measurement runs.
    pub before_impl: &'static str,
    /// What the `after` measurement runs.
    pub after_impl: &'static str,
    /// Units processed per op call (for ns-per-unit context).
    pub work_units: String,
    pub before_ns_per_op: f64,
    pub after_ns_per_op: f64,
}

impl HotPath {
    /// `before / after` — how many times faster the new path is.
    pub fn speedup(&self) -> f64 {
        self.before_ns_per_op / self.after_ns_per_op
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.into()),
            ("before_impl".into(), self.before_impl.into()),
            ("after_impl".into(), self.after_impl.into()),
            ("work_units".into(), self.work_units.clone().into()),
            ("before_ns_per_op".into(), self.before_ns_per_op.into()),
            ("after_ns_per_op".into(), self.after_ns_per_op.into()),
            ("speedup".into(), self.speedup().into()),
        ])
    }
}

/// Renders the full report document.
pub fn report(mode: &str, spec: BenchSpec, paths: &[HotPath]) -> Json {
    Json::Obj(vec![
        ("schema".into(), "bench_hotpaths/v1".into()),
        ("mode".into(), mode.into()),
        (
            "spec".into(),
            Json::Obj(vec![
                ("warmup_iters".into(), spec.warmup_iters.into()),
                ("iters".into(), spec.iters.into()),
                ("samples".into(), spec.samples.into()),
            ]),
        ),
        (
            "hot_paths".into(),
            Json::Arr(paths.iter().map(HotPath::to_json).collect()),
        ),
    ])
}

/// Minimal JSON well-formedness check (objects, arrays, strings,
/// numbers, booleans, null). Used by the binary's `check` mode so
/// `ci.sh` can assert the emitted report parses without needing an
/// external JSON tool in the container.
pub fn json_parses(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    if !parse_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return true;
            }
            loop {
                skip_ws(b, pos);
                if !parse_string(b, pos) {
                    return false;
                }
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return false;
                }
                *pos += 1;
                if !parse_value(b, pos) {
                    return false;
                }
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return true;
            }
            loop {
                if !parse_value(b, pos) {
                    return false;
                }
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => eat(b, pos, b"true"),
        Some(b'f') => eat(b, pos, b"false"),
        Some(b'n') => eat(b, pos, b"null"),
        Some(_) => parse_number(b, pos),
        None => false,
    }
}

fn eat(b: &[u8], pos: &mut usize, word: &[u8]) -> bool {
    if b[*pos..].starts_with(word) {
        *pos += word.len();
        true
    } else {
        false
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        *pos = start;
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(&b'e') | Some(&b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(&b'+') | Some(&b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_taken_over_samples() {
        let mut calls = 0u64;
        let spec = BenchSpec {
            warmup_iters: 2,
            iters: 4,
            samples: 5,
        };
        let ns = median_ns_per_op(spec, || calls += 1);
        assert_eq!(calls, 2 + 4 * 5);
        assert!(ns >= 0.0);
    }

    #[test]
    fn report_renders_parseable_json() {
        let paths = vec![HotPath {
            name: "gf128_mul",
            before_impl: "bitwise",
            after_impl: "table",
            work_units: "1 multiply".into(),
            before_ns_per_op: 100.0,
            after_ns_per_op: 25.0,
        }];
        let doc = report("smoke", BenchSpec::smoke(), &paths).render();
        assert!(json_parses(&doc), "emitted report must parse:\n{doc}");
        assert!(doc.contains("\"speedup\": 4"));
    }

    #[test]
    fn json_checker_accepts_and_rejects() {
        assert!(json_parses("{}"));
        assert!(json_parses("[1, 2.5, -3e2, \"a\\\"b\", true, null]"));
        assert!(json_parses("{\"a\": {\"b\": []}}"));
        assert!(!json_parses(""));
        assert!(!json_parses("{"));
        assert!(!json_parses("{\"a\": 1,}"));
        assert!(!json_parses("[1 2]"));
        assert!(!json_parses("{} trailing"));
    }
}
