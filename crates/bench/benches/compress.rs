//! Deflate throughput: software (zlib-class) encoder vs the hardware-
//! model DSA compressor, plus the inflater.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ulp_compress::hwmodel::HwCompressor;
use ulp_compress::{corpus, deflate, inflate};

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("deflate");
    group.sample_size(15);
    for kind in [corpus::Kind::Text, corpus::Kind::Html] {
        let page = kind.generate(4096, 1);
        group.throughput(Throughput::Bytes(page.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("software", kind.label()),
            &page,
            |b, page| b.iter(|| deflate::compress(page)),
        );
        group.bench_with_input(
            BenchmarkId::new("hw_model", kind.label()),
            &page,
            |b, page| {
                b.iter(|| {
                    let mut hw = HwCompressor::new(Default::default());
                    hw.compress_page(page)
                })
            },
        );
    }
    group.finish();
}

fn bench_inflate(c: &mut Criterion) {
    let page = corpus::html(4096, 2);
    let compressed = deflate::compress(&page);
    let mut group = c.benchmark_group("inflate");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(page.len() as u64));
    group.bench_function("html_4k", |b| {
        b.iter(|| inflate::decompress(&compressed).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_compress, bench_inflate);
criterion_main!(benches);
