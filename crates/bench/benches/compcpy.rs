//! End-to-end CompCpy: offload latency (wall-clock of the simulation, a
//! proxy for model complexity) and simulated cycle cost per offload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};

fn bench_compcpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("compcpy");
    group.sample_size(10);
    for &size in &[4096usize, 16384] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("tls_encrypt", size), &size, |b, &size| {
            let mut host = CompCpyHost::new(HostConfig::default());
            let msg = ulp_compress::corpus::text(size, 1);
            let key = [1u8; 16];
            let mut i = 0u64;
            b.iter(|| {
                let src = host.alloc_pages(size.div_ceil(4096));
                let dst = host.alloc_pages(size.div_ceil(4096));
                host.mem_mut().store(src, &msg, 0);
                i += 1;
                let iv = [i as u8; 12];
                let handle = host
                    .comp_cpy(dst, src, size, OffloadOp::TlsEncrypt { key, iv }, false, 0)
                    .expect("offload accepted");
                host.use_buffer(&handle)
            });
        });
    }
    group.bench_function("compress_page", |b| {
        let mut host = CompCpyHost::new(HostConfig::default());
        let page = ulp_compress::corpus::html(4096, 2);
        b.iter(|| {
            let src = host.alloc_pages(1);
            let dst = host.alloc_pages(1);
            host.mem_mut().store(src, &page, 0);
            let handle = host
                .comp_cpy(dst, src, page.len(), OffloadOp::Compress, true, 0)
                .expect("offload accepted");
            host.use_buffer(&handle)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_compcpy);
criterion_main!(benches);
