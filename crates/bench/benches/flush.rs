//! §IV-A flush-cost asymmetry: "flushing 4 KB data is 50 % faster when
//! the data is already in DRAM" — the property CompCpy relies on when it
//! flushes the source buffer (which, under the contention that triggers
//! offloading, is usually uncached).

use criterion::{criterion_group, criterion_main, Criterion};
use dram::PhysAddr;
use memsys::{MemConfig, MemSystem};

fn bench_flush(c: &mut Criterion) {
    let mut group = c.benchmark_group("flush_4k");
    group.sample_size(30);
    group.bench_function("cached_dirty", |b| {
        let mut m = MemSystem::new(MemConfig::default());
        let mut base = 0u64;
        b.iter(|| {
            base += 0x2000;
            let addr = PhysAddr(base & 0xFFF_F000);
            m.store(addr, &[1u8; 4096], 0); // populate dirty
            m.flush(addr, 4096)
        });
    });
    group.bench_function("already_in_dram", |b| {
        let mut m = MemSystem::new(MemConfig::default());
        let addr = PhysAddr(0x8000);
        m.store(addr, &[1u8; 4096], 0);
        m.flush(addr, 4096); // now only in DRAM
        b.iter(|| m.flush(addr, 4096));
    });
    group.finish();

    // Report the simulated-cycle asymmetry (the paper's actual claim).
    let mut m = MemSystem::new(MemConfig::default());
    let addr = PhysAddr(0x10000);
    m.store(addr, &[1u8; 4096], 0);
    let cached = m.flush(addr, 4096);
    let uncached = m.flush(addr, 4096);
    println!(
        "simulated flush(4KB): cached={} cycles, in-DRAM={} cycles ({}% faster)",
        cached.cycles,
        uncached.cycles,
        100 * (cached.cycles - uncached.cycles) / cached.cycles.max(1)
    );
}

criterion_group!(benches, bench_flush);
criterion_main!(benches);
