//! AES-GCM throughput: software sequential baseline vs the out-of-order
//! cacheline engine that models the TLS DSA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ulp_crypto::gcm::{AesGcm, Direction, OooGcm};

fn bench_gcm(c: &mut Criterion) {
    let key = [7u8; 16];
    let iv = [3u8; 12];
    let mut group = c.benchmark_group("aes_gcm");
    group.sample_size(20);
    for &size in &[4096usize, 16384] {
        let msg = ulp_compress::corpus::text(size, 1);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("software_seal", size), &msg, |b, msg| {
            let gcm = AesGcm::new_128(&key);
            b.iter(|| gcm.seal(&iv, b"", msg));
        });
        group.bench_with_input(
            BenchmarkId::new("dsa_ooo_cachelines", size),
            &msg,
            |b, msg| {
                b.iter(|| {
                    let mut dsa = OooGcm::new(
                        AesGcm::new_128(&key),
                        iv,
                        b"",
                        msg.len(),
                        Direction::Encrypt,
                    );
                    for start in (0..msg.len()).step_by(64) {
                        let end = (start + 64).min(msg.len());
                        let _ = dsa.process_cacheline(start, &msg[start..end]);
                    }
                    dsa.tag()
                });
            },
        );
    }
    group.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let data = ulp_compress::corpus::text(16384, 2);
    let mut group = c.benchmark_group("sha256");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("digest_16k", |b| {
        b.iter(|| ulp_crypto::sha256::Sha256::digest(&data))
    });
    group.finish();
}

criterion_group!(benches, bench_gcm, bench_sha256);
criterion_main!(benches);
