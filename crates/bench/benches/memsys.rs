//! Substrate micro-benchmarks: cache accesses, DRAM controller
//! throughput, cuckoo translation-table operations.

use cache::{CacheConfig, Llc};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dram::{DramSystem, MemorySystemConfig, PhysAddr};
use smartdimm::xlat::{Mapping, TranslationTable};

fn bench_llc(c: &mut Criterion) {
    let mut group = c.benchmark_group("llc");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1024));
    group.bench_function("hit_stream_1k_lines", |b| {
        let mut llc = Llc::new(CacheConfig::mb(2, 16));
        for i in 0..1024u64 {
            llc.write_line(PhysAddr(i * 64), 0, [0u8; 64]);
        }
        b.iter(|| {
            for i in 0..1024u64 {
                let (_, ev) = llc.read_line(PhysAddr(i * 64), 0, |_| [0u8; 64]);
                assert!(ev.hit);
            }
        });
    });
    group.bench_function("miss_stream_1k_lines", |b| {
        let mut llc = Llc::new(CacheConfig::kb(64, 8));
        let mut base = 0u64;
        b.iter(|| {
            base += 1 << 20;
            for i in 0..1024u64 {
                let _ = llc.read_line(PhysAddr(base + i * 64), 0, |_| [0u8; 64]);
            }
        });
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(1024 * 64));
    group.bench_function("sequential_read_1k_lines", |b| {
        let mut sys = DramSystem::new(MemorySystemConfig::default());
        b.iter(|| {
            for i in 0..1024u64 {
                let _ = sys.read64(PhysAddr(i * 64));
                sys.advance(4);
            }
        });
    });
    group.finish();
}

fn bench_xlat(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation_table");
    group.sample_size(20);
    group.throughput(Throughput::Elements(4096));
    group.bench_function("insert_lookup_4k_pages", |b| {
        b.iter(|| {
            let mut t = TranslationTable::new(12288, 8);
            for page in 0..4096u64 {
                t.insert(
                    page * 31,
                    Mapping::Source {
                        offload: page,
                        msg_offset: 0,
                    },
                )
                .unwrap();
            }
            for page in 0..4096u64 {
                assert!(t.lookup(page * 31).is_some());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_llc, bench_dram, bench_xlat);
criterion_main!(benches);
