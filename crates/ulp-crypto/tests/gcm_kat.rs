//! NIST CAVP-style known-answer tests for AES-GCM.
//!
//! Vectors are the GCM specification test cases (McGrew–Viega, also the
//! seed vectors of the NIST CAVP `gcmEncryptExtIV` suites) for AES-128
//! and AES-256. Each vector is exercised three ways, mirroring the CAVP
//! encrypt and decrypt files:
//!
//! * **Encrypt**: `seal` must produce the expected ciphertext and tag.
//! * **Decrypt**: `open` on the expected ciphertext + tag must return
//!   the plaintext.
//! * **Tag failure**: `open` with any corrupted tag byte must return
//!   `TagMismatch` and release no plaintext.

use ulp_crypto::gcm::AesGcm;
use ulp_crypto::CryptoError;

struct Kat {
    name: &'static str,
    key: &'static str,
    iv: &'static str,
    aad: &'static str,
    pt: &'static str,
    ct: &'static str,
    tag: &'static str,
}

const KATS: &[Kat] = &[
    // AES-128, GCM spec test case 1: empty plaintext, empty AAD.
    Kat {
        name: "aes128-tc1",
        key: "00000000000000000000000000000000",
        iv: "000000000000000000000000",
        aad: "",
        pt: "",
        ct: "",
        tag: "58e2fccefa7e3061367f1d57a4e7455a",
    },
    // AES-128, test case 2: one zero block.
    Kat {
        name: "aes128-tc2",
        key: "00000000000000000000000000000000",
        iv: "000000000000000000000000",
        aad: "",
        pt: "00000000000000000000000000000000",
        ct: "0388dace60b6a392f328c2b971b2fe78",
        tag: "ab6e47d42cec13bdf53a67b21257bddf",
    },
    // AES-128, test case 3: four blocks of plaintext.
    Kat {
        name: "aes128-tc3",
        key: "feffe9928665731c6d6a8f9467308308",
        iv: "cafebabefacedbaddecaf888",
        aad: "",
        pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
              1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        ct: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
        tag: "4d5c2af327cd64a62cf35abd2ba6fab4",
    },
    // AES-128, test case 4: partial final block + 20-byte AAD.
    Kat {
        name: "aes128-tc4",
        key: "feffe9928665731c6d6a8f9467308308",
        iv: "cafebabefacedbaddecaf888",
        aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
        pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
              1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        ct: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
        tag: "5bc94fbc3221a5db94fae95ae7121a47",
    },
    // AES-256, test case 13: empty plaintext, empty AAD.
    Kat {
        name: "aes256-tc13",
        key: "0000000000000000000000000000000000000000000000000000000000000000",
        iv: "000000000000000000000000",
        aad: "",
        pt: "",
        ct: "",
        tag: "530f8afbc74536b9a963b4f1c4cb738b",
    },
    // AES-256, test case 14: one zero block.
    Kat {
        name: "aes256-tc14",
        key: "0000000000000000000000000000000000000000000000000000000000000000",
        iv: "000000000000000000000000",
        aad: "",
        pt: "00000000000000000000000000000000",
        ct: "cea7403d4d606b6e074ec5d3baf39d18",
        tag: "d0d1c8a799996bf0265b98b5d48ab919",
    },
    // AES-256, test case 15: four blocks of plaintext.
    Kat {
        name: "aes256-tc15",
        key: "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
        iv: "cafebabefacedbaddecaf888",
        aad: "",
        pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
              1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        ct: "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
             8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad",
        tag: "b094dac5d93471bdec1a502270e3cc6c",
    },
    // AES-256, test case 16: partial final block + 20-byte AAD.
    Kat {
        name: "aes256-tc16",
        key: "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
        iv: "cafebabefacedbaddecaf888",
        aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
        pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
              1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        ct: "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
             8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662",
        tag: "76fc6ece0f4e1768cddf8853bb2d551b",
    },
];

fn hex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

fn cipher_for(key: &[u8]) -> AesGcm {
    match key.len() {
        16 => AesGcm::new_128(key.try_into().unwrap()),
        32 => AesGcm::new_256(key.try_into().unwrap()),
        n => panic!("unsupported key length {n}"),
    }
}

#[test]
fn cavp_encrypt_vectors() {
    for kat in KATS {
        let gcm = cipher_for(&hex(kat.key));
        let iv: [u8; 12] = hex(kat.iv).try_into().unwrap();
        let (ct, tag) = gcm.seal(&iv, &hex(kat.aad), &hex(kat.pt));
        assert_eq!(ct, hex(kat.ct), "{}: ciphertext", kat.name);
        assert_eq!(tag.to_vec(), hex(kat.tag), "{}: tag", kat.name);
    }
}

#[test]
fn cavp_decrypt_vectors() {
    for kat in KATS {
        let gcm = cipher_for(&hex(kat.key));
        let iv: [u8; 12] = hex(kat.iv).try_into().unwrap();
        let tag: [u8; 16] = hex(kat.tag).try_into().unwrap();
        let pt = gcm
            .open(&iv, &hex(kat.aad), &hex(kat.ct), &tag)
            .unwrap_or_else(|e| panic!("{}: decrypt rejected valid tag: {e:?}", kat.name));
        assert_eq!(pt, hex(kat.pt), "{}: plaintext", kat.name);
    }
}

#[test]
fn cavp_tag_failure_vectors() {
    for kat in KATS {
        let gcm = cipher_for(&hex(kat.key));
        let iv: [u8; 12] = hex(kat.iv).try_into().unwrap();
        let tag: [u8; 16] = hex(kat.tag).try_into().unwrap();
        for byte in 0..16 {
            let mut bad = tag;
            bad[byte] ^= 0x01;
            assert_eq!(
                gcm.open(&iv, &hex(kat.aad), &hex(kat.ct), &bad),
                Err(CryptoError::TagMismatch),
                "{}: corrupted tag byte {byte} accepted",
                kat.name
            );
        }
    }
}

#[test]
fn cavp_aad_binding() {
    // Tampering with the AAD must invalidate the tag even though the
    // AAD is never encrypted.
    for kat in KATS.iter().filter(|k| !k.aad.is_empty()) {
        let gcm = cipher_for(&hex(kat.key));
        let iv: [u8; 12] = hex(kat.iv).try_into().unwrap();
        let tag: [u8; 16] = hex(kat.tag).try_into().unwrap();
        let mut aad = hex(kat.aad);
        aad[0] ^= 0xFF;
        assert_eq!(
            gcm.open(&iv, &aad, &hex(kat.ct), &tag),
            Err(CryptoError::TagMismatch),
            "{}: modified AAD accepted",
            kat.name
        );
    }
}
