//! GHASH — the universal hash of GCM — in both the textbook sequential
//! form and the out-of-order form used by SmartDIMM's TLS DSA.
//!
//! Sequentially, GHASH chains `Y_i = (Y_{i-1} ⊕ X_i) · H`. That chain
//! would force the DIMM-side accelerator to see cachelines in order, but
//! the memory controller reorders CAS commands. §V-A of the paper solves
//! this by *precomputing powers of H*: since
//!
//! ```text
//! GHASH(X_1 .. X_n) = Σ_{i=1..n}  X_i · H^(n-i+1)
//! ```
//!
//! each 16-byte block's contribution depends only on its own index and the
//! total block count, so blocks may be absorbed in any order. The DSA
//! precomputes H^i "in strides of 4" (four blocks per 64-byte cacheline);
//! [`HPowers`] models that table, and [`OooGhash`] the order-independent
//! accumulator.

use crate::gf128::{Gf128, GfMulTable};

/// Precomputed powers of the hash subkey `H` (H^1 .. H^max).
///
/// In hardware this table lives in Config Memory and is filled by the GF
/// multiplier as soon as the source buffer is registered (§V-A). One
/// 4 KB page plus the length block needs 258 powers; the table size is a
/// constructor parameter so ablations can vary it.
///
/// # Example
///
/// ```
/// use ulp_crypto::gf128::Gf128;
/// use ulp_crypto::ghash::HPowers;
/// let h = Gf128::from_bytes(&[7u8; 16]);
/// let powers = HPowers::new(h, 8);
/// assert_eq!(powers.get(1), h);
/// assert_eq!(powers.get(3), h * h * h);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HPowers {
    powers: Vec<Gf128>, // powers[i] = H^(i+1)
}

impl HPowers {
    /// Precomputes `H^1 ..= H^max`.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn new(h: Gf128, max: usize) -> HPowers {
        assert!(max > 0, "need at least H^1");
        // Every step multiplies by the same H, so one per-key table
        // amortizes across the whole stride — the same trick the Config
        // Memory fill engine uses while the source buffer registers.
        let table = GfMulTable::new(h);
        let mut powers = Vec::with_capacity(max);
        let mut acc = h;
        for _ in 0..max {
            powers.push(acc);
            acc = table.mul(acc);
        }
        HPowers { powers }
    }

    /// Returns `H^exp` (1-indexed).
    ///
    /// # Panics
    ///
    /// Panics if `exp` is zero or beyond the precomputed range.
    pub fn get(&self, exp: usize) -> Gf128 {
        assert!(exp >= 1, "H^0 is not stored");
        self.powers[exp - 1]
    }

    /// Largest precomputed exponent.
    pub fn max_exp(&self) -> usize {
        self.powers.len()
    }
}

/// Textbook sequential GHASH.
///
/// Used by the software AES-GCM baseline (the "CPU with AES-NI"
/// configuration) and as the oracle the out-of-order DSA form is tested
/// against.
#[derive(Debug, Clone)]
pub struct Ghash {
    h: GfMulTable,
    y: Gf128,
}

impl Ghash {
    /// Creates a GHASH instance keyed by `h`, building the per-key 4-bit
    /// multiplication table once up front.
    pub fn new(h: Gf128) -> Ghash {
        Ghash {
            h: GfMulTable::new(h),
            y: Gf128::ZERO,
        }
    }

    /// Absorbs one 16-byte block.
    pub fn update_block(&mut self, block: &[u8; 16]) {
        self.y = self.h.mul(self.y + Gf128::from_bytes(block));
    }

    /// Absorbs `data`, zero-padding the final partial block (as GCM does
    /// between the AAD and ciphertext sections).
    pub fn update_padded(&mut self, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.update_block(&block);
        }
    }

    /// Returns the current hash value.
    pub fn finalize(&self) -> [u8; 16] {
        self.y.to_bytes()
    }
}

/// Order-independent GHASH over a message with a known total block count.
///
/// This is the DSA-side formulation: every block contributes
/// `X_i · H^(n-i+1)` where `n` is the total number of blocks (including
/// the final length block), and contributions are XOR-accumulated in any
/// order. The result equals sequential GHASH once every block has been
/// absorbed exactly once.
///
/// # Example
///
/// ```
/// use ulp_crypto::gf128::Gf128;
/// use ulp_crypto::ghash::{Ghash, HPowers, OooGhash};
///
/// let h = Gf128::from_bytes(&[0x42; 16]);
/// let blocks: Vec<[u8; 16]> = (0..4u8).map(|i| [i; 16]).collect();
///
/// let mut seq = Ghash::new(h);
/// for b in &blocks { seq.update_block(b); }
///
/// let powers = HPowers::new(h, blocks.len());
/// let mut ooo = OooGhash::new(blocks.len());
/// // Absorb in reverse order — the result must not change.
/// for (i, b) in blocks.iter().enumerate().rev() {
///     ooo.absorb(&powers, i, b);
/// }
/// assert_eq!(ooo.finalize(), seq.finalize());
/// ```
#[derive(Debug, Clone)]
pub struct OooGhash {
    total_blocks: usize,
    acc: Gf128,
    absorbed: u64,
}

impl OooGhash {
    /// Creates an accumulator for a message of exactly `total_blocks`
    /// 16-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if `total_blocks` is zero.
    pub fn new(total_blocks: usize) -> OooGhash {
        assert!(total_blocks > 0, "message must have at least one block");
        OooGhash {
            total_blocks,
            acc: Gf128::ZERO,
            absorbed: 0,
        }
    }

    /// Absorbs block `index` (0-based position within the message).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the required power of `H` was
    /// not precomputed.
    pub fn absorb(&mut self, powers: &HPowers, index: usize, block: &[u8; 16]) {
        assert!(index < self.total_blocks, "block index out of range");
        let exp = self.total_blocks - index; // n - i + 1 with 1-based i
        self.acc = self.acc + Gf128::from_bytes(block) * powers.get(exp);
        self.absorbed += 1;
    }

    /// Number of blocks absorbed so far (duplicates are not detected; the
    /// caller — the DSA — guarantees each cacheline is processed once).
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Whether every block of the message has been absorbed.
    pub fn is_complete(&self) -> bool {
        self.absorbed == self.total_blocks as u64
    }

    /// Returns the accumulated hash value.
    pub fn finalize(&self) -> [u8; 16] {
        self.acc.to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn h_fixture() -> Gf128 {
        Gf128::from_bytes(&[
            0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34,
            0x2b, 0x2e,
        ])
    }

    #[test]
    fn hpowers_first_is_h() {
        let h = h_fixture();
        let p = HPowers::new(h, 4);
        assert_eq!(p.get(1), h);
        assert_eq!(p.get(2), h * h);
        assert_eq!(p.max_exp(), 4);
    }

    #[test]
    #[should_panic(expected = "H^0")]
    fn hpowers_rejects_zero_exp() {
        HPowers::new(h_fixture(), 2).get(0);
    }

    #[test]
    fn sequential_ghash_zero_message() {
        let mut g = Ghash::new(h_fixture());
        g.update_block(&[0u8; 16]);
        // (0 + 0) * H = 0
        assert_eq!(g.finalize(), [0u8; 16]);
    }

    #[test]
    fn update_padded_pads_with_zeros() {
        let h = h_fixture();
        let mut a = Ghash::new(h);
        a.update_padded(&[1, 2, 3]);
        let mut b = Ghash::new(h);
        let mut block = [0u8; 16];
        block[..3].copy_from_slice(&[1, 2, 3]);
        b.update_block(&block);
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn ooo_matches_sequential_any_order() {
        let h = h_fixture();
        let blocks: Vec<[u8; 16]> = (0..17u8).map(|i| [i.wrapping_mul(37); 16]).collect();
        let mut seq = Ghash::new(h);
        for b in &blocks {
            seq.update_block(b);
        }
        let powers = HPowers::new(h, blocks.len());

        // A few deterministic permutations.
        let orders: Vec<Vec<usize>> = vec![
            (0..blocks.len()).collect(),
            (0..blocks.len()).rev().collect(),
            (0..blocks.len()).map(|i| (i * 7) % blocks.len()).collect(),
        ];
        for order in orders {
            let mut ooo = OooGhash::new(blocks.len());
            for &i in &order {
                ooo.absorb(&powers, i, &blocks[i]);
            }
            assert!(ooo.is_complete());
            assert_eq!(ooo.finalize(), seq.finalize());
        }
    }

    #[test]
    fn ooo_tracks_completion() {
        let h = h_fixture();
        let powers = HPowers::new(h, 2);
        let mut ooo = OooGhash::new(2);
        assert!(!ooo.is_complete());
        ooo.absorb(&powers, 1, &[1; 16]);
        assert_eq!(ooo.absorbed(), 1);
        assert!(!ooo.is_complete());
        ooo.absorb(&powers, 0, &[2; 16]);
        assert!(ooo.is_complete());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ooo_rejects_bad_index() {
        let powers = HPowers::new(h_fixture(), 4);
        OooGhash::new(2).absorb(&powers, 2, &[0; 16]);
    }

    proptest! {
        #[test]
        fn prop_ooo_equals_sequential(
            hbytes: [u8; 16],
            data in proptest::collection::vec(any::<u8>(), 16..512),
            seed: u64,
        ) {
            let h = Gf128::from_bytes(&hbytes);
            let blocks: Vec<[u8; 16]> = data
                .chunks(16)
                .map(|c| {
                    let mut b = [0u8; 16];
                    b[..c.len()].copy_from_slice(c);
                    b
                })
                .collect();
            let mut seq = Ghash::new(h);
            for b in &blocks { seq.update_block(b); }

            let powers = HPowers::new(h, blocks.len());
            let mut order: Vec<usize> = (0..blocks.len()).collect();
            let mut rng = simkit::DetRng::new(seed);
            rng.shuffle(&mut order);

            let mut ooo = OooGhash::new(blocks.len());
            for &i in &order {
                ooo.absorb(&powers, i, &blocks[i]);
            }
            prop_assert_eq!(ooo.finalize(), seq.finalize());
        }
    }
}
