//! AES-GCM authenticated encryption (NIST SP 800-38D), in two forms:
//!
//! * [`AesGcm`] — the textbook sequential implementation, standing in for
//!   the CPU/OpenSSL baseline, and
//! * [`OooGcm`] — the out-of-order, cacheline-granular engine that models
//!   SmartDIMM's TLS DSA (§V-A): the CPU supplies the hash subkey `H` and
//!   the encrypted IV `EIV = E_K(J0)` through Config Memory, the engine
//!   precomputes powers of `H`, and 64-byte cachelines are then processed
//!   in *any* order as their rdCAS commands arrive at the buffer device.
//!
//! Only 96-bit IVs are supported — the TLS 1.2/1.3 AEAD nonce size, and
//! the only case where `J0` needs no GHASH (the paper's DSA relies on
//! this).

use crate::aes::Aes;
use crate::gf128::Gf128;
use crate::ghash::{Ghash, HPowers, OooGhash};
use crate::CryptoError;

/// GCM tag length in bytes (full 128-bit tags only).
pub const TAG_LEN: usize = 16;
/// GCM nonce length in bytes (96-bit IVs only).
pub const IV_LEN: usize = 12;
/// The cacheline granularity at which SmartDIMM's DSA processes data.
pub const CACHELINE: usize = 64;

fn j0(iv: &[u8; IV_LEN]) -> [u8; 16] {
    let mut block = [0u8; 16];
    block[..IV_LEN].copy_from_slice(iv);
    block[15] = 1;
    block
}

fn ctr_block(iv: &[u8; IV_LEN], counter: u32) -> [u8; 16] {
    let mut block = [0u8; 16];
    block[..IV_LEN].copy_from_slice(iv);
    block[12..].copy_from_slice(&counter.to_be_bytes());
    block
}

fn length_block(aad_bits: u64, ct_bits: u64) -> [u8; 16] {
    let mut block = [0u8; 16];
    block[..8].copy_from_slice(&aad_bits.to_be_bytes());
    block[8..].copy_from_slice(&ct_bits.to_be_bytes());
    block
}

/// Sequential AES-GCM, the software baseline.
///
/// # Example
///
/// ```
/// use ulp_crypto::gcm::AesGcm;
/// let gcm = AesGcm::new_128(&[1u8; 16]);
/// let iv = [2u8; 12];
/// let (ct, tag) = gcm.seal(&iv, b"header", b"payload");
/// assert_eq!(gcm.open(&iv, b"header", &ct, &tag).unwrap(), b"payload");
/// assert!(gcm.open(&iv, b"tampered", &ct, &tag).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AesGcm {
    aes: Aes,
    h: Gf128,
}

impl AesGcm {
    /// Creates a GCM instance from a 128-bit key.
    pub fn new_128(key: &[u8; 16]) -> AesGcm {
        AesGcm::from_aes(Aes::new_128(key))
    }

    /// Creates a GCM instance from a 256-bit key.
    pub fn new_256(key: &[u8; 32]) -> AesGcm {
        AesGcm::from_aes(Aes::new_256(key))
    }

    /// Wraps an existing AES key schedule.
    pub fn from_aes(aes: Aes) -> AesGcm {
        let h = Gf128::from_bytes(&aes.encrypt_block(&[0u8; 16]));
        AesGcm { aes, h }
    }

    /// The hash subkey `H = E_K(0^128)` — the value the CPU writes into
    /// SmartDIMM's Config Memory at registration time.
    pub fn hash_subkey(&self) -> Gf128 {
        self.h
    }

    /// `EIV = E_K(J0)` for the given IV — the other value shipped to the
    /// DSA; the final tag is `GHASH ⊕ EIV`.
    pub fn encrypted_iv(&self, iv: &[u8; IV_LEN]) -> [u8; 16] {
        self.aes.encrypt_block(&j0(iv))
    }

    /// Borrows the underlying AES key schedule.
    pub fn aes(&self) -> &Aes {
        &self.aes
    }

    /// Generates the CTR keystream for plaintext block `index` (0-based).
    ///
    /// Exposed so callers (the DSA model, incremental encryption) can
    /// produce keystream for arbitrary byte ranges — the paper's
    /// Observation 4.
    pub fn keystream_block(&self, iv: &[u8; IV_LEN], index: u32) -> [u8; 16] {
        // Data counters start at 2: J0 has counter 1.
        self.aes.encrypt_block(&ctr_block(iv, index + 2))
    }

    /// XORs `data` (located at byte `offset` within the message) with the
    /// keystream in place. Works for encryption and decryption alike.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not 16-byte aligned (partial-block starts are
    /// not needed anywhere in the stack and would complicate the DSA).
    pub fn xor_keystream(&self, iv: &[u8; IV_LEN], offset: usize, data: &mut [u8]) {
        assert!(offset.is_multiple_of(16), "offset must be block aligned");
        let first_block = (offset / 16) as u32;
        for (block_index, chunk) in (first_block..).zip(data.chunks_mut(16)) {
            let ks = self.keystream_block(iv, block_index);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// Encrypts `plaintext` with associated data `aad`, returning the
    /// ciphertext and authentication tag.
    pub fn seal(
        &self,
        iv: &[u8; IV_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> (Vec<u8>, [u8; TAG_LEN]) {
        let mut ct = plaintext.to_vec();
        self.xor_keystream(iv, 0, &mut ct);
        let tag = self.compute_tag(iv, aad, &ct);
        (ct, tag)
    }

    /// Decrypts and authenticates; returns the plaintext.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::TagMismatch`] if the tag does not verify;
    /// no plaintext is released in that case.
    pub fn open(
        &self,
        iv: &[u8; IV_LEN],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<Vec<u8>, CryptoError> {
        let expect = self.compute_tag(iv, aad, ciphertext);
        // Constant-time-ish comparison (branch-free accumulate).
        let diff = expect
            .iter()
            .zip(tag.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
        if diff != 0 {
            return Err(CryptoError::TagMismatch);
        }
        let mut pt = ciphertext.to_vec();
        self.xor_keystream(iv, 0, &mut pt);
        Ok(pt)
    }

    fn compute_tag(&self, iv: &[u8; IV_LEN], aad: &[u8], ct: &[u8]) -> [u8; TAG_LEN] {
        let mut ghash = Ghash::new(self.h);
        ghash.update_padded(aad);
        ghash.update_padded(ct);
        ghash.update_block(&length_block(aad.len() as u64 * 8, ct.len() as u64 * 8));
        let mut tag = ghash.finalize();
        let eiv = self.encrypted_iv(iv);
        for (t, e) in tag.iter_mut().zip(eiv.iter()) {
            *t ^= e;
        }
        tag
    }
}

/// Whether the DSA is encrypting (TX path) or decrypting (RX path).
///
/// GHASH is always computed over the *ciphertext*, so the engine must know
/// whether its input cachelines are plaintext or ciphertext.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Input cachelines are plaintext; output is ciphertext.
    Encrypt,
    /// Input cachelines are ciphertext; output is plaintext.
    Decrypt,
}

/// Out-of-order, cacheline-granular AES-GCM — the TLS DSA model.
///
/// One `OooGcm` instance corresponds to one registered source-buffer page
/// span: it is created when the CPU writes the offload context (round
/// keys, IV, `EIV`, message length, AAD) into Config Memory, precomputes
/// the powers of `H` (the paper's GF multiplier running "in strides of
/// 4"), and then accepts 64-byte cachelines in arbitrary order as rdCAS
/// commands deliver them.
///
/// # Example
///
/// ```
/// use ulp_crypto::gcm::{AesGcm, Direction, OooGcm};
///
/// let key = [9u8; 16];
/// let iv = [3u8; 12];
/// let msg = vec![0xAB; 200];
///
/// // Reference: sequential seal.
/// let gcm = AesGcm::new_128(&key);
/// let (want_ct, want_tag) = gcm.seal(&iv, b"", &msg);
///
/// // DSA: process the two cachelines out of order.
/// let mut dsa = OooGcm::new(AesGcm::new_128(&key), iv, b"", msg.len(), Direction::Encrypt);
/// let mut got = vec![0u8; 200];
/// for start in [192usize, 64, 0, 128] {
///     let end = (start + 64).min(200);
///     let out = dsa.process_cacheline(start, &msg[start..end]);
///     got[start..end].copy_from_slice(&out);
/// }
/// assert!(dsa.is_complete());
/// assert_eq!(got, want_ct);
/// assert_eq!(dsa.tag(), want_tag);
/// ```
#[derive(Debug, Clone)]
pub struct OooGcm {
    gcm: AesGcm,
    iv: [u8; IV_LEN],
    eiv: [u8; 16],
    msg_len: usize,
    aad_blocks: usize,
    ghash: OooGhash,
    powers: HPowers,
    direction: Direction,
    bytes_processed: usize,
    absorbed_metadata: bool,
}

impl OooGcm {
    /// Registers a new offload: fixes the IV, AAD and total message
    /// length, precomputes powers of `H` and absorbs the AAD and length
    /// blocks (both known at registration time).
    ///
    /// # Panics
    ///
    /// Panics if `msg_len` is zero.
    pub fn new(
        gcm: AesGcm,
        iv: [u8; IV_LEN],
        aad: &[u8],
        msg_len: usize,
        direction: Direction,
    ) -> OooGcm {
        OooGcm::with_metadata_policy(gcm, iv, aad, msg_len, direction, true)
    }

    /// Like [`OooGcm::new`], but with control over whether this engine
    /// absorbs the AAD and length blocks into its GHASH accumulator.
    ///
    /// Under fine-grain memory-channel interleaving (§V-D), one engine
    /// runs per SmartDIMM and each sees only its channel's cachelines;
    /// because the out-of-order GHASH is an XOR of per-block
    /// contributions, partial accumulators from all channels combine by
    /// XOR — but the AAD/length metadata must then be contributed exactly
    /// once, by the host (see [`metadata_contribution`]). Pass
    /// `absorb_metadata = false` for every per-channel engine.
    pub fn with_metadata_policy(
        gcm: AesGcm,
        iv: [u8; IV_LEN],
        aad: &[u8],
        msg_len: usize,
        direction: Direction,
        absorb_metadata: bool,
    ) -> OooGcm {
        assert!(msg_len > 0, "empty offloads are handled on the CPU");
        let aad_blocks = aad.len().div_ceil(16);
        let ct_blocks = msg_len.div_ceil(16);
        let total = aad_blocks + ct_blocks + 1;
        let powers = HPowers::new(gcm.hash_subkey(), total);
        let mut ghash = OooGhash::new(total);
        if absorb_metadata {
            for (i, chunk) in aad.chunks(16).enumerate() {
                let mut block = [0u8; 16];
                block[..chunk.len()].copy_from_slice(chunk);
                ghash.absorb(&powers, i, &block);
            }
            let len_block = length_block(aad.len() as u64 * 8, msg_len as u64 * 8);
            ghash.absorb(&powers, total - 1, &len_block);
        }
        let eiv = gcm.encrypted_iv(&iv);
        OooGcm {
            gcm,
            iv,
            eiv,
            msg_len,
            aad_blocks,
            ghash,
            powers,
            direction,
            bytes_processed: 0,
            absorbed_metadata: absorb_metadata,
        }
    }

    /// Processes one cacheline of input located at message byte `offset`,
    /// returning the transformed bytes.
    ///
    /// Cachelines may arrive in any order; each must be processed exactly
    /// once (the buffer-device arbiter guarantees this in hardware).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not 64-byte aligned, `input` exceeds 64
    /// bytes, or the cacheline does not end exactly at the message end
    /// when shorter than 64 bytes.
    pub fn process_cacheline(&mut self, offset: usize, input: &[u8]) -> Vec<u8> {
        assert!(
            offset.is_multiple_of(CACHELINE),
            "cacheline offset must be aligned"
        );
        assert!(input.len() <= CACHELINE, "input exceeds a cacheline");
        assert!(
            offset + input.len() == self.msg_len || input.len() == CACHELINE,
            "short cacheline allowed only at message tail"
        );
        let mut out = input.to_vec();
        self.gcm.xor_keystream(&self.iv, offset, &mut out);
        let ct: &[u8] = match self.direction {
            Direction::Encrypt => &out,
            Direction::Decrypt => input,
        };
        for (k, chunk) in ct.chunks(16).enumerate() {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            let ct_block_index = offset / 16 + k;
            self.ghash
                .absorb(&self.powers, self.aad_blocks + ct_block_index, &block);
        }
        self.bytes_processed += input.len();
        out
    }

    /// Whether every cacheline of the message has been processed.
    pub fn is_complete(&self) -> bool {
        self.bytes_processed == self.msg_len && self.ghash.is_complete()
    }

    /// Bytes processed so far.
    pub fn bytes_processed(&self) -> usize {
        self.bytes_processed
    }

    /// Total message length fixed at registration.
    pub fn msg_len(&self) -> usize {
        self.msg_len
    }

    /// The authentication tag: `GHASH ⊕ EIV`.
    ///
    /// Meaningful only once [`OooGcm::is_complete`] returns true — in
    /// hardware the tag lands in the TLS record trailer after the last
    /// cacheline is processed.
    ///
    /// # Panics
    ///
    /// Panics if this engine was created with `absorb_metadata = false`:
    /// its accumulator is a partial that must be combined host-side.
    pub fn tag(&self) -> [u8; TAG_LEN] {
        assert!(
            self.absorbed_metadata,
            "partial engines have no standalone tag; combine partial_ghash() host-side"
        );
        let mut tag = self.ghash.finalize();
        for (t, e) in tag.iter_mut().zip(self.eiv.iter()) {
            *t ^= e;
        }
        tag
    }

    /// The raw GHASH accumulator (no EIV): the per-channel partial that
    /// the host XOR-combines under channel interleaving.
    pub fn partial_ghash(&self) -> [u8; 16] {
        self.ghash.finalize()
    }
}

/// The GHASH contribution of the AAD and length blocks for a message of
/// `msg_len` bytes — the piece the host adds exactly once when combining
/// per-channel partial accumulators (§V-D).
pub fn metadata_contribution(gcm: &AesGcm, aad: &[u8], msg_len: usize) -> [u8; 16] {
    assert!(msg_len > 0);
    let aad_blocks = aad.len().div_ceil(16);
    let total = aad_blocks + msg_len.div_ceil(16) + 1;
    let powers = HPowers::new(gcm.hash_subkey(), total);
    let mut ghash = OooGhash::new(total);
    for (i, chunk) in aad.chunks(16).enumerate() {
        let mut block = [0u8; 16];
        block[..chunk.len()].copy_from_slice(chunk);
        ghash.absorb(&powers, i, &block);
    }
    let len_block = length_block(aad.len() as u64 * 8, msg_len as u64 * 8);
    ghash.absorb(&powers, total - 1, &len_block);
    ghash.finalize()
}

/// XOR-combines per-channel partial GHASH accumulators with the metadata
/// contribution and `EIV` into the final tag.
pub fn combine_partial_tags(
    gcm: &AesGcm,
    iv: &[u8; IV_LEN],
    aad: &[u8],
    msg_len: usize,
    partials: &[[u8; 16]],
) -> [u8; TAG_LEN] {
    let mut acc = metadata_contribution(gcm, aad, msg_len);
    for p in partials {
        for (a, b) in acc.iter_mut().zip(p.iter()) {
            *a ^= b;
        }
    }
    let eiv = gcm.encrypted_iv(iv);
    for (a, e) in acc.iter_mut().zip(eiv.iter()) {
        *a ^= e;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// McGrew–Viega test case 1: empty plaintext, zero key.
    #[test]
    fn gcm_test_case_1() {
        let gcm = AesGcm::new_128(&[0u8; 16]);
        let iv = [0u8; 12];
        let (ct, tag) = gcm.seal(&iv, b"", b"");
        assert!(ct.is_empty());
        assert_eq!(tag.to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    /// McGrew–Viega test case 2: one zero block.
    #[test]
    fn gcm_test_case_2() {
        let gcm = AesGcm::new_128(&[0u8; 16]);
        let iv = [0u8; 12];
        let (ct, tag) = gcm.seal(&iv, b"", &[0u8; 16]);
        assert_eq!(ct, hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    /// McGrew–Viega test case 3: 64-byte plaintext.
    #[test]
    fn gcm_test_case_3() {
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let iv: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let gcm = AesGcm::new_128(&key);
        let (ct, tag) = gcm.seal(&iv, b"", &pt);
        assert_eq!(
            ct,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            )
        );
        assert_eq!(tag.to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
    }

    /// McGrew–Viega test case 4: partial final block + AAD.
    #[test]
    fn gcm_test_case_4() {
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let iv: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let gcm = AesGcm::new_128(&key);
        let (ct, tag) = gcm.seal(&iv, &aad, &pt);
        assert_eq!(
            ct,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            )
        );
        assert_eq!(tag.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
        // Decryption round-trips and rejects tampering.
        assert_eq!(gcm.open(&iv, &aad, &ct, &tag).unwrap(), pt);
        let mut bad = tag;
        bad[0] ^= 1;
        assert_eq!(
            gcm.open(&iv, &aad, &ct, &bad),
            Err(CryptoError::TagMismatch)
        );
    }

    #[test]
    fn open_rejects_modified_ciphertext() {
        let gcm = AesGcm::new_128(&[5u8; 16]);
        let iv = [6u8; 12];
        let (mut ct, tag) = gcm.seal(&iv, b"aad", b"some plaintext bytes");
        ct[3] ^= 0x80;
        assert_eq!(
            gcm.open(&iv, b"aad", &ct, &tag),
            Err(CryptoError::TagMismatch)
        );
    }

    #[test]
    fn keystream_block_matches_seal() {
        // Sealing 16 zero bytes yields exactly keystream block 0.
        let gcm = AesGcm::new_128(&[7u8; 16]);
        let iv = [8u8; 12];
        let (ct, _) = gcm.seal(&iv, b"", &[0u8; 16]);
        assert_eq!(ct, gcm.keystream_block(&iv, 0).to_vec());
    }

    #[test]
    fn incremental_range_encryption_matches_full() {
        // Observation 4: encrypting arbitrary ranges must compose.
        let gcm = AesGcm::new_128(&[9u8; 16]);
        let iv = [1u8; 12];
        let msg: Vec<u8> = (0..160u32).map(|i| (i * 7) as u8).collect();
        let (want, _) = gcm.seal(&iv, b"", &msg);
        let mut got = msg.clone();
        // Encrypt in three disjoint, unordered ranges (block aligned).
        for (start, end) in [(96usize, 160usize), (0, 32), (32, 96)] {
            let mut chunk = got[start..end].to_vec();
            gcm.xor_keystream(&iv, start, &mut chunk);
            got[start..end].copy_from_slice(&chunk);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn ooo_gcm_decrypt_direction() {
        let key = [4u8; 16];
        let iv = [2u8; 12];
        let msg = vec![0x5A; 130];
        let gcm = AesGcm::new_128(&key);
        let (ct, tag) = gcm.seal(&iv, b"hdr", &msg);

        let mut dsa = OooGcm::new(
            AesGcm::new_128(&key),
            iv,
            b"hdr",
            ct.len(),
            Direction::Decrypt,
        );
        let mut pt = vec![0u8; ct.len()];
        for start in [64usize, 0, 128] {
            let end = (start + 64).min(ct.len());
            let out = dsa.process_cacheline(start, &ct[start..end]);
            pt[start..end].copy_from_slice(&out);
        }
        assert!(dsa.is_complete());
        assert_eq!(pt, msg);
        assert_eq!(dsa.tag(), tag);
    }

    #[test]
    fn ooo_gcm_progress_tracking() {
        let dsa = OooGcm::new(
            AesGcm::new_128(&[0u8; 16]),
            [0u8; 12],
            b"",
            128,
            Direction::Encrypt,
        );
        assert_eq!(dsa.msg_len(), 128);
        assert_eq!(dsa.bytes_processed(), 0);
        assert!(!dsa.is_complete());
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn ooo_gcm_rejects_unaligned_offset() {
        let mut dsa = OooGcm::new(
            AesGcm::new_128(&[0u8; 16]),
            [0u8; 12],
            b"",
            128,
            Direction::Encrypt,
        );
        dsa.process_cacheline(32, &[0u8; 64]);
    }

    proptest! {
        #[test]
        fn prop_seal_open_roundtrip(
            key: [u8; 16],
            iv: [u8; 12],
            aad in proptest::collection::vec(any::<u8>(), 0..48),
            pt in proptest::collection::vec(any::<u8>(), 0..300),
        ) {
            let gcm = AesGcm::new_128(&key);
            let (ct, tag) = gcm.seal(&iv, &aad, &pt);
            prop_assert_eq!(ct.len(), pt.len());
            prop_assert_eq!(gcm.open(&iv, &aad, &ct, &tag).unwrap(), pt);
        }

        #[test]
        fn prop_ooo_matches_sequential(
            key: [u8; 16],
            iv: [u8; 12],
            aad in proptest::collection::vec(any::<u8>(), 0..32),
            pt in proptest::collection::vec(any::<u8>(), 1..600),
            seed: u64,
        ) {
            let gcm = AesGcm::new_128(&key);
            let (want_ct, want_tag) = gcm.seal(&iv, &aad, &pt);

            let mut dsa = OooGcm::new(
                AesGcm::new_128(&key), iv, &aad, pt.len(), Direction::Encrypt,
            );
            let mut starts: Vec<usize> = (0..pt.len()).step_by(CACHELINE).collect();
            simkit::DetRng::new(seed).shuffle(&mut starts);
            let mut got = vec![0u8; pt.len()];
            for start in starts {
                let end = (start + CACHELINE).min(pt.len());
                let out = dsa.process_cacheline(start, &pt[start..end]);
                got[start..end].copy_from_slice(&out);
            }
            prop_assert!(dsa.is_complete());
            prop_assert_eq!(got, want_ct);
            prop_assert_eq!(dsa.tag(), want_tag);
        }

        #[test]
        fn prop_open_rejects_bit_flips(
            key: [u8; 16],
            iv: [u8; 12],
            pt in proptest::collection::vec(any::<u8>(), 1..64),
            flip_byte in 0usize..64,
            flip_bit in 0u8..8,
        ) {
            let gcm = AesGcm::new_128(&key);
            let (mut ct, tag) = gcm.seal(&iv, b"", &pt);
            let idx = flip_byte % ct.len();
            ct[idx] ^= 1 << flip_bit;
            prop_assert_eq!(gcm.open(&iv, b"", &ct, &tag), Err(CryptoError::TagMismatch));
        }
    }
}
