//! Arithmetic in GF(2^128) with the GCM bit ordering.
//!
//! GCM interprets 16-byte blocks with the *most significant* bit of the
//! first byte as the coefficient of x^0 (the "reflected" convention). The
//! reduction polynomial is x^128 + x^7 + x^2 + x + 1, which in this
//! convention appears as the constant `0xE1` shifted into the top byte.
//!
//! [`Gf128`] is the element type used by GHASH and by the SmartDIMM TLS
//! DSA's precomputed table of powers of `H` (§V-A).

use std::ops::{Add, Mul};

/// Multiplies by `x` (one bit of polynomial degree): shift right in the
/// reflected representation, folding the dropped degree-127 term back in
/// with the reduction constant.
#[inline]
const fn mulx(v: u128) -> u128 {
    const R: u128 = 0xE1 << 120;
    let carry = v & 1;
    let shifted = v >> 1;
    if carry == 1 {
        shifted ^ R
    } else {
        shifted
    }
}

/// `R4[j]` is the reduction contribution of the low nibble `j` when a
/// field element is multiplied by `x^4`: `z·x^4 = (z >> 4) ^ R4[z & 0xF]`.
/// Derived at compile time from `mulx` so no transcribed constants can
/// drift from the reference reduction.
const R4: [u128; 16] = {
    let mut table = [0u128; 16];
    let mut j = 0;
    while j < 16 {
        let mut v = j as u128;
        let mut k = 0;
        while k < 4 {
            v = mulx(v);
            k += 1;
        }
        table[j] = v;
        j += 1;
    }
    table
};

/// An element of GF(2^128) in GCM bit order.
///
/// # Example
///
/// ```
/// use ulp_crypto::gf128::Gf128;
/// let h = Gf128::from_bytes(&[0x80; 16]);
/// let one = Gf128::ONE;
/// assert_eq!(h * one, h);          // multiplicative identity
/// assert_eq!(h + h, Gf128::ZERO);  // characteristic 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf128(u128);

impl Gf128 {
    /// The additive identity.
    pub const ZERO: Gf128 = Gf128(0);
    /// The multiplicative identity: x^0, i.e. the MSB of the first byte.
    pub const ONE: Gf128 = Gf128(1 << 127);

    /// Interprets 16 big-endian bytes as a field element.
    pub fn from_bytes(b: &[u8; 16]) -> Gf128 {
        Gf128(u128::from_be_bytes(*b))
    }

    /// Serializes the element back to 16 big-endian bytes.
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Whether this is the zero element.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Computes `self^n` by square-and-multiply (n ≥ 0; `x^0 == ONE`).
    pub fn pow(self, mut n: u64) -> Gf128 {
        let mut result = Gf128::ONE;
        let mut base = self;
        while n > 0 {
            if n & 1 == 1 {
                result = result * base;
            }
            base = base * base;
            n >>= 1;
        }
        result
    }

    /// Reference multiplication: the bit-at-a-time algorithm of NIST SP
    /// 800-38D §6.3, one conditional XOR per bit of `rhs`.
    ///
    /// This is the oracle the table-driven [`GfMulTable`] (and the `Mul`
    /// impl built on it) is validated against, and the "before" side of
    /// the `bench_hotpaths` GHASH measurement. Hot paths should use `*`
    /// or a per-key [`GfMulTable`] instead.
    pub fn mul_bitwise(self, rhs: Gf128) -> Gf128 {
        const R: u128 = 0xE1 << 120;
        let mut z: u128 = 0;
        let mut v = self.0;
        let y = rhs.0;
        for i in 0..128 {
            if (y >> (127 - i)) & 1 == 1 {
                z ^= v;
            }
            let lsb = v & 1;
            v >>= 1;
            if lsb == 1 {
                v ^= R;
            }
        }
        Gf128(z)
    }
}

/// Shoup-style 4-bit multiplication table for a fixed element `H`.
///
/// GHASH multiplies everything by the same hash subkey, so the table is
/// built **once per key** (16 entries: every 4-bit polynomial times `H`)
/// and each subsequent product costs 32 nibble steps instead of the 128
/// conditional-XOR iterations of [`Gf128::mul_bitwise`] — the §V-A
/// observation that the multiplier, not the data, is the loop invariant.
///
/// # Example
///
/// ```
/// use ulp_crypto::gf128::{Gf128, GfMulTable};
/// let h = Gf128::from_bytes(&[0x35; 16]);
/// let x = Gf128::from_bytes(&[0x77; 16]);
/// let table = GfMulTable::new(h);
/// assert_eq!(table.mul(x), x.mul_bitwise(h));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GfMulTable {
    /// `m[i]` = (the degree-≤3 polynomial spelled by nibble `i`) · H,
    /// where bit `j` of `i` carries the coefficient of `x^(3-j)`.
    m: [u128; 16],
}

impl GfMulTable {
    /// Builds the 16-entry table for multiplication by `h`.
    pub fn new(h: Gf128) -> GfMulTable {
        let mut m = [0u128; 16];
        // Single-bit entries by repeated ·x, composites by linearity.
        m[8] = h.0; // x^0 · H
        m[4] = mulx(m[8]); // x^1 · H
        m[2] = mulx(m[4]); // x^2 · H
        m[1] = mulx(m[2]); // x^3 · H
        for top in [2usize, 4, 8] {
            for low in 1..top {
                m[top | low] = m[top] ^ m[low];
            }
        }
        GfMulTable { m }
    }

    /// Computes `x · H` with the precomputed table.
    #[inline]
    pub fn mul(&self, x: Gf128) -> Gf128 {
        // Horner over the 32 nibbles of x, least-significant (highest
        // polynomial degree) first: z ← z·x^4 + nibble·H.
        let x = x.0;
        let mut z = self.m[(x & 0xF) as usize];
        for n in 1..32 {
            z = (z >> 4) ^ R4[(z & 0xF) as usize] ^ self.m[((x >> (4 * n)) & 0xF) as usize];
        }
        Gf128(z)
    }
}

impl Add for Gf128 {
    type Output = Gf128;
    /// Addition in GF(2^128) is XOR.
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf128) -> Gf128 {
        Gf128(self.0 ^ rhs.0)
    }
}

impl Mul for Gf128 {
    type Output = Gf128;
    /// Carry-less multiplication with on-the-fly reduction via a 4-bit
    /// window table built per call (cheap: 3 shifts + 11 XORs). Both
    /// operands may vary — the out-of-order GHASH multiplies each block
    /// by a *different* power of `H`, so no per-key table applies there.
    /// Agrees bit-for-bit with [`Gf128::mul_bitwise`].
    fn mul(self, rhs: Gf128) -> Gf128 {
        GfMulTable::new(self).mul(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex16(s: &str) -> [u8; 16] {
        let v: Vec<u8> = (0..32)
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    #[test]
    fn identity_and_zero() {
        let a = Gf128::from_bytes(&hex16("66e94bd4ef8a2c3b884cfa59ca342b2e"));
        assert_eq!(a * Gf128::ONE, a);
        assert_eq!(a * Gf128::ZERO, Gf128::ZERO);
        assert_eq!(a + Gf128::ZERO, a);
        assert!(Gf128::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn known_product_from_gcm_test_case_2() {
        // In GCM test case 2 (zero key, one zero plaintext block), the tag
        // computation includes GHASH steps we can replicate: with
        // H = 66e94bd4ef8a2c3b884cfa59ca342b2e and
        // C1 = 0388dace60b6a392f328c2b971b2fe78,
        // GHASH = (C1 · H + LenBlock) · H = f38cbb1ad69223dcc3457ae5b6b0f885.
        let h = Gf128::from_bytes(&hex16("66e94bd4ef8a2c3b884cfa59ca342b2e"));
        let c1 = Gf128::from_bytes(&hex16("0388dace60b6a392f328c2b971b2fe78"));
        let mut len_block = [0u8; 16];
        len_block[8..].copy_from_slice(&(128u64).to_be_bytes());
        let len = Gf128::from_bytes(&len_block);
        let ghash = (c1 * h + len) * h;
        assert_eq!(ghash.to_bytes(), hex16("f38cbb1ad69223dcc3457ae5b6b0f885"));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let h = Gf128::from_bytes(&hex16("acbef20579b4b8ebce889bac8732dad7"));
        let mut acc = Gf128::ONE;
        for n in 0..16u64 {
            assert_eq!(h.pow(n), acc, "H^{n}");
            acc = acc * h;
        }
    }

    #[test]
    fn roundtrip_bytes() {
        let b = hex16("0123456789abcdef0f1e2d3c4b5a6978");
        assert_eq!(Gf128::from_bytes(&b).to_bytes(), b);
    }

    #[test]
    fn table_identity_and_zero() {
        let h = Gf128::from_bytes(&hex16("66e94bd4ef8a2c3b884cfa59ca342b2e"));
        let table = GfMulTable::new(h);
        assert_eq!(table.mul(Gf128::ONE), h);
        assert_eq!(table.mul(Gf128::ZERO), Gf128::ZERO);
        assert_eq!(GfMulTable::new(Gf128::ONE).mul(h), h);
    }

    #[test]
    fn table_matches_bitwise_on_gcm_vectors() {
        let h = Gf128::from_bytes(&hex16("66e94bd4ef8a2c3b884cfa59ca342b2e"));
        let c1 = Gf128::from_bytes(&hex16("0388dace60b6a392f328c2b971b2fe78"));
        let table = GfMulTable::new(h);
        assert_eq!(table.mul(c1), c1.mul_bitwise(h));
        assert_eq!(table.mul(h), h.mul_bitwise(h));
    }

    proptest! {
        #[test]
        fn prop_mul_commutative(a: [u8; 16], b: [u8; 16]) {
            let x = Gf128::from_bytes(&a);
            let y = Gf128::from_bytes(&b);
            prop_assert_eq!(x * y, y * x);
        }

        #[test]
        fn prop_mul_associative(a: [u8; 16], b: [u8; 16], c: [u8; 16]) {
            let x = Gf128::from_bytes(&a);
            let y = Gf128::from_bytes(&b);
            let z = Gf128::from_bytes(&c);
            prop_assert_eq!((x * y) * z, x * (y * z));
        }

        #[test]
        fn prop_mul_distributes_over_add(a: [u8; 16], b: [u8; 16], c: [u8; 16]) {
            let x = Gf128::from_bytes(&a);
            let y = Gf128::from_bytes(&b);
            let z = Gf128::from_bytes(&c);
            prop_assert_eq!(x * (y + z), x * y + x * z);
        }

        #[test]
        fn prop_add_self_inverse(a: [u8; 16]) {
            let x = Gf128::from_bytes(&a);
            prop_assert_eq!(x + x, Gf128::ZERO);
        }

        #[test]
        fn prop_table_and_mul_match_bitwise(a: [u8; 16], b: [u8; 16]) {
            let x = Gf128::from_bytes(&a);
            let y = Gf128::from_bytes(&b);
            let expected = x.mul_bitwise(y);
            prop_assert_eq!(x * y, expected);
            prop_assert_eq!(GfMulTable::new(y).mul(x), expected);
        }
    }
}
