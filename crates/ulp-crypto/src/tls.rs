//! TLS 1.3 record layer (RFC 8446 §5), the ULP that SmartDIMM's TLS DSA
//! accelerates.
//!
//! The record layer is deliberately complete enough to exercise every
//! mechanism the paper relies on: per-record nonces derived from the
//! traffic IV and a 64-bit sequence number, additional data over the
//! 5-byte record header, the inner-plaintext content-type byte, and the
//! 2^14-byte record size limit. Handshake *negotiation* is out of scope
//! (the paper measures steady-state application traffic); sessions are
//! created directly from a shared traffic secret via the real TLS 1.3
//! `HKDF-Expand-Label` schedule.

use crate::gcm::{AesGcm, IV_LEN, TAG_LEN};
use crate::sha256::hkdf_expand_label_arr;
use crate::CryptoError;

/// Maximum TLS plaintext fragment size (RFC 8446 §5.1).
pub const MAX_PLAINTEXT: usize = 1 << 14;
/// TLS record header length.
pub const HEADER_LEN: usize = 5;
/// `ContentType` values used by the record layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentType {
    /// Application data (0x17) — everything in steady state.
    ApplicationData,
    /// Alert (0x15).
    Alert,
    /// Handshake (0x16).
    Handshake,
}

impl ContentType {
    fn to_byte(self) -> u8 {
        match self {
            ContentType::ApplicationData => 23,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
        }
    }

    fn from_byte(b: u8) -> Option<ContentType> {
        match b {
            23 => Some(ContentType::ApplicationData),
            21 => Some(ContentType::Alert),
            22 => Some(ContentType::Handshake),
            _ => None,
        }
    }
}

/// Per-direction traffic keys derived from a traffic secret.
#[derive(Debug, Clone)]
pub struct TrafficKeys {
    key: [u8; 16],
    iv: [u8; IV_LEN],
}

impl TrafficKeys {
    /// Derives `key` and `iv` from a 32-byte traffic secret using
    /// `HKDF-Expand-Label` exactly as RFC 8446 §7.3 specifies
    /// (AES-128-GCM cipher suite).
    pub fn derive(traffic_secret: &[u8; 32]) -> TrafficKeys {
        TrafficKeys {
            key: hkdf_expand_label_arr(traffic_secret, "key", b""),
            iv: hkdf_expand_label_arr(traffic_secret, "iv", b""),
        }
    }

    /// The AES-128 traffic key.
    pub fn key(&self) -> &[u8; 16] {
        &self.key
    }

    /// The static per-connection IV that is XORed with the record
    /// sequence number to form each nonce.
    pub fn iv(&self) -> &[u8; IV_LEN] {
        &self.iv
    }

    /// The per-record nonce for sequence number `seq` (RFC 8446 §5.3).
    pub fn nonce(&self, seq: u64) -> [u8; IV_LEN] {
        let mut nonce = self.iv;
        let seq_bytes = seq.to_be_bytes();
        for i in 0..8 {
            nonce[IV_LEN - 8 + i] ^= seq_bytes[i];
        }
        nonce
    }
}

/// Builds the 5-byte record header / additional data for a ciphertext of
/// `ct_len` bytes (which already includes the content-type byte and tag).
fn record_header(ct_len: usize) -> [u8; HEADER_LEN] {
    [
        ContentType::ApplicationData.to_byte(),
        0x03,
        0x03,
        (ct_len >> 8) as u8,
        (ct_len & 0xff) as u8,
    ]
}

/// One direction of a TLS 1.3 connection after the handshake: encrypts
/// outgoing records or decrypts incoming ones, maintaining the implicit
/// sequence number.
///
/// # Example
///
/// ```
/// use ulp_crypto::tls::{RecordLayer, ContentType};
///
/// let secret = [0x42u8; 32];
/// let mut tx = RecordLayer::new(&secret);
/// let mut rx = RecordLayer::new(&secret);
///
/// let record = tx.encrypt(b"GET / HTTP/1.1\r\n\r\n").unwrap();
/// let (ctype, pt) = rx.decrypt(&record).unwrap();
/// assert_eq!(ctype, ContentType::ApplicationData);
/// assert_eq!(pt, b"GET / HTTP/1.1\r\n\r\n");
/// ```
#[derive(Debug, Clone)]
pub struct RecordLayer {
    keys: TrafficKeys,
    gcm: AesGcm,
    seq: u64,
}

impl RecordLayer {
    /// Creates a record layer from a 32-byte traffic secret.
    pub fn new(traffic_secret: &[u8; 32]) -> RecordLayer {
        let keys = TrafficKeys::derive(traffic_secret);
        let gcm = AesGcm::new_128(keys.key());
        RecordLayer { keys, gcm, seq: 0 }
    }

    /// The next sequence number this layer will use.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The traffic keys (needed by the SmartDIMM offload path, which
    /// ships key material to the DSA instead of encrypting in software).
    pub fn keys(&self) -> &TrafficKeys {
        &self.keys
    }

    /// Borrows the GCM instance.
    pub fn gcm(&self) -> &AesGcm {
        &self.gcm
    }

    /// Encrypts an application-data record, consuming one sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::RecordTooLarge`] if `plaintext` exceeds
    /// 2^14 bytes.
    pub fn encrypt(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.encrypt_typed(plaintext, ContentType::ApplicationData)
    }

    /// Encrypts a record with an explicit content type.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::RecordTooLarge`] if `plaintext` exceeds
    /// 2^14 bytes.
    pub fn encrypt_typed(
        &mut self,
        plaintext: &[u8],
        ctype: ContentType,
    ) -> Result<Vec<u8>, CryptoError> {
        if plaintext.len() > MAX_PLAINTEXT {
            return Err(CryptoError::RecordTooLarge);
        }
        // TLSInnerPlaintext = content || ContentType (no padding).
        let mut inner = Vec::with_capacity(plaintext.len() + 1);
        inner.extend_from_slice(plaintext);
        inner.push(ctype.to_byte());

        let ct_len = inner.len() + TAG_LEN;
        let header = record_header(ct_len);
        let nonce = self.keys.nonce(self.seq);
        let (ct, tag) = self.gcm.seal(&nonce, &header, &inner);
        self.seq += 1;

        let mut record = Vec::with_capacity(HEADER_LEN + ct_len);
        record.extend_from_slice(&header);
        record.extend_from_slice(&ct);
        record.extend_from_slice(&tag);
        Ok(record)
    }

    /// Decrypts one full record, consuming one sequence number.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::MalformedRecord`] — truncated record, bad header,
    ///   or missing content type.
    /// * [`CryptoError::RecordTooLarge`] — length field exceeds the limit.
    /// * [`CryptoError::TagMismatch`] — authentication failure.
    pub fn decrypt(&mut self, record: &[u8]) -> Result<(ContentType, Vec<u8>), CryptoError> {
        if record.len() < HEADER_LEN + TAG_LEN + 1 {
            return Err(CryptoError::MalformedRecord);
        }
        let header: [u8; HEADER_LEN] = record
            .get(..HEADER_LEN)
            .and_then(|h| h.try_into().ok())
            .ok_or(CryptoError::MalformedRecord)?;
        if header[0] != ContentType::ApplicationData.to_byte()
            || header[1] != 0x03
            || header[2] != 0x03
        {
            return Err(CryptoError::MalformedRecord);
        }
        let ct_len = ((header[3] as usize) << 8) | header[4] as usize;
        if ct_len > MAX_PLAINTEXT + 1 + TAG_LEN + 256 {
            return Err(CryptoError::RecordTooLarge);
        }
        if record.len() != HEADER_LEN + ct_len {
            return Err(CryptoError::MalformedRecord);
        }
        let (ct, tag_bytes) = record[HEADER_LEN..].split_at(ct_len - TAG_LEN);
        let tag: [u8; TAG_LEN] = tag_bytes
            .try_into()
            .map_err(|_| CryptoError::MalformedRecord)?;
        let nonce = self.keys.nonce(self.seq);
        let mut inner = self.gcm.open(&nonce, &header, ct, &tag)?;
        self.seq += 1;
        // Strip trailing zero padding, then the content type byte.
        while inner.last() == Some(&0) {
            inner.pop();
        }
        let ctype_byte = inner.pop().ok_or(CryptoError::MalformedRecord)?;
        let ctype = ContentType::from_byte(ctype_byte).ok_or(CryptoError::MalformedRecord)?;
        Ok((ctype, inner))
    }

    /// Splits `payload` into maximally sized records and encrypts each —
    /// how a web server sends a large HTTP response body.
    ///
    /// # Errors
    ///
    /// Propagates any encryption error (none occur for valid input).
    pub fn encrypt_stream(&mut self, payload: &[u8]) -> Result<Vec<Vec<u8>>, CryptoError> {
        if payload.is_empty() {
            return Ok(vec![self.encrypt(b"")?]);
        }
        payload
            .chunks(MAX_PLAINTEXT)
            .map(|c| self.encrypt(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pair() -> (RecordLayer, RecordLayer) {
        let secret = [0xA5u8; 32];
        (RecordLayer::new(&secret), RecordLayer::new(&secret))
    }

    #[test]
    fn round_trip_single_record() {
        let (mut tx, mut rx) = pair();
        let record = tx.encrypt(b"hello world").unwrap();
        assert_eq!(record[0], 23);
        assert_eq!(&record[1..3], &[3, 3]);
        let (ctype, pt) = rx.decrypt(&record).unwrap();
        assert_eq!(ctype, ContentType::ApplicationData);
        assert_eq!(pt, b"hello world");
    }

    #[test]
    fn sequence_numbers_advance() {
        let (mut tx, mut rx) = pair();
        for i in 0..10u32 {
            let msg = format!("record {i}");
            let record = tx.encrypt(msg.as_bytes()).unwrap();
            let (_, pt) = rx.decrypt(&record).unwrap();
            assert_eq!(pt, msg.as_bytes());
        }
        assert_eq!(tx.seq(), 10);
        assert_eq!(rx.seq(), 10);
    }

    #[test]
    fn out_of_order_decryption_fails_tag() {
        let (mut tx, mut rx) = pair();
        let r0 = tx.encrypt(b"first").unwrap();
        let r1 = tx.encrypt(b"second").unwrap();
        // Decrypting r1 first uses seq 0's nonce -> tag mismatch.
        assert_eq!(rx.decrypt(&r1), Err(CryptoError::TagMismatch));
        // seq was consumed by the failed attempt? No: decrypt consumes the
        // sequence number only on success... but our implementation bumps
        // after open succeeds, so r0 still decrypts.
        let (_, pt) = rx.decrypt(&r0).unwrap();
        assert_eq!(pt, b"first");
    }

    #[test]
    fn nonces_differ_per_record() {
        let keys = TrafficKeys::derive(&[1u8; 32]);
        let n0 = keys.nonce(0);
        let n1 = keys.nonce(1);
        assert_ne!(n0, n1);
        assert_eq!(n0[..4], n1[..4]); // only the seq-XORed tail differs
        assert_eq!(keys.nonce(0), n0); // deterministic
    }

    #[test]
    fn content_types_round_trip() {
        let (mut tx, mut rx) = pair();
        let record = tx.encrypt_typed(b"alert!", ContentType::Alert).unwrap();
        let (ctype, pt) = rx.decrypt(&record).unwrap();
        assert_eq!(ctype, ContentType::Alert);
        assert_eq!(pt, b"alert!");
    }

    #[test]
    fn oversized_plaintext_rejected() {
        let (mut tx, _) = pair();
        let big = vec![0u8; MAX_PLAINTEXT + 1];
        assert_eq!(tx.encrypt(&big), Err(CryptoError::RecordTooLarge));
    }

    #[test]
    fn malformed_records_rejected() {
        let (mut tx, mut rx) = pair();
        let record = tx.encrypt(b"x").unwrap();
        assert_eq!(rx.decrypt(&record[..3]), Err(CryptoError::MalformedRecord));
        let mut bad_type = record.clone();
        bad_type[0] = 0x55;
        assert_eq!(rx.decrypt(&bad_type), Err(CryptoError::MalformedRecord));
        let mut bad_len = record.clone();
        bad_len[4] ^= 1;
        assert_eq!(rx.decrypt(&bad_len), Err(CryptoError::MalformedRecord));
    }

    #[test]
    fn tampered_payload_rejected() {
        let (mut tx, mut rx) = pair();
        let mut record = tx.encrypt(b"important data").unwrap();
        record[7] ^= 0x01;
        assert_eq!(rx.decrypt(&record), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn encrypt_stream_fragments_large_payloads() {
        let (mut tx, mut rx) = pair();
        let payload = vec![0x5Au8; MAX_PLAINTEXT * 2 + 100];
        let records = tx.encrypt_stream(&payload).unwrap();
        assert_eq!(records.len(), 3);
        let mut reassembled = Vec::new();
        for r in &records {
            let (_, pt) = rx.decrypt(r).unwrap();
            reassembled.extend_from_slice(&pt);
        }
        assert_eq!(reassembled, payload);
    }

    #[test]
    fn encrypt_stream_empty_payload() {
        let (mut tx, mut rx) = pair();
        let records = tx.encrypt_stream(b"").unwrap();
        assert_eq!(records.len(), 1);
        let (_, pt) = rx.decrypt(&records[0]).unwrap();
        assert!(pt.is_empty());
    }

    #[test]
    fn different_secrets_cannot_interoperate() {
        let mut tx = RecordLayer::new(&[1u8; 32]);
        let mut rx = RecordLayer::new(&[2u8; 32]);
        let record = tx.encrypt(b"secret").unwrap();
        assert_eq!(rx.decrypt(&record), Err(CryptoError::TagMismatch));
    }

    proptest! {
        #[test]
        fn prop_record_round_trip(
            secret: [u8; 32],
            payload in proptest::collection::vec(any::<u8>(), 0..2000),
        ) {
            let mut tx = RecordLayer::new(&secret);
            let mut rx = RecordLayer::new(&secret);
            let record = tx.encrypt(&payload).unwrap();
            let (ctype, pt) = rx.decrypt(&record).unwrap();
            prop_assert_eq!(ctype, ContentType::ApplicationData);
            prop_assert_eq!(pt, payload);
        }

        #[test]
        fn prop_stream_reassembles(
            secret: [u8; 32],
            payload in proptest::collection::vec(any::<u8>(), 1..40_000),
        ) {
            let mut tx = RecordLayer::new(&secret);
            let mut rx = RecordLayer::new(&secret);
            let mut out = Vec::new();
            for r in tx.encrypt_stream(&payload).unwrap() {
                out.extend(rx.decrypt(&r).unwrap().1);
            }
            prop_assert_eq!(out, payload);
        }
    }
}
