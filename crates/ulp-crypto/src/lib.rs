//! `ulp-crypto` implements the cryptographic upper-layer protocol (ULP)
//! stack that SmartDIMM offloads: AES, GHASH over GF(2^128), AES-GCM, and
//! the TLS 1.3 record layer, plus SHA-256/HMAC/HKDF for key derivation.
//!
//! Everything is written from scratch (no external crypto crates) because
//! the SmartDIMM DSA model in the `smartdimm` crate needs access to the
//! *internals*: precomputed powers of `H`, per-cacheline out-of-order
//! keystream generation, and partial authentication tags ([`gcm::OooGcm`]).
//! Those are exactly the pieces §V-A of the paper moves into the DIMM
//! buffer device.
//!
//! Functional correctness is anchored to published test vectors
//! (FIPS-197 for AES, the McGrew–Viega GCM vectors, RFC 4231 for HMAC and
//! RFC 5869 for HKDF) plus round-trip property tests.
//!
//! # Example
//!
//! ```
//! use ulp_crypto::gcm::AesGcm;
//!
//! let key = [0u8; 16];
//! let iv = [0u8; 12];
//! let gcm = AesGcm::new_128(&key);
//! let (ct, tag) = gcm.seal(&iv, b"", b"hello, smartdimm");
//! let pt = gcm.open(&iv, b"", &ct, &tag).expect("tag verifies");
//! assert_eq!(pt, b"hello, smartdimm");
//! ```

pub mod aes;
pub mod gcm;
pub mod gf128;
pub mod ghash;
pub mod sha256;
pub mod tls;

/// Errors produced by this crate's fallible operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// Authentication tag mismatch during AEAD open.
    TagMismatch,
    /// A TLS record failed structural validation.
    MalformedRecord,
    /// A TLS record exceeded the maximum permitted payload size.
    RecordTooLarge,
    /// A record arrived with an unexpected sequence number.
    SequenceMismatch,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::TagMismatch => write!(f, "authentication tag mismatch"),
            CryptoError::MalformedRecord => write!(f, "malformed TLS record"),
            CryptoError::RecordTooLarge => write!(f, "TLS record exceeds maximum size"),
            CryptoError::SequenceMismatch => write!(f, "unexpected record sequence number"),
        }
    }
}

impl std::error::Error for CryptoError {}
