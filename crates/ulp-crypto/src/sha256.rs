//! SHA-256 (FIPS 180-4), HMAC (RFC 2104) and HKDF (RFC 5869).
//!
//! These supply the TLS 1.3 key schedule used by [`crate::tls`]. Verified
//! against the FIPS "abc" vector, RFC 4231 HMAC vectors and the RFC 5869
//! HKDF test case.

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use ulp_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0xba); // "abc" starts ba7816bf...
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: `Sha256::digest(data)`.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len += data.len() as u64;
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let block: [u8; 64] = rest[..64].try_into().expect("64-byte chunk");
            self.compress(&block);
            rest = &rest[64..];
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len * 8;
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // update() counts padding bytes into total_len, but bit_len was
        // captured beforehand, so the message length is correct.
        self.total_len = 0;
        let mut block = self.buf;
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// HMAC-SHA256 (RFC 2104).
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-Extract (RFC 5869 §2.2).
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand (RFC 5869 §2.3).
///
/// # Panics
///
/// Panics if `out_len > 255 * 32` (the RFC limit).
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * 32, "HKDF output length limit exceeded");
    let mut out = Vec::with_capacity(out_len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut msg = t.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        t = hmac_sha256(prk, &msg).to_vec();
        let take = (out_len - out.len()).min(32);
        out.extend_from_slice(&t[..take]);
        counter += 1;
    }
    out
}

/// TLS 1.3 `HKDF-Expand-Label` (RFC 8446 §7.1).
pub fn hkdf_expand_label(prk: &[u8; 32], label: &str, context: &[u8], out_len: usize) -> Vec<u8> {
    let full_label = format!("tls13 {label}");
    let mut info = Vec::with_capacity(4 + full_label.len() + context.len());
    info.extend_from_slice(&(out_len as u16).to_be_bytes());
    info.push(full_label.len() as u8);
    info.extend_from_slice(full_label.as_bytes());
    info.push(context.len() as u8);
    info.extend_from_slice(context);
    hkdf_expand(prk, &info, out_len)
}

/// `HKDF-Expand-Label` with a compile-time output size, for callers that
/// need a fixed-width key or IV without a fallible slice conversion.
pub fn hkdf_expand_label_arr<const N: usize>(
    prk: &[u8; 32],
    label: &str,
    context: &[u8],
) -> [u8; N] {
    let v = hkdf_expand_label(prk, label, context, N);
    let mut out = [0u8; N];
    for (o, b) in out.iter_mut().zip(v) {
        *o = b;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            Sha256::digest(b"abc").to_vec(),
            hex("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
        );
    }

    #[test]
    fn sha256_empty() {
        assert_eq!(
            Sha256::digest(b"").to_vec(),
            hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
        );
    }

    #[test]
    fn sha256_two_block_message() {
        // FIPS 180-4 56-byte vector (forces padding into a second block).
        assert_eq!(
            Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_vec(),
            hex("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
        );
    }

    #[test]
    fn sha256_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split {split}");
        }
    }

    #[test]
    fn hmac_rfc4231_case_1() {
        let key = [0x0b; 20];
        assert_eq!(
            hmac_sha256(&key, b"Hi There").to_vec(),
            hex("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
        );
    }

    #[test]
    fn hmac_rfc4231_case_2() {
        assert_eq!(
            hmac_sha256(b"Jefe", b"what do ya want for nothing?").to_vec(),
            hex("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        let key = [0xaa; 131];
        assert_eq!(
            hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )
            .to_vec(),
            hex("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
        );
    }

    #[test]
    fn hkdf_rfc5869_case_1() {
        let ikm = [0x0b; 22];
        let salt = hex("000102030405060708090a0b0c");
        let info = hex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            prk.to_vec(),
            hex("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            okm,
            hex("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
        );
    }

    #[test]
    fn hkdf_expand_label_is_deterministic_and_distinct() {
        let prk = [7u8; 32];
        let a = hkdf_expand_label(&prk, "key", b"", 16);
        let b = hkdf_expand_label(&prk, "iv", b"", 12);
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 12);
        assert_ne!(a[..12], b[..]);
        assert_eq!(a, hkdf_expand_label(&prk, "key", b"", 16));
    }

    proptest! {
        #[test]
        fn prop_incremental_any_split(data in proptest::collection::vec(any::<u8>(), 0..300), split in 0usize..300) {
            let split = split.min(data.len());
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Sha256::digest(&data));
        }

        #[test]
        fn prop_distinct_inputs_distinct_digests(a in proptest::collection::vec(any::<u8>(), 0..64), b in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assume!(a != b);
            prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
        }
    }
}
