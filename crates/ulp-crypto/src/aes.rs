//! AES block cipher (FIPS-197), from scratch.
//!
//! The S-box is *derived* (multiplicative inverse in GF(2^8) followed by
//! the affine transform) rather than transcribed, which removes a whole
//! class of table-typo bugs; the derivation itself is pinned by the
//! FIPS-197 known-answer tests below.
//!
//! Only the forward cipher is needed by GCM (CTR mode), but the inverse
//! cipher is provided for completeness and verified by round-trip tests.

/// Multiplies two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1.
const fn gf256_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) via a^254 (0 maps to 0).
const fn gf256_inv(a: u8) -> u8 {
    // a^254 by square-and-multiply: 254 = 0b11111110.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf256_mul(result, base);
        }
        base = gf256_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let inv = gf256_inv(i as u8);
        // Affine transform: s = inv ^ rotl(inv,1) ^ rotl(inv,2) ^ rotl(inv,3) ^ rotl(inv,4) ^ 0x63.
        let s = inv
            ^ inv.rotate_left(1)
            ^ inv.rotate_left(2)
            ^ inv.rotate_left(3)
            ^ inv.rotate_left(4)
            ^ 0x63;
        sbox[i] = s;
        i += 1;
    }
    sbox
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// The AES substitution box, derived at compile time.
pub const SBOX: [u8; 256] = build_sbox();
/// The inverse substitution box.
pub const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

const RCON: [u8; 11] = [
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
];

/// AES key size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes256 => 14,
        }
    }
    fn key_words(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes256 => 8,
        }
    }
}

/// An expanded AES key (the "key schedule").
///
/// This is exactly the state SmartDIMM's TLS DSA receives through Config
/// Memory: the CPU runs the key expansion once per connection and ships
/// round keys to the DIMM, so the DSA never performs key expansion.
///
/// # Example
///
/// ```
/// use ulp_crypto::aes::Aes;
/// let aes = Aes::new_128(&[0u8; 16]);
/// let ct = aes.encrypt_block(&[0u8; 16]);
/// assert_eq!(aes.decrypt_block(&ct), [0u8; 16]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    size: KeySize,
}

impl Aes {
    /// Expands a 128-bit key.
    pub fn new_128(key: &[u8; 16]) -> Aes {
        Aes::expand(key, KeySize::Aes128)
    }

    /// Expands a 256-bit key.
    pub fn new_256(key: &[u8; 32]) -> Aes {
        Aes::expand(key, KeySize::Aes256)
    }

    /// Expands a key of either supported size.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` does not match `size`.
    pub fn expand(key: &[u8], size: KeySize) -> Aes {
        let nk = size.key_words();
        assert_eq!(key.len(), nk * 4, "key length mismatch");
        let nr = size.rounds();
        let total_words = 4 * (nr + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Aes { round_keys, size }
    }

    /// The key size this schedule was expanded from.
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// Number of rounds (10 for AES-128, 14 for AES-256).
    pub fn rounds(&self) -> usize {
        self.size.rounds()
    }

    /// The expanded round keys (rounds + 1 entries of 16 bytes).
    pub fn round_keys(&self) -> &[[u8; 16]] {
        &self.round_keys
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        let nr = self.rounds();
        for round in 1..nr {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[nr]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        let nr = self.rounds();
        add_round_key(&mut state, &self.round_keys[nr]);
        for round in (1..nr).rev() {
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

// The state is stored column-major as in FIPS-197: state[r + 4c].
// We keep it as a flat [u8; 16] where byte i of the input maps to
// row i%4, column i/4 — i.e. the natural byte order.

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

/// Row `r` of the state is bytes `r, r+4, r+8, r+12`; ShiftRows rotates
/// row `r` left by `r`.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf256_mul(col[0], 2) ^ gf256_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf256_mul(col[1], 2) ^ gf256_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf256_mul(col[2], 2) ^ gf256_mul(col[3], 3);
        state[4 * c + 3] = gf256_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf256_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf256_mul(col[0], 14)
            ^ gf256_mul(col[1], 11)
            ^ gf256_mul(col[2], 13)
            ^ gf256_mul(col[3], 9);
        state[4 * c + 1] = gf256_mul(col[0], 9)
            ^ gf256_mul(col[1], 14)
            ^ gf256_mul(col[2], 11)
            ^ gf256_mul(col[3], 13);
        state[4 * c + 2] = gf256_mul(col[0], 13)
            ^ gf256_mul(col[1], 9)
            ^ gf256_mul(col[2], 14)
            ^ gf256_mul(col[3], 11);
        state[4 * c + 3] = gf256_mul(col[0], 11)
            ^ gf256_mul(col[1], 13)
            ^ gf256_mul(col[2], 9)
            ^ gf256_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        // Spot-check the derived S-box against FIPS-197 Table 7.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &s in SBOX.iter() {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
    }

    #[test]
    fn fips197_aes128_known_answer() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_128(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn fips197_aes256_known_answer() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_256(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn key_schedule_lengths() {
        let a128 = Aes::new_128(&[0u8; 16]);
        assert_eq!(a128.round_keys().len(), 11);
        assert_eq!(a128.rounds(), 10);
        let a256 = Aes::new_256(&[0u8; 32]);
        assert_eq!(a256.round_keys().len(), 15);
        assert_eq!(a256.rounds(), 14);
        assert_eq!(a256.key_size(), KeySize::Aes256);
    }

    #[test]
    fn key_schedule_first_round_key_is_key() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let aes = Aes::new_128(&key);
        assert_eq!(aes.round_keys()[0], key);
    }

    #[test]
    fn fips197_appendix_a_key_expansion() {
        // FIPS-197 A.1: last round key for the 2b7e... key.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let aes = Aes::new_128(&key);
        assert_eq!(
            aes.round_keys()[10].to_vec(),
            hex("d014f9a8c9ee2589e13f0cc8b6630ca6")
        );
    }

    #[test]
    #[should_panic(expected = "key length mismatch")]
    fn expand_rejects_wrong_length() {
        let _ = Aes::expand(&[0u8; 15], KeySize::Aes128);
    }

    #[test]
    fn shift_rows_round_trips() {
        let mut s: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_round_trips() {
        let mut s: [u8; 16] = (16..32u8).collect::<Vec<_>>().try_into().unwrap();
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }

    proptest! {
        #[test]
        fn prop_encrypt_decrypt_roundtrip_128(key: [u8; 16], pt: [u8; 16]) {
            let aes = Aes::new_128(&key);
            prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
        }

        #[test]
        fn prop_encrypt_decrypt_roundtrip_256(key: [u8; 32], pt: [u8; 16]) {
            let aes = Aes::new_256(&key);
            prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
        }

        #[test]
        fn prop_encryption_is_injective(key: [u8; 16], a: [u8; 16], b: [u8; 16]) {
            prop_assume!(a != b);
            let aes = Aes::new_128(&key);
            prop_assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
        }
    }
}
