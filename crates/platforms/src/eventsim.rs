//! The event-driven high-concurrency server harness (tail latency).
//!
//! [`crate::server`] runs a *lock-step* pipeline: every in-flight request
//! marches through produce → socket-write → NIC-TX in batches, which is
//! enough for steady-state throughput and bandwidth numbers but says
//! nothing about *tail latency* — the paper's serving scenario (§VI) is a
//! wrk-style load generator with thousands of persistent connections,
//! where p99/p999 is dominated by queueing, connection churn, and slow
//! clients rather than by mean service time.
//!
//! This module replaces the batch loop with a central
//! [`simkit::EventQueue`] simulation:
//!
//! * **Closed-loop connections.** Each logical connection issues its next
//!   request an exponential think time after the previous response
//!   finishes draining. Tens of thousands of logical connections
//!   multiplex over the bounded buffer arenas of the lock-step harness
//!   (`conn % 1024` slots), exactly the way a real server's buffer pools
//!   and page cache recycle physical pages under high connection counts.
//! * **Two clocks.** The memory simulator's clock serializes every
//!   request's cache/DRAM traffic (so contention *emerges* from the
//!   model, as in the lock-step harness) and yields per-request service
//!   times; a separate virtual clock orders arrivals, think times,
//!   reconnects and drains, and drives a G/G/k worker queue. Request
//!   latency = queue wait + measured service time.
//! * **Zipfian object mix.** Requests draw from an object catalog with
//!   zipfian popularity and per-object deterministic sizes, so response
//!   lengths vary per request (the lock-step harness serves one fixed
//!   size).
//! * **Churn and slow clients.** Per-request hash-derived coin flips tear
//!   connections down (reconnect after `reconnect_ns`) or mark a response
//!   as draining to a slow client. Hash-derived decisions — rather than a
//!   shared RNG stream — keep every other connection's schedule
//!   untouched when a knob changes, so raising `churn_permille` delays a
//!   *superset* of requests.
//! * **Admission control.** On the SmartDIMM placement the harness
//!   samples device queueing pressure ([`smartdimm::QueuePressure`]) and,
//!   above a configurable watermark, either sheds the request
//!   (`admission_rejects`) or serves it on the CPU instead
//!   (`fallback_under_pressure`) — the driver policy a production
//!   deployment needs when scratchpad or translation-table pressure
//!   rises.
//!
//! Everything is deterministic: same seed → byte-identical telemetry
//! snapshots, invariant under `SMARTDIMM_THREADS`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cache::CacheConfig;
use dram::BackendKind;
use simkit::{Cycle, DetRng, EventQueue, Histogram};
use smartdimm::{CompCpyHost, HostConfig};
use ulp_compress::corpus;

use crate::params::CostParams;
use crate::server::{
    advance_ns, conn_file_addr, cycles_to_ns, ns_to_cycles, Engine, PlatformKind, UlpKind,
    WorkloadConfig,
};

/// Buffer-arena slots shared by all logical connections. Matches the
/// lock-step harness's 1024-connection arena limit: logical connection
/// `c` uses slot `c % ARENA_SLOTS`, modeling a bounded buffer pool.
const ARENA_SLOTS: usize = 1024;

/// Completions between device queue-pressure samples. Sampling settles
/// the channel shards, so a fixed cadence bounds that cost while keeping
/// the admission decision deterministic.
const PRESSURE_SAMPLE_EVERY: u64 = 16;

/// What to do with a request admitted while the device is saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// No admission control: every request takes the offload path.
    #[default]
    None,
    /// Shed the request (count it, serve nothing) — load shedding.
    Shed,
    /// Serve the request on the CPU instead of the device.
    CpuFallback,
}

/// Admission-control configuration for the SmartDIMM placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Policy applied when pressure exceeds the watermark.
    pub policy: AdmissionPolicy,
    /// Pressure watermark in `[0, 1]` ([`smartdimm::QueuePressure::scalar`]).
    pub watermark: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            policy: AdmissionPolicy::None,
            watermark: 0.85,
        }
    }
}

/// Workload description for the event-driven harness.
#[derive(Debug, Clone)]
pub struct EventWorkloadConfig {
    /// Logical concurrent connections (tens of thousands are fine — they
    /// multiplex over [`ARENA_SLOTS`] buffer arenas).
    pub connections: usize,
    /// Total requests to issue across all connections.
    pub requests: usize,
    /// Worker threads draining the request queue (G/G/k servers).
    pub workers: usize,
    /// The ULP under test.
    pub ulp: UlpKind,
    /// Content generator for response bodies.
    pub corpus: corpus::Kind,
    /// LLC geometry override (default 16 MB / 16-way).
    pub llc: Option<CacheConfig>,
    /// Cost constants.
    pub costs: CostParams,
    /// RNG seed (schedules, object draws, churn coins).
    pub seed: u64,
    /// When set, installs a deterministic fault plan (tests only).
    pub fault_seed: Option<u64>,
    /// Memory channels (§V-D sharding).
    pub channels: usize,
    /// Interleave granularity in cachelines.
    pub channel_interleave_lines: usize,
    /// DIMMs per channel; only slot 0 carries the buffer device, the
    /// rest are plain capacity DIMMs (scale-out topology).
    pub dimms_per_channel: usize,
    /// CPU sockets; `channels` must split evenly across them.
    pub sockets: usize,
    /// Extra cycles a CAS to a remote-socket channel pays.
    pub interconnect_penalty_cycles: u64,
    /// Offload placement policy (see [`smartdimm::sched`]).
    pub placement: smartdimm::PlacementPolicy,
    /// Memory-backend fidelity tier. Defaults to the tier-1 fast queue
    /// model: the event harness exists for high-concurrency sweeps where
    /// cycle-accurate DRAM would dominate wall-clock. Cycle-accurate runs
    /// stay valid at small connection counts.
    pub backend: BackendKind,
    /// Shard-settling worker threads (`0` = `SMARTDIMM_THREADS`).
    pub threads: usize,
    /// Mean exponential think time between a connection's requests (ns).
    pub think_time_ns: u64,
    /// Per-request probability (‰) that the connection tears down after
    /// the response and reconnects `reconnect_ns` later.
    pub churn_permille: u64,
    /// Reconnect penalty for churned connections (ns).
    pub reconnect_ns: u64,
    /// Per-request probability (‰) that the client drains the response
    /// slowly, delaying its next request by `slow_drain_ns`.
    pub slow_client_permille: u64,
    /// Extra drain time for slow clients (ns).
    pub slow_drain_ns: u64,
    /// Object catalog size (zipfian popularity).
    pub objects: usize,
    /// Zipf exponent `s` (`weight ∝ 1/rank^s`; 0 = uniform).
    pub zipf_s: f64,
    /// Smallest object size in bytes.
    pub min_object_bytes: usize,
    /// Largest object size in bytes (≤ 64 KB record limit).
    pub max_object_bytes: usize,
    /// Scratchpad-pages override for the SmartDIMM devices (pressure
    /// tests shrink it to force admission decisions).
    pub scratchpad_pages: Option<usize>,
    /// Requests parked between produce and socket-write/NIC-TX (the send
    /// queue). Parked offloads hold device resources, so this window is
    /// what turns load into queue pressure.
    pub inflight_window: usize,
    /// Admission control (SmartDIMM placement only).
    pub admission: AdmissionConfig,
}

impl Default for EventWorkloadConfig {
    fn default() -> Self {
        EventWorkloadConfig {
            connections: 4096,
            requests: 4000,
            workers: 64,
            ulp: UlpKind::Tls,
            corpus: corpus::Kind::Html,
            llc: None,
            costs: CostParams::default(),
            seed: 1,
            fault_seed: None,
            channels: 1,
            channel_interleave_lines: 1,
            dimms_per_channel: 1,
            sockets: 1,
            interconnect_penalty_cycles: 0,
            placement: smartdimm::PlacementPolicy::Static,
            backend: BackendKind::FastQueue,
            threads: 0,
            think_time_ns: 50_000,
            churn_permille: 0,
            reconnect_ns: 1_000_000,
            slow_client_permille: 0,
            slow_drain_ns: 200_000,
            objects: 2048,
            zipf_s: 1.0,
            min_object_bytes: 1024,
            max_object_bytes: 16384,
            scratchpad_pages: None,
            inflight_window: 64,
            admission: AdmissionConfig::default(),
        }
    }
}

/// A degenerate [`EventWorkloadConfig`] caught by
/// [`EventWorkloadConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventConfigError {
    /// `workers == 0`.
    ZeroWorkers,
    /// `connections == 0`.
    ZeroConnections,
    /// `requests == 0`.
    ZeroRequests,
    /// `objects == 0`.
    ZeroObjects,
    /// Object size range empty, zero, or above the 64 KB record limit.
    BadObjectSizes(usize, usize),
    /// `channels == 0`.
    ZeroChannels,
    /// `dimms_per_channel == 0`.
    ZeroDimms,
    /// `sockets` is zero or does not divide `channels` evenly.
    BadSockets(usize, usize),
    /// `churn_permille` or `slow_client_permille` above 1000.
    BadPermille(u64),
    /// `inflight_window == 0`.
    ZeroWindow,
}

impl std::fmt::Display for EventConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventConfigError::ZeroWorkers => write!(f, "workers must be >= 1"),
            EventConfigError::ZeroConnections => write!(f, "connections must be >= 1"),
            EventConfigError::ZeroRequests => write!(f, "requests must be >= 1"),
            EventConfigError::ZeroObjects => write!(f, "objects must be >= 1"),
            EventConfigError::BadObjectSizes(lo, hi) => {
                write!(f, "object sizes {lo}..={hi} outside 1..=65536 or empty")
            }
            EventConfigError::ZeroChannels => write!(f, "at least one memory channel"),
            EventConfigError::ZeroDimms => write!(f, "at least one DIMM per channel"),
            EventConfigError::BadSockets(ch, so) => {
                write!(f, "{ch} channels cannot split evenly across {so} sockets")
            }
            EventConfigError::BadPermille(v) => write!(f, "permille {v} above 1000"),
            EventConfigError::ZeroWindow => write!(f, "inflight_window must be >= 1"),
        }
    }
}

impl std::error::Error for EventConfigError {}

impl EventWorkloadConfig {
    /// Validates the configuration, returning the first degeneracy found.
    pub fn validate(&self) -> Result<(), EventConfigError> {
        if self.workers == 0 {
            return Err(EventConfigError::ZeroWorkers);
        }
        if self.connections == 0 {
            return Err(EventConfigError::ZeroConnections);
        }
        if self.requests == 0 {
            return Err(EventConfigError::ZeroRequests);
        }
        if self.objects == 0 {
            return Err(EventConfigError::ZeroObjects);
        }
        if self.min_object_bytes == 0
            || self.max_object_bytes > 65536
            || self.min_object_bytes > self.max_object_bytes
        {
            return Err(EventConfigError::BadObjectSizes(
                self.min_object_bytes,
                self.max_object_bytes,
            ));
        }
        if self.channels == 0 {
            return Err(EventConfigError::ZeroChannels);
        }
        if self.dimms_per_channel == 0 {
            return Err(EventConfigError::ZeroDimms);
        }
        if self.sockets == 0 || !self.channels.is_multiple_of(self.sockets) {
            return Err(EventConfigError::BadSockets(self.channels, self.sockets));
        }
        for p in [self.churn_permille, self.slow_client_permille] {
            if p > 1000 {
                return Err(EventConfigError::BadPermille(p));
            }
        }
        if self.inflight_window == 0 {
            return Err(EventConfigError::ZeroWindow);
        }
        Ok(())
    }
}

/// Measured event-harness metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct EventServerMetrics {
    /// Requests issued by the load generator.
    pub issued_requests: u64,
    /// Requests served to completion.
    pub completed_requests: u64,
    /// Requests shed by admission control (never served).
    pub shed_requests: u64,
    /// Admission decisions that fired (shed + fallback).
    pub admission_rejects: u64,
    /// Requests served on the CPU because the device was saturated.
    pub fallback_under_pressure: u64,
    /// Connection teardown/reconnect events.
    pub reconnects: u64,
    /// Responses drained by slow clients.
    pub slow_drains: u64,
    /// Application payload bytes delivered.
    pub delivered_bytes: u64,
    /// Virtual time from first arrival to last completion (ns).
    pub makespan_ns: f64,
    /// Delivered payload over makespan, in Gb/s.
    pub goodput_gbps: f64,
    /// Mean request latency (queue wait + service, ns).
    pub mean_latency_ns: f64,
    /// Median request latency (ns; 0 when nothing completed).
    pub p50_ns: u64,
    /// 99th-percentile request latency (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile request latency (ns).
    pub p999_ns: u64,
    /// Whether the sample count can resolve p999
    /// ([`simkit::QuantileEstimate::resolvable`]).
    pub p999_resolvable: bool,
    /// Highest queue-pressure scalar sampled during the run.
    pub max_pressure: f64,
    /// Lowest pressure observed at an admission rejection (0 when none
    /// fired) — always above the watermark when rejects exist.
    pub min_pressure_at_reject: f64,
    /// Full latency distribution (ns).
    pub latency: Histogram,
}

impl EventServerMetrics {
    /// Registers the harness metrics under `scope` for a `telemetry/v1`
    /// snapshot.
    pub fn export_telemetry(&self, scope: &mut simkit::telemetry::Scope) {
        scope.set_counter("issued_requests", self.issued_requests);
        scope.set_counter("completed_requests", self.completed_requests);
        scope.set_counter("shed_requests", self.shed_requests);
        scope.set_counter("admission_rejects", self.admission_rejects);
        scope.set_counter("fallback_under_pressure", self.fallback_under_pressure);
        scope.set_counter("reconnects", self.reconnects);
        scope.set_counter("slow_drains", self.slow_drains);
        scope.set_counter("delivered_bytes", self.delivered_bytes);
        scope.set_gauge("makespan_ns", self.makespan_ns);
        scope.set_gauge("goodput_gbps", self.goodput_gbps);
        scope.set_gauge("mean_latency_ns", self.mean_latency_ns);
        scope.set_gauge("max_pressure", self.max_pressure);
        scope.set_gauge("min_pressure_at_reject", self.min_pressure_at_reject);
        scope.set_histogram("latency_ns", &self.latency);
    }
}

/// A per-(connection, request) deterministic RNG. Derived by hashing
/// rather than drawn from a shared stream, so changing one knob (churn,
/// slow clients) never perturbs any other request's draws.
fn req_rng(seed: u64, conn: usize, req: u64, salt: u64) -> DetRng {
    let mix = seed
        ^ (conn as u64).wrapping_mul(0xA24B_AED4_963E_E407)
        ^ req.wrapping_mul(0x9FB2_1C65_1E98_DF25)
        ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    DetRng::new(mix)
}

/// Deterministic permille coin: true with probability `permille/1000`,
/// and monotone — the true-set for a higher permille is a superset of
/// the true-set for a lower one (same hash, higher threshold).
fn permille_coin(seed: u64, conn: usize, req: u64, salt: u64, permille: u64) -> bool {
    req_rng(seed, conn, req, salt).gen_range(0..1000) < permille
}

/// Zipfian popularity CDF over `objects` ranks (`weight ∝ 1/rank^s`).
///
/// The terminal bucket is pinned to exactly `1.0` so every popularity
/// draw in `[0, 1)` lands in-catalog. Normalizing by the accumulated
/// total usually gets there on its own (IEEE `x / x == 1.0`), but an
/// extreme exponent can overflow the accumulator to `+inf`, turning
/// earlier quotients into `0.0` and later ones into NaN — and a NaN
/// bucket breaks `partition_point`'s sorted-prefix contract, aliasing
/// draws onto the wrong object. Non-finite quotients are therefore
/// sanitized to `0.0` and the pinned terminal bucket absorbs the tail.
fn zipf_cdf(objects: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(objects);
    let mut acc = 0.0f64;
    for rank in 0..objects {
        acc += 1.0 / ((rank + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
        if !c.is_finite() {
            *c = 0.0;
        }
    }
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

/// Per-object deterministic body size in `[min, max]`.
fn object_len(cfg: &EventWorkloadConfig, object: u64) -> usize {
    let span = (cfg.max_object_bytes - cfg.min_object_bytes + 1) as u64;
    let off = req_rng(cfg.seed, 0, object, 0xB0D1).gen_range(0..span);
    cfg.min_object_bytes + off as usize
}

/// One scheduled request arrival.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    conn: usize,
    /// Per-connection request ordinal (drives the hash coins).
    req_no: u64,
}

/// A produced response parked in the send queue between the worker's
/// produce stage and the deferred socket-write/NIC-TX. Parked offloads
/// keep their scratchpad pages and translation-table entries live — the
/// asynchrony that turns load into device queue pressure.
struct Parked {
    fl: crate::server::Inflight,
    conn: usize,
    req_no: u64,
    /// Arrival virtual time (cycles).
    arrival: u64,
    /// Virtual time the worker finished producing (cycles).
    vdone: u64,
    /// Payload bytes.
    len: usize,
    /// Served on the CPU fallback engine.
    cpu: bool,
}

/// Runs the event-driven workload on the given platform.
///
/// # Panics
///
/// Panics if the platform cannot run the ULP
/// ([`PlatformKind::supports`]) or the configuration is degenerate
/// ([`EventWorkloadConfig::validate`]).
pub fn run_event_server(kind: PlatformKind, cfg: &EventWorkloadConfig) -> EventServerMetrics {
    run_event_server_instrumented(kind, cfg).0
}

/// [`run_event_server`], additionally exporting the harness metrics and
/// the post-run memory-hierarchy state under `scope`.
pub fn run_event_server_with_telemetry(
    kind: PlatformKind,
    cfg: &EventWorkloadConfig,
    scope: &mut simkit::telemetry::Scope,
) -> EventServerMetrics {
    let (metrics, mut host) = run_event_server_instrumented(kind, cfg);
    metrics.export_telemetry(scope);
    host.export_telemetry(scope.scope("host"));
    metrics
}

fn run_event_server_instrumented(
    kind: PlatformKind,
    cfg: &EventWorkloadConfig,
) -> (EventServerMetrics, CompCpyHost) {
    if let Err(e) = cfg.validate() {
        panic!("invalid EventWorkloadConfig: {e}");
    }

    let mut host_cfg = HostConfig::default();
    host_cfg.mem.llc = cfg.llc;
    host_cfg.mem.backend = cfg.backend;
    host_cfg.mem.dram.topology.channels = cfg.channels;
    host_cfg.mem.dram.topology.channel_interleave_lines = cfg.channel_interleave_lines.max(1);
    host_cfg.mem.dram.topology.dimms_per_channel = cfg.dimms_per_channel.max(1);
    host_cfg.mem.dram.topology.sockets = cfg.sockets.max(1);
    host_cfg.mem.dram.interconnect_penalty_cycles = cfg.interconnect_penalty_cycles;
    host_cfg.sched.policy = cfg.placement;
    host_cfg.threads = cfg.threads;
    if let Some(pages) = cfg.scratchpad_pages {
        host_cfg.dimm.scratchpad_pages = pages;
    }
    let mut host = CompCpyHost::new(host_cfg);
    if let Some(fault_seed) = cfg.fault_seed {
        let plan = simkit::FaultPlan::generate(fault_seed, cfg.requests as u64);
        host.set_fault_handle(simkit::FaultHandle::new(plan));
    }

    // The Engine only reads ulp/costs/corpus/seed from its config (stage
    // lengths are per-request); connections is clamped to the arena pool.
    let engine_cfg = WorkloadConfig {
        message_bytes: cfg.max_object_bytes,
        connections: cfg.connections.min(ARENA_SLOTS),
        workers: cfg.workers.max(1),
        ulp: cfg.ulp,
        requests: cfg.requests,
        corpus: cfg.corpus,
        llc: cfg.llc,
        costs: cfg.costs,
        seed: cfg.seed,
        fault_seed: cfg.fault_seed,
        channels: cfg.channels,
        channel_interleave_lines: cfg.channel_interleave_lines,
        dimms_per_channel: cfg.dimms_per_channel,
        sockets: cfg.sockets,
        interconnect_penalty_cycles: cfg.interconnect_penalty_cycles,
        placement: cfg.placement,
        backend: cfg.backend,
        threads: cfg.threads,
    };
    let mut engine = Engine::new(kind, &engine_cfg);
    // CPU fallback path for admission control (always constructible).
    let mut cpu_engine = Engine::new(PlatformKind::Cpu, &engine_cfg);

    let cdf = zipf_cdf(cfg.objects, cfg.zipf_s);
    // Which object's body currently occupies each arena slot's page-cache
    // region (a miss costs a DMA refill, like a page-cache eviction).
    let mut slot_object: Vec<Option<u64>> = vec![None; ARENA_SLOTS];

    // G/G/k workers: earliest-free virtual times.
    let mut workers: BinaryHeap<Reverse<u64>> = (0..cfg.workers).map(|_| Reverse(0u64)).collect();

    let mut q: EventQueue<Arrival> = EventQueue::new();

    // Fixed per-connection request budgets (first `requests % connections`
    // connections get one extra). The issued set of (connection, request)
    // pairs is therefore independent of event ordering, so knobs like
    // churn change *when* requests run, never *which* requests run — the
    // property behind the goodput-vs-churn monotonicity tests.
    let per_conn_budget = |conn: usize| -> u64 {
        let base = (cfg.requests / cfg.connections) as u64;
        base + u64::from(conn < cfg.requests % cfg.connections)
    };
    let mut issued = 0u64;

    // Stagger initial arrivals over one mean think time.
    for conn in 0..cfg.connections {
        if per_conn_budget(conn) == 0 {
            break;
        }
        let t0 = req_rng(cfg.seed, conn, 0, 0xA001).gen_range(0..cfg.think_time_ns.max(1));
        q.push(Cycle(ns_to_cycles(t0)), Arrival { conn, req_no: 0 });
        issued += 1;
    }

    let mut latency = Histogram::new("latency_ns", 1_000, 32_768);
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut rejects = 0u64;
    let mut fallbacks = 0u64;
    let mut reconnects = 0u64;
    let mut slow_drains = 0u64;
    let mut delivered_bytes = 0u64;
    let mut latency_sum_ns = 0.0f64;
    let mut first_arrival: Option<u64> = None;
    let mut last_completion = 0u64;
    let mut max_pressure = 0.0f64;
    let mut min_pressure_at_reject = f64::INFINITY;
    let mut pressure = 0.0f64;
    let mut processed = 0u64;
    let mut req_id = 0u64;

    let admission_active =
        kind == PlatformKind::SmartDimm && cfg.admission.policy != AdmissionPolicy::None;

    let mut parked: std::collections::VecDeque<Parked> = std::collections::VecDeque::new();
    let mut vnow = 0u64;
    // Shared NIC link: responses serialize onto the wire FIFO at
    // `costs.link_gbps`, so goodput saturates at the link rather than at
    // whatever the memory model can stream.
    let mut link_free = 0u64;

    // Slow-client drain and churn delays before a connection's next
    // request. Hash-derived per (connection, request): changing a knob
    // never perturbs any other request's draws.
    let mut next_gap_ns = |conn: usize, req_no: u64| -> u64 {
        let mut gap =
            req_rng(cfg.seed, conn, req_no, 0xE0E0).gen_exp(cfg.think_time_ns.max(1) as f64) as u64;
        if permille_coin(cfg.seed, conn, req_no, 0x510C, cfg.slow_client_permille) {
            slow_drains += 1;
            gap += cfg.slow_drain_ns;
        }
        if permille_coin(cfg.seed, conn, req_no, 0xC4A2, cfg.churn_permille) {
            reconnects += 1;
            gap += cfg.reconnect_ns;
        }
        gap
    };

    while !q.is_empty() || !parked.is_empty() {
        // Drain the oldest parked response when the send-queue window is
        // full (or nothing more arrives): deferred socket-write + NIC-TX
        // release the offload's device resources and complete the request.
        if parked.len() > cfg.inflight_window || q.is_empty() {
            if let Some(mut p) = parked.pop_front() {
                let serve_engine = if p.cpu { &mut cpu_engine } else { &mut engine };
                let m0 = host.mem().now();
                serve_engine.socket_write(&mut host, &mut p.fl);
                serve_engine.nic_tx(&mut host, &p.fl);
                let fin = host.mem().now() - m0;
                let wire_ns = (p.fl.out_len as f64 * 8.0 / cfg.costs.link_gbps).ceil() as u64;
                let tx_start = (p.vdone.max(vnow) + fin).max(link_free);
                let done = tx_start + ns_to_cycles(wire_ns);
                link_free = done;
                let latency_ns = cycles_to_ns(done - p.arrival);
                latency.record(latency_ns as u64);
                latency_sum_ns += latency_ns;
                completed += 1;
                delivered_bytes += p.len as u64;
                last_completion = last_completion.max(done);
                if p.req_no + 1 < per_conn_budget(p.conn) {
                    let gap = next_gap_ns(p.conn, p.req_no);
                    q.push(
                        Cycle(done + ns_to_cycles(gap)),
                        Arrival {
                            conn: p.conn,
                            req_no: p.req_no + 1,
                        },
                    );
                    issued += 1;
                }
            }
            continue;
        }

        let Some((Cycle(t), ev)) = q.pop() else {
            continue;
        };
        let Arrival { conn, req_no } = ev;
        vnow = vnow.max(t);
        first_arrival.get_or_insert(t);

        // Refresh the device-pressure sample on a fixed cadence.
        if kind == PlatformKind::SmartDimm && processed.is_multiple_of(PRESSURE_SAMPLE_EVERY) {
            pressure = host.queue_pressure().scalar();
            max_pressure = max_pressure.max(pressure);
        }
        processed += 1;

        let rejected = admission_active && pressure > cfg.admission.watermark;
        if rejected {
            rejects += 1;
            min_pressure_at_reject = min_pressure_at_reject.min(pressure);
        }

        if rejected && cfg.admission.policy == AdmissionPolicy::Shed {
            shed += 1;
            // The client retries after its usual gap from the rejection
            // instant.
            if req_no + 1 < per_conn_budget(conn) {
                let gap = next_gap_ns(conn, req_no);
                q.push(
                    Cycle(t + ns_to_cycles(gap)),
                    Arrival {
                        conn,
                        req_no: req_no + 1,
                    },
                );
                issued += 1;
            }
            continue;
        }

        // Object draw, page-cache fill on slot miss.
        let u = req_rng(cfg.seed, conn, req_no, 0xC0DE).gen_f64();
        let object = cdf.partition_point(|&c| c < u).min(cfg.objects - 1) as u64;
        let len = object_len(cfg, object);
        let slot = conn % ARENA_SLOTS;
        if slot_object[slot] != Some(object) {
            let body = cfg.corpus.generate(len, cfg.seed ^ object);
            host.mem_mut().dma_write(conn_file_addr(slot), &body);
            slot_object[slot] = Some(object);
        }

        // Worker queue: earliest-free worker, FIFO by arrival. The
        // worker is busy for the produce stage only; the response then
        // parks in the send queue.
        let Reverse(free_at) = workers.pop().unwrap_or(Reverse(0));
        let start = t.max(free_at);
        let serve_engine = if rejected {
            &mut cpu_engine
        } else {
            &mut engine
        };
        if rejected {
            fallbacks += 1;
        }
        let m0 = host.mem().now();
        let fl = serve_engine.produce_stage(&mut host, slot, req_id, len);
        let produce = host.mem().now() - m0;
        req_id += 1;
        let vdone = start + produce;
        workers.push(Reverse(vdone));
        parked.push_back(Parked {
            fl,
            conn,
            req_no,
            arrival: t,
            vdone,
            len,
            cpu: rejected,
        });
    }

    // Keep the memory clock caught up with virtual time so exported
    // host telemetry reflects the full run window.
    let vnow_ns = cycles_to_ns(last_completion) as u64;
    let mnow_ns = cycles_to_ns(host.mem().now().0) as u64;
    if vnow_ns > mnow_ns {
        advance_ns(host.mem_mut(), vnow_ns - mnow_ns);
    }

    let makespan_cycles = last_completion.saturating_sub(first_arrival.unwrap_or(0));
    let makespan_ns = cycles_to_ns(makespan_cycles).max(1.0);
    let goodput_gbps = delivered_bytes as f64 * 8.0 / makespan_ns;
    let p999 = latency.quantile_est(0.999);
    let metrics = EventServerMetrics {
        issued_requests: issued,
        completed_requests: completed,
        shed_requests: shed,
        admission_rejects: rejects,
        fallback_under_pressure: fallbacks,
        reconnects,
        slow_drains,
        delivered_bytes,
        makespan_ns,
        goodput_gbps,
        mean_latency_ns: if completed > 0 {
            latency_sum_ns / completed as f64
        } else {
            0.0
        },
        p50_ns: latency.quantile(0.5).unwrap_or(0),
        p99_ns: latency.quantile(0.99).unwrap_or(0),
        p999_ns: p999.map(|e| e.value).unwrap_or(0),
        p999_resolvable: p999.is_some_and(|e| e.resolvable),
        max_pressure,
        min_pressure_at_reject: if min_pressure_at_reject.is_finite() {
            min_pressure_at_reject
        } else {
            0.0
        },
        latency,
    };
    (metrics, host)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(ulp: UlpKind, conns: usize, reqs: usize) -> EventWorkloadConfig {
        EventWorkloadConfig {
            connections: conns,
            requests: reqs,
            workers: 16,
            ulp,
            objects: 256,
            min_object_bytes: 1024,
            max_object_bytes: 8192,
            llc: Some(CacheConfig::mb(2, 16)),
            ..EventWorkloadConfig::default()
        }
    }

    #[test]
    fn validate_catches_degenerate_event_configs() {
        assert_eq!(EventWorkloadConfig::default().validate(), Ok(()));
        let bad = EventWorkloadConfig {
            workers: 0,
            ..EventWorkloadConfig::default()
        };
        assert_eq!(bad.validate(), Err(EventConfigError::ZeroWorkers));
        let bad = EventWorkloadConfig {
            min_object_bytes: 8192,
            max_object_bytes: 4096,
            ..EventWorkloadConfig::default()
        };
        assert_eq!(
            bad.validate(),
            Err(EventConfigError::BadObjectSizes(8192, 4096))
        );
        let bad = EventWorkloadConfig {
            churn_permille: 1001,
            ..EventWorkloadConfig::default()
        };
        assert_eq!(bad.validate(), Err(EventConfigError::BadPermille(1001)));
    }

    #[test]
    fn zipf_cdf_terminal_bucket_is_pinned() {
        // The normalized CDF must cover the whole unit interval for any
        // exponent: a draw at `1.0 - ε` on a small catalog must land
        // in-catalog. Extreme exponents overflow the accumulator to
        // `+inf` — pre-fix, the quotients came out `0.0`/NaN, and a NaN
        // bucket breaks `partition_point`'s sorted-prefix contract.
        for s in [0.0, 1.0, 50.0, 700.0, 5000.0, -700.0, -5000.0] {
            let cdf = zipf_cdf(4, s);
            assert!(
                cdf.iter().all(|c| c.is_finite()),
                "s={s}: non-finite bucket in {cdf:?}"
            );
            assert!(
                cdf.windows(2).all(|w| w[0] <= w[1]),
                "s={s}: CDF not monotone: {cdf:?}"
            );
            assert_eq!(*cdf.last().unwrap(), 1.0, "s={s}: terminal bucket");
            let u = 1.0 - f64::EPSILON;
            let idx = cdf.partition_point(|&c| c < u);
            assert!(idx < 4, "s={s}: draw at 1-eps indexed past the catalog");
        }
    }

    #[test]
    fn zipf_negative_exponent_weights_the_tail() {
        // weight ∝ rank^|s| for negative s: the heaviest object is the
        // *last* rank. Pre-fix, the overflowed CDF aliased a mid-range
        // draw onto rank 1 instead of the dominant terminal rank.
        let cdf = zipf_cdf(4, -5000.0);
        assert_eq!(cdf.partition_point(|&c| c < 0.5), 3);
    }

    #[test]
    fn event_validate_catches_bad_topology() {
        let bad = EventWorkloadConfig {
            dimms_per_channel: 0,
            ..EventWorkloadConfig::default()
        };
        assert_eq!(bad.validate(), Err(EventConfigError::ZeroDimms));
        let bad = EventWorkloadConfig {
            channels: 2,
            sockets: 3,
            ..EventWorkloadConfig::default()
        };
        assert_eq!(bad.validate(), Err(EventConfigError::BadSockets(2, 3)));
    }

    #[test]
    fn serves_every_issued_request_without_admission() {
        let cfg = quick(UlpKind::Tls, 512, 800);
        let m = run_event_server(PlatformKind::SmartDimm, &cfg);
        assert_eq!(m.issued_requests, 800);
        assert_eq!(m.completed_requests, 800);
        assert_eq!(m.shed_requests, 0);
        assert_eq!(m.admission_rejects, 0);
        assert!(m.goodput_gbps > 0.0);
        assert!(m.p50_ns > 0 && m.p99_ns >= m.p50_ns);
    }

    #[test]
    fn high_concurrency_run_is_deterministic() {
        let cfg = EventWorkloadConfig {
            connections: 10_240,
            requests: 1500,
            churn_permille: 100,
            slow_client_permille: 50,
            ..quick(UlpKind::Tls, 0, 0)
        };
        let a = run_event_server(PlatformKind::SmartDimm, &cfg);
        let b = run_event_server(PlatformKind::SmartDimm, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.completed_requests, 1500);
    }

    #[test]
    fn churn_and_slow_clients_fire_on_multi_request_connections() {
        // Churn/drain coins gate the *next* request, so connections need
        // budgets above one request for the knobs to bite.
        let cfg = EventWorkloadConfig {
            churn_permille: 150,
            slow_client_permille: 100,
            ..quick(UlpKind::Tls, 256, 1200)
        };
        let m = run_event_server(PlatformKind::SmartDimm, &cfg);
        assert!(m.reconnects > 0, "150\u{2030} churn over ~4 reqs/conn");
        assert!(m.slow_drains > 0, "100\u{2030} slow clients");
        assert_eq!(m.completed_requests, 1200);
    }

    #[test]
    fn queueing_dominates_tail_when_workers_are_scarce() {
        // Same offered load, 2 workers vs 64: the scarce pool's latency
        // is queue wait, the plentiful pool's is mostly service time.
        let scarce = EventWorkloadConfig {
            workers: 2,
            think_time_ns: 1_000,
            ..quick(UlpKind::Tls, 512, 1200)
        };
        let plentiful = EventWorkloadConfig {
            workers: 64,
            ..scarce.clone()
        };
        let s = run_event_server(PlatformKind::Cpu, &scarce);
        let p = run_event_server(PlatformKind::Cpu, &plentiful);
        assert!(s.p999_resolvable, "1200 samples resolve p999");
        assert!(
            s.p99_ns > 4 * p.p99_ns,
            "scarce p99 {} vs plentiful p99 {}",
            s.p99_ns,
            p.p99_ns
        );
        assert!(s.p999_ns >= s.p99_ns && s.p99_ns >= s.p50_ns);
    }
}
