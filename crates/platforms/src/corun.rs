//! Performance isolation (Table I): Nginx co-running with a
//! cache-intensive application.
//!
//! The paper co-runs 10 Nginx threads with 10 instances of SPEC 505.mcf
//! and reports each side's slowdown relative to its solo run. 505.mcf is
//! a pointer-chasing network-simplex code with a hot arc-array region
//! (LLC-resident when solo) and a large irregular cold region.
//!
//! Concurrency is modelled with `memsys`'s background-traffic injector:
//! while one side runs in the foreground, the other side's access
//! pattern is injected between its memory operations — evicting LLC
//! lines and occupying DRAM buses/banks exactly as a co-scheduled
//! workload would, without serializing the two timelines. Each side's
//! slowdown is then its foreground cycles per unit of work, co-run vs
//! solo.

use dram::PhysAddr;
use memsys::BackgroundTraffic;
use simkit::DetRng;
use smartdimm::CompCpyHost;

use crate::server::{PlatformKind, UlpKind, WorkloadConfig};

/// A 505.mcf-like pointer-chasing workload: a *hot* region (arc arrays)
/// that is LLC-resident when run alone, plus a *cold* region (the network
/// graph) whose irregular accesses always miss.
#[derive(Debug, Clone)]
pub struct McfLike {
    base: PhysAddr,
    cold_chain: Vec<u32>,
    hot_chain: Vec<u32>,
    cold_off: u64,
    cursor: usize,
    hot_cursor: usize,
    rng: DetRng,
}

/// Hot-region size: LLC-resident when solo, evictable under co-run.
pub const MCF_HOT_BYTES: usize = 1024 * 1024;
/// Fraction of accesses that touch the hot region.
pub const MCF_HOT_FRACTION: f64 = 0.7;
/// mcf arena placement — far above the server's buffer regions.
pub const MCF_BASE: u64 = 0x7000_0000;

impl McfLike {
    /// Builds an mcf-like workload whose cold region spans
    /// `footprint_bytes`, starting at `base`.
    pub fn new(base: PhysAddr, footprint_bytes: usize, seed: u64) -> McfLike {
        let mut rng = DetRng::new(seed);
        let cold_lines = (footprint_bytes / 64).max(1);
        let mut cold_chain: Vec<u32> = (0..cold_lines as u32).collect();
        rng.shuffle(&mut cold_chain);
        let hot_lines = MCF_HOT_BYTES / 64;
        let mut hot_chain: Vec<u32> = (0..hot_lines as u32).collect();
        rng.shuffle(&mut hot_chain);
        McfLike {
            base,
            cold_chain,
            hot_chain,
            cold_off: MCF_HOT_BYTES as u64,
            cursor: 0,
            hot_cursor: 0,
            rng,
        }
    }

    /// Performs `accesses` dependent loads, returning the cycles consumed.
    pub fn run(&mut self, host: &mut CompCpyHost, accesses: usize) -> u64 {
        let t0 = host.mem().now();
        for _ in 0..accesses {
            let addr = if self.rng.gen_bool(MCF_HOT_FRACTION) {
                let line = self.hot_chain[self.hot_cursor] as u64;
                self.hot_cursor = (self.hot_cursor + 1) % self.hot_chain.len();
                PhysAddr(self.base.0 + line * 64)
            } else {
                let line = self.cold_chain[self.cursor] as u64;
                self.cursor = (self.cursor + 1) % self.cold_chain.len();
                PhysAddr(self.base.0 + self.cold_off + line * 64)
            };
            let _ = host.mem_mut().load_line(addr, 1);
        }
        host.mem().now() - t0
    }
}

/// Slowdowns of both actors in a co-run, normalized to their solo runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorunReport {
    /// Server request-latency inflation (e.g. 0.15 = 15 % slower).
    pub nginx_slowdown: f64,
    /// mcf per-access latency inflation.
    pub mcf_slowdown: f64,
    /// Solo server cycles per request.
    pub nginx_solo_cycles: f64,
    /// Co-run server cycles per request.
    pub nginx_corun_cycles: f64,
}

/// The mcf access pattern as background traffic for the server side.
fn mcf_background(footprint: usize, per_op: f64, seed: u64) -> BackgroundTraffic {
    BackgroundTraffic {
        base: PhysAddr(MCF_BASE),
        hot_lines: (MCF_HOT_BYTES / 64) as u64,
        cold_lines: (footprint / 64) as u64,
        hot_fraction: MCF_HOT_FRACTION,
        per_op,
        class: 1,
        seed,
    }
}

/// A server-like access pattern as background traffic for the mcf side:
/// mostly streaming over the connection buffer arenas, with a small hot
/// set (metadata, stack). The pressure depends on the placement — that is
/// Table I's finding: per request, the CPU path sweeps four buffers
/// through the cache (page cache, user buffer, record, skb) plus the
/// cipher's reads; SmartDIMM touches two (its copy *is* the transform and
/// the NIC reads the recycled record from DRAM); QuickAssist adds DMA
/// staging copies on top of the CPU path.
fn server_background(
    kind: PlatformKind,
    cfg: &WorkloadConfig,
    per_op: f64,
    seed: u64,
) -> BackgroundTraffic {
    // (buffer passes per request, memory-op intensity vs the CPU path)
    let (regions, op_factor) = match kind {
        PlatformKind::Cpu => (4.0, 1.0),
        PlatformKind::SmartNic => (4.0, 0.8), // no cipher pass
        PlatformKind::QuickAssist => (5.0, 1.3), // + DMA staging
        PlatformKind::SmartDimm => (2.0, 0.45), // copy-is-the-transform
    };
    let per_conn_bytes = (regions * cfg.message_bytes as f64) as usize;
    BackgroundTraffic {
        base: PhysAddr(0x0200_0000),
        hot_lines: 4096, // 256 KB of hot server state
        cold_lines: ((cfg.connections * per_conn_bytes) / 64) as u64,
        hot_fraction: 0.25,
        per_op: per_op * op_factor,
        class: 0,
        seed,
    }
}

/// Server foreground cycles per request with optional background traffic.
fn measure_server(kind: PlatformKind, cfg: &WorkloadConfig, bg: Option<BackgroundTraffic>) -> f64 {
    let mut host_cfg = smartdimm::HostConfig::default();
    host_cfg.mem.llc = cfg.llc;
    let mut host = CompCpyHost::new(host_cfg);
    let mut rng = DetRng::new(cfg.seed);
    let mut engine = crate::server::Engine::new(kind, cfg);
    engine.preload(&mut host);
    host.mem_mut().set_background(bg);

    let batch = crate::server::batch_size(cfg).min(cfg.requests.max(1));
    let warmup_batches = (cfg.requests / 4 / batch).max(1) + 1;
    let measure_batches = cfg.requests.div_ceil(batch);
    let mut cycles = 0u64;
    for phase in 0..2 {
        let batches = if phase == 0 {
            warmup_batches
        } else {
            measure_batches
        };
        for _ in 0..batches {
            let conns: Vec<usize> = (0..batch)
                .map(|_| rng.gen_range(0..cfg.connections as u64) as usize)
                .collect();
            let t0 = host.mem().now();
            engine.run_batch(&mut host, &conns);
            if phase == 1 {
                cycles += host.mem().now() - t0;
            }
        }
    }
    cycles as f64 / (measure_batches * batch) as f64
}

/// mcf foreground cycles per access with optional background traffic.
fn measure_mcf(cfg: &WorkloadConfig, footprint: usize, bg: Option<BackgroundTraffic>) -> f64 {
    let mut host_cfg = smartdimm::HostConfig::default();
    host_cfg.mem.llc = cfg.llc;
    let mut host = CompCpyHost::new(host_cfg);
    let mut mcf = McfLike::new(PhysAddr(MCF_BASE), footprint, cfg.seed);
    host.mem_mut().set_background(bg);
    mcf.run(&mut host, 30_000); // warm the hot region
    mcf.run(&mut host, 60_000) as f64 / 60_000.0
}

/// Runs solo and co-run phases for the given platform and returns the
/// Table I slowdowns.
///
/// `mcf_footprint` is the co-runner's cold working set; `intensity` is
/// the ratio of co-runner accesses per foreground memory operation (1.0 ≈
/// equal memory intensity on both sides, as with 10 mcf instances vs 10
/// server threads).
pub fn run_corun(
    kind: PlatformKind,
    cfg: &WorkloadConfig,
    mcf_footprint: usize,
    intensity: f64,
) -> CorunReport {
    assert!(cfg.ulp != UlpKind::None, "co-run needs a ULP workload");

    let nginx_solo = measure_server(kind, cfg, None);
    let nginx_corun = measure_server(
        kind,
        cfg,
        Some(mcf_background(mcf_footprint, intensity, cfg.seed ^ 0xBF)),
    );
    let mcf_solo = measure_mcf(cfg, mcf_footprint, None);
    let mcf_corun = measure_mcf(
        cfg,
        mcf_footprint,
        Some(server_background(kind, cfg, intensity, cfg.seed ^ 0x5E)),
    );

    CorunReport {
        nginx_slowdown: nginx_corun / nginx_solo - 1.0,
        mcf_slowdown: mcf_corun / mcf_solo - 1.0,
        nginx_solo_cycles: nginx_solo,
        nginx_corun_cycles: nginx_corun,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache::CacheConfig;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            message_bytes: 4096,
            connections: 64, // LLC-resident solo, evictable under co-run
            requests: 200,
            ulp: UlpKind::Tls,
            llc: Some(CacheConfig::mb(2, 16)),
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn corun_slows_both_sides() {
        let report = run_corun(PlatformKind::Cpu, &cfg(), 16 << 20, 1.0);
        assert!(report.nginx_slowdown > 0.0, "{report:?}");
        assert!(report.mcf_slowdown > 0.0, "{report:?}");
        assert!(report.nginx_slowdown < 2.0);
        assert!(report.mcf_slowdown < 2.0);
    }

    #[test]
    fn smartdimm_interferes_less_than_cpu() {
        // Table I: offloading the ULP reduces the server's cache
        // footprint, so the co-runner suffers less.
        let cpu = run_corun(PlatformKind::Cpu, &cfg(), 16 << 20, 1.0);
        let sd = run_corun(PlatformKind::SmartDimm, &cfg(), 16 << 20, 1.0);
        assert!(
            sd.mcf_slowdown < cpu.mcf_slowdown,
            "smartdimm mcf {} vs cpu mcf {}",
            sd.mcf_slowdown,
            cpu.mcf_slowdown
        );
        assert!(sd.nginx_slowdown > 0.0, "{sd:?}");
    }

    #[test]
    fn mcf_has_realistic_miss_profile() {
        let mut host = CompCpyHost::new(smartdimm::HostConfig {
            mem: memsys::MemConfig {
                llc: Some(CacheConfig::mb(2, 16)),
                ..Default::default()
            },
            ..Default::default()
        });
        let mut mcf = McfLike::new(PhysAddr(MCF_BASE), 16 << 20, 3);
        mcf.run(&mut host, 30_000);
        host.mem_mut().llc_mut().reset_stats();
        mcf.run(&mut host, 30_000);
        let misses = host.mem().llc().stats().miss_rate();
        // Cold region always misses (~30% of accesses); hot region hits.
        assert!((0.2..0.6).contains(&misses), "mcf miss rate {misses}");
    }
}
