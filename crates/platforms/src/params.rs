//! Calibrated cost parameters for the platform models.
//!
//! Every number here is a *published-figure-scale* constant, not a
//! measurement of this machine: AES-NI throughput from Gueron's AES-NI
//! white paper, zlib level-6 software throughput from the CDPU/Accelerometer
//! characterizations, QAT per-call costs from the QTLS paper (Hu et al.),
//! SmartNIC per-record costs from Pismenny et al. The absolute RPS
//! numbers that come out are therefore model estimates; the evaluation
//! compares *ratios* between platforms, which is what the paper reports.

/// Cost constants shared by the server flows (times in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Host core clock in GHz (Xeon Gold 6242: 2.8 GHz base).
    pub cpu_ghz: f64,
    /// Per-request protocol overhead: parse, socket calls, scheduling.
    pub request_overhead_ns: u64,
    /// AES-GCM with AES-NI, CPU cycles per byte.
    pub aesni_cpb: f64,
    /// Software deflate (zlib-6-class), CPU cycles per byte.
    pub deflate_cpb: f64,
    /// Software inflate, CPU cycles per byte.
    pub inflate_cpb: f64,
    /// QuickAssist: CPU cost per synchronous offload — descriptor build,
    /// doorbell, and completion polling (the stock sync driver burns tens
    /// of microseconds per call; QTLS's async rework exists precisely
    /// because of this).
    pub qat_call_cpu_ns: u64,
    /// QuickAssist: device latency floor per offload (PCIe round trips).
    pub qat_latency_ns: u64,
    /// QuickAssist: device throughput in Gbit/s.
    pub qat_gbps: f64,
    /// SmartNIC: per-record driver cost to install/advance inline state.
    pub nic_record_init_ns: u64,
    /// SmartDIMM: MMIO write cost is taken from `memsys`; this is the
    /// extra driver bookkeeping per CompCpy call.
    pub compcpy_sw_overhead_ns: u64,
    /// Network link rate in Gbit/s.
    pub link_gbps: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cpu_ghz: 2.8,
            request_overhead_ns: 2_500,
            aesni_cpb: 1.0,
            deflate_cpb: 35.0,
            inflate_cpb: 9.0,
            qat_call_cpu_ns: 25_000,
            qat_latency_ns: 12_000,
            qat_gbps: 40.0,
            nic_record_init_ns: 1_800,
            compcpy_sw_overhead_ns: 300,
            link_gbps: 100.0,
        }
    }
}

impl CostParams {
    /// CPU nanoseconds to run a `cycles_per_byte` kernel over `bytes`.
    pub fn cpu_ns(&self, cycles_per_byte: f64, bytes: usize) -> u64 {
        (bytes as f64 * cycles_per_byte / self.cpu_ghz).ceil() as u64
    }

    /// Device nanoseconds to push `bytes` through a `gbps` accelerator.
    pub fn accel_ns(&self, gbps: f64, bytes: usize) -> u64 {
        ((bytes * 8) as f64 / gbps).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aesni_is_much_cheaper_than_software_deflate() {
        let p = CostParams::default();
        assert!(p.cpu_ns(p.deflate_cpb, 4096) > 20 * p.cpu_ns(p.aesni_cpb, 4096));
    }

    #[test]
    fn cpu_ns_scales_linearly() {
        let p = CostParams::default();
        let one = p.cpu_ns(1.0, 1000);
        let four = p.cpu_ns(1.0, 4000);
        assert!((four as f64 / one as f64 - 4.0).abs() < 0.05);
    }

    #[test]
    fn accel_ns_matches_rate() {
        let p = CostParams::default();
        // 40 Gbps over 4 KB = 4096*8/40 ns ≈ 819 ns.
        let ns = p.accel_ns(40.0, 4096);
        assert!((810..=830).contains(&ns), "{ns}");
    }
}
