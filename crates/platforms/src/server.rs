//! The Nginx-like server harness (§VI).
//!
//! Reproduces the paper's testbed: a web server with `workers` threads
//! serving `message_bytes` responses over `connections` persistent
//! connections, with the ULP executed on one of the four placements.
//!
//! Every request's memory traffic — page-cache reads, record-buffer
//! writes, socket copies, DMA — runs through the real LLC + DDR4
//! simulators, so cache thrashing with rising connection counts (Fig. 3)
//! and the memory-bandwidth differences between placements (Fig. 11/12)
//! *emerge* from the model rather than being assumed. Pure compute
//! (AES-NI, zlib, PCIe latencies) is charged from [`CostParams`].
//!
//! **Why phases are batched.** An event-driven server multiplexes many
//! connections per worker: between producing a response (ULP) and writing
//! it to the socket, the worker handles other connections' events, and
//! between the socket write and the NIC's DMA the data sits in the send
//! queue. That *asynchrony* is what pushes buffers out of the LLC — the
//! paper's "ping-pong access pattern" (Fig. 1). The harness models it by
//! running each pipeline stage over a batch of in-flight requests before
//! moving to the next stage, giving buffers realistic reuse distances.
//! Aggregate throughput is then scaled to the worker pool:
//! `RPS = min(workers/avg_latency, link, accelerator)`.

use cache::CacheConfig;
use dram::{BackendKind, PhysAddr};
use memsys::MemSystem;
use simkit::DetRng;
use smartdimm::{CompCpyHost, HostConfig, OffloadHandle, OffloadOp};
use ulp_compress::corpus;
use ulp_crypto::gcm::AesGcm;

use crate::params::CostParams;

/// Which ULP the server applies to each response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UlpKind {
    /// Plain HTTP (sendfile): no transformation — the Fig. 3 baseline.
    None,
    /// TLS AES-128-GCM encryption (HTTPS).
    Tls,
    /// Deflate compression (Content-Encoding: deflate).
    Compression,
}

/// Accelerator placement under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// ULP in software on the host cores.
    Cpu,
    /// Autonomous inline NIC offload (TLS only).
    SmartNic,
    /// PCIe lookaside accelerator.
    QuickAssist,
    /// Near-memory CompCpy offload.
    SmartDimm,
}

impl PlatformKind {
    /// Whether this placement can run the given ULP (§III Obs. 1: the
    /// SmartNIC cannot offload non-size-preserving transforms).
    pub fn supports(&self, ulp: UlpKind) -> bool {
        !(matches!(self, PlatformKind::SmartNic) && matches!(ulp, UlpKind::Compression))
    }
}

/// Workload description.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Response size in bytes (the paper sweeps 4 KB / 16 KB / 64 KB).
    pub message_bytes: usize,
    /// Concurrent persistent connections (wrk uses 1024; max 2048).
    pub connections: usize,
    /// Server worker threads (the paper uses 10).
    pub workers: usize,
    /// The ULP under test.
    pub ulp: UlpKind,
    /// Measured requests (after an automatic warmup).
    pub requests: usize,
    /// Content generator for response bodies.
    pub corpus: corpus::Kind,
    /// LLC geometry override (default 16 MB / 16-way).
    pub llc: Option<CacheConfig>,
    /// Cost constants.
    pub costs: CostParams,
    /// RNG seed (connection scheduling).
    pub seed: u64,
    /// When set, a deterministic [`simkit::FaultPlan`] generated from this
    /// seed is installed on the SmartDIMM host (tests only).
    pub fault_seed: Option<u64>,
    /// Memory channels, each backed by its own SmartDIMM shard (§V-D).
    /// The connection arenas spread across channels by address, so
    /// workers shard naturally: with coarse interleave each connection's
    /// buffers pin to one shard, with fine interleave every offload
    /// stripes across all of them.
    pub channels: usize,
    /// Consecutive cachelines per channel before the mapping switches
    /// (§V-D interleave granularity; 64 = page-granular/coarse).
    pub channel_interleave_lines: usize,
    /// DIMMs per channel (scale-out topology). Only slot 0 of each
    /// channel carries the buffer device; sources landing on the
    /// capacity DIMMs are re-homed by the offload scheduler.
    pub dimms_per_channel: usize,
    /// CPU sockets; `channels` must split evenly across them. Channels
    /// on non-home sockets pay the interconnect penalty per CAS.
    pub sockets: usize,
    /// Extra cycles a CAS to a remote-socket channel pays.
    pub interconnect_penalty_cycles: u64,
    /// Offload placement policy (see [`smartdimm::sched`]).
    pub placement: smartdimm::PlacementPolicy,
    /// Memory-backend fidelity tier (default cycle-accurate). The fast
    /// queue model is functionally identical by contract — the
    /// differential harness pins it — and trades timing fidelity for
    /// wall-clock speed on long sweeps.
    pub backend: BackendKind,
    /// Worker threads for parallel channel-shard settling. `0` (the
    /// default) defers to the `SMARTDIMM_THREADS` environment variable
    /// (sequential when unset). Simulated results are byte-identical
    /// for every value — only wall-clock changes ([`simkit::par`]).
    pub threads: usize,
}

/// A degenerate [`WorkloadConfig`] caught by [`WorkloadConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadConfigError {
    /// `workers == 0`: the per-worker batch split would divide by zero.
    ZeroWorkers,
    /// `connections == 0`: nothing to serve.
    ZeroConnections,
    /// `connections` exceeds the lock-step harness's arena limit (the
    /// staggered buffer regions overlap past 1024 connections; the
    /// event-driven harness in [`crate::eventsim`] multiplexes larger
    /// connection counts over a bounded arena pool instead).
    TooManyConnections(usize),
    /// `requests == 0`: nothing to measure.
    ZeroRequests,
    /// `message_bytes` is zero or exceeds the 64 KB record limit.
    BadMessageSize(usize),
    /// `channels == 0`: at least one memory channel is required.
    ZeroChannels,
    /// `dimms_per_channel == 0`.
    ZeroDimms,
    /// `sockets` is zero or does not divide `channels` evenly.
    BadSockets(usize, usize),
}

impl std::fmt::Display for WorkloadConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadConfigError::ZeroWorkers => {
                write!(
                    f,
                    "workers must be >= 1 (a zero-worker pool serves nothing)"
                )
            }
            WorkloadConfigError::ZeroConnections => write!(f, "connections must be >= 1"),
            WorkloadConfigError::TooManyConnections(n) => {
                write!(
                    f,
                    "{n} connections exceeds the lock-step arena limit of 1024; \
                     use the event-driven harness (eventsim) for larger counts"
                )
            }
            WorkloadConfigError::ZeroRequests => write!(f, "requests must be >= 1"),
            WorkloadConfigError::BadMessageSize(n) => {
                write!(f, "message_bytes {n} outside 1..=65536")
            }
            WorkloadConfigError::ZeroChannels => write!(f, "at least one memory channel"),
            WorkloadConfigError::ZeroDimms => write!(f, "at least one DIMM per channel"),
            WorkloadConfigError::BadSockets(ch, so) => {
                write!(f, "{ch} channels cannot split evenly across {so} sockets")
            }
        }
    }
}

impl std::error::Error for WorkloadConfigError {}

impl WorkloadConfig {
    /// Validates the configuration, returning the first degeneracy found.
    /// [`run_server`] calls this up front and panics with the rendered
    /// error, so a `workers: 0` misconfiguration fails with a message
    /// instead of a divide-by-zero deep inside the batch split.
    pub fn validate(&self) -> Result<(), WorkloadConfigError> {
        if self.message_bytes == 0 || self.message_bytes > 65536 {
            return Err(WorkloadConfigError::BadMessageSize(self.message_bytes));
        }
        if self.workers == 0 {
            return Err(WorkloadConfigError::ZeroWorkers);
        }
        if self.connections == 0 {
            return Err(WorkloadConfigError::ZeroConnections);
        }
        if self.connections > 1024 {
            return Err(WorkloadConfigError::TooManyConnections(self.connections));
        }
        if self.requests == 0 {
            return Err(WorkloadConfigError::ZeroRequests);
        }
        if self.channels == 0 {
            return Err(WorkloadConfigError::ZeroChannels);
        }
        if self.dimms_per_channel == 0 {
            return Err(WorkloadConfigError::ZeroDimms);
        }
        if self.sockets == 0 || !self.channels.is_multiple_of(self.sockets) {
            return Err(WorkloadConfigError::BadSockets(self.channels, self.sockets));
        }
        Ok(())
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            message_bytes: 4096,
            connections: 1024,
            workers: 10,
            ulp: UlpKind::Tls,
            requests: 2000,
            corpus: corpus::Kind::Html,
            llc: None,
            costs: CostParams::default(),
            seed: 1,
            fault_seed: None,
            channels: 1,
            channel_interleave_lines: 1,
            dimms_per_channel: 1,
            sockets: 1,
            interconnect_penalty_cycles: 0,
            placement: smartdimm::PlacementPolicy::Static,
            backend: BackendKind::default(),
            threads: 0,
        }
    }
}

/// Measured server metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerMetrics {
    /// Requests per second across all workers.
    pub rps: f64,
    /// CPU utilization (0–1 across the worker pool).
    pub cpu_utilization: f64,
    /// DRAM bandwidth in bytes/second.
    pub mem_bw_bytes: f64,
    /// DRAM bytes moved per request.
    pub dram_bytes_per_req: f64,
    /// Mean request service latency (ns).
    pub avg_request_ns: f64,
    /// CPU busy time per request (ns).
    pub cpu_ns_per_req: f64,
    /// Bytes put on the wire per request.
    pub wire_bytes_per_req: f64,
    /// LLC miss rate over the measurement window.
    pub llc_miss_rate: f64,
    /// Force-Recycle invocations during the measurement (SmartDIMM).
    pub force_recycles: u64,
}

impl ServerMetrics {
    /// Memory bandwidth in GB/s.
    pub fn mem_bw_gbs(&self) -> f64 {
        self.mem_bw_bytes / 1e9
    }

    /// Registers the harness metrics under `scope` for a `telemetry/v1`
    /// snapshot.
    pub fn export_telemetry(&self, scope: &mut simkit::telemetry::Scope) {
        scope.set_gauge("rps", self.rps);
        scope.set_gauge("cpu_utilization", self.cpu_utilization);
        scope.set_gauge("mem_bw_bytes", self.mem_bw_bytes);
        scope.set_gauge("dram_bytes_per_req", self.dram_bytes_per_req);
        scope.set_gauge("avg_request_ns", self.avg_request_ns);
        scope.set_gauge("cpu_ns_per_req", self.cpu_ns_per_req);
        scope.set_gauge("wire_bytes_per_req", self.wire_bytes_per_req);
        scope.set_gauge("llc_miss_rate", self.llc_miss_rate);
        scope.set_counter("force_recycles", self.force_recycles);
    }
}

// Buffer arenas. The per-connection stride is an *odd* number of pages
// and the three regions are staggered, so buffers spread across LLC sets
// the way a real page allocator's scattered physical pages would — a
// power-of-two layout would alias every buffer into the same few sets.
const FILE_BASE: u64 = 0x0200_0000;
const UBUF_BASE: u64 = 0x0C00_3000;
const REC_BASE: u64 = 0x1600_5000;
const SKB_BASE: u64 = 0x2A00_A000;
const CONN_STRIDE: u64 = 0x0002_1000; // 33 pages per connection per region
const PAGE: usize = 4096;

// Software-deflate working state (zlib level 6): a 32 KB sliding window
// plus hash head/prev tables — ~160 KB of irregularly accessed state per
// stream. This state is what makes on-CPU compression so cache-hostile;
// the Deflate DSA keeps the equivalent state in on-DIMM Config Memory.
const CTX_BASE: u64 = 0x5000_0000;
const CTX_STRIDE: u64 = 0x0002_9000; // 41 pages per connection
const CTX_BYTES: u64 = 160 * 1024;

/// Physical address of `conn`'s page-cache content (used by the co-run
/// harness to preload bodies).
pub fn conn_file_addr(conn: usize) -> PhysAddr {
    PhysAddr(FILE_BASE + conn as u64 * CONN_STRIDE)
}

fn ubuf_addr(conn: usize) -> PhysAddr {
    PhysAddr(UBUF_BASE + conn as u64 * CONN_STRIDE)
}

fn rec_addr(conn: usize) -> PhysAddr {
    PhysAddr(REC_BASE + conn as u64 * CONN_STRIDE)
}

fn skb_addr(conn: usize) -> PhysAddr {
    PhysAddr(SKB_BASE + conn as u64 * CONN_STRIDE)
}

/// Touches the per-stream deflate working state the way zlib's hash-chain
/// matcher does: scattered reads over the hash tables, sequential writes
/// into the window — per 4 KB of input, roughly 16 KB read + 8 KB written.
fn touch_deflate_state(host: &mut CompCpyHost, conn: usize, seed: u64, pages: usize) {
    let base = CTX_BASE + conn as u64 * CTX_STRIDE;
    let lines = CTX_BYTES / 64;
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..pages {
        for i in 0..384u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (x >> 33) % lines;
            let addr = PhysAddr(base + line * 64);
            if i % 3 == 2 {
                let data = host.mem_mut().load_line(addr, 0);
                host.mem_mut().store_line(addr, data, 0);
            } else {
                let _ = host.mem_mut().load_line(addr, 0);
            }
        }
    }
}

/// DDR command-clock cycles per nanosecond (1600 MHz → 1.6 cyc/ns).
/// Live code converts via the exact rational forms below; the float
/// constant remains as the committed ratio the equivalence tests pin.
#[cfg_attr(not(test), allow(dead_code))]
const CYC_PER_NS: f64 = 1.6;

/// Nanoseconds → command-clock cycles, rounded to nearest.
///
/// 1.6 cyc/ns is the rational 8/5, so the conversion is computed in exact
/// integer arithmetic as `(ns * 8 + 2) / 5`. The fractional part of
/// `8·ns/5` is always one of {0, .2, .4, .6, .8} — never .5 — so adding 2
/// before the floor division rounds to nearest with no tie ambiguity, and
/// the result is byte-identical to the previous
/// `(ns as f64 * 1.6).round()` for every `ns` a run can produce (the
/// float path only diverges once `ns` approaches 2^50, far beyond any
/// simulated duration; `exact_conversion_matches_float_path` pins this).
pub(crate) fn ns_to_cycles(ns: u64) -> u64 {
    (ns * 8 + 2) / 5
}

pub(crate) fn advance_ns(mem: &mut MemSystem, ns: u64) {
    mem.advance(ns_to_cycles(ns));
}

/// Command-clock cycles → nanoseconds.
///
/// `1/1.6 = 0.625` is a dyadic rational (5/8), exactly representable in
/// binary floating point, so the multiplication is exact up to the one
/// final rounding of the product — unlike the previous `cycles / 1.6`,
/// whose divisor 1.6 is itself inexact in binary. Round-tripping
/// `ns → cycles → ns` is therefore within 0.25 ns: `ns_to_cycles` rounds
/// to nearest with a worst-case error of 0.4 cycles (fractional parts of
/// 8·ns/5 step by 0.2), and 0.4 · 0.625 = 0.25 ns — pinned by
/// `round_trip_error_is_bounded`.
pub(crate) fn cycles_to_ns(cycles: u64) -> f64 {
    cycles as f64 * 0.625
}

fn conn_key(conn: usize) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&(conn as u64).to_le_bytes());
    k[8] = 0x5A;
    k
}

fn req_iv(req: u64) -> [u8; 12] {
    let mut iv = [0u8; 12];
    iv[..8].copy_from_slice(&req.to_le_bytes());
    iv
}

/// One in-flight request between pipeline stages.
#[derive(Debug)]
pub(crate) struct Inflight {
    pub(crate) conn: usize,
    pub(crate) req: u64,
    /// Body length for this request. The lock-step harness always uses
    /// `cfg.message_bytes`; the event-driven harness draws per-object
    /// zipfian sizes.
    pub(crate) len: usize,
    /// SmartDIMM offload handles (one per page for compression).
    pub(crate) handles: Vec<OffloadHandle>,
    /// Output length (compressed size once known; message size for TLS).
    pub(crate) out_len: usize,
}

/// Accumulated cost over a measurement window.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WindowCost {
    pub(crate) cpu_ns: u64,
    pub(crate) accel_ns: u64,
    pub(crate) wire_bytes: u64,
}

/// The batched-pipeline server engine, shared by the throughput harness
/// and the co-run harness.
pub(crate) struct Engine<'a> {
    kind: PlatformKind,
    cfg: &'a WorkloadConfig,
    pub(crate) cost: WindowCost,
    req_counter: u64,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(kind: PlatformKind, cfg: &'a WorkloadConfig) -> Engine<'a> {
        assert!(
            kind.supports(cfg.ulp),
            "{kind:?} cannot offload {:?}",
            cfg.ulp
        );
        Engine {
            kind,
            cfg,
            cost: WindowCost::default(),
            req_counter: 0,
        }
    }

    pub(crate) fn reset_window(&mut self) {
        self.cost = WindowCost::default();
    }

    /// Preloads every connection's page-cache content.
    pub(crate) fn preload(&self, host: &mut CompCpyHost) {
        for conn in 0..self.cfg.connections {
            let body = self
                .cfg
                .corpus
                .generate(self.cfg.message_bytes, self.cfg.seed ^ conn as u64);
            host.mem_mut().dma_write(conn_file_addr(conn), &body);
        }
    }

    /// Serves one batch of requests through the staged pipeline.
    pub(crate) fn run_batch(&mut self, host: &mut CompCpyHost, conns: &[usize]) {
        // Stage 1: produce (content read + ULP).
        let mut inflight: Vec<Inflight> = Vec::with_capacity(conns.len());
        for &conn in conns {
            let req = self.req_counter;
            self.req_counter += 1;
            let len = self.cfg.message_bytes;
            inflight.push(self.produce_stage(host, conn, req, len));
        }
        // Stage 2: socket write.
        for fl in &mut inflight {
            self.socket_write(host, fl);
        }
        // Stage 3: NIC TX DMA.
        for fl in &inflight {
            self.nic_tx(host, fl);
        }
    }

    fn charge_cpu_ns(&mut self, host: &mut CompCpyHost, ns: u64) {
        advance_ns(host.mem_mut(), ns);
        self.cost.cpu_ns += ns;
    }

    /// Runs `f` and charges its elapsed simulated time to the CPU.
    fn timed_cpu(&mut self, host: &mut CompCpyHost, f: impl FnOnce(&mut CompCpyHost)) {
        let t0 = host.mem().now();
        f(host);
        self.cost.cpu_ns += cycles_to_ns(host.mem().now() - t0) as u64;
    }

    pub(crate) fn produce_stage(
        &mut self,
        host: &mut CompCpyHost,
        conn: usize,
        req: u64,
        len: usize,
    ) -> Inflight {
        let m = len;
        let p = self.cfg.costs;
        let file = conn_file_addr(conn);
        let rec = rec_addr(conn);
        let mut fl = Inflight {
            conn,
            req,
            len,
            handles: Vec::new(),
            out_len: m,
        };
        // Request parsing / socket / scheduling overhead.
        self.charge_cpu_ns(host, p.request_overhead_ns);

        match (self.cfg.ulp, self.kind) {
            (UlpKind::None, _) => {} // sendfile: nothing to produce
            (UlpKind::Tls, PlatformKind::Cpu) => {
                // nginx + OpenSSL (no sendfile with TLS): read() copies
                // the page cache into the user buffer, AES-NI reads it
                // and writes the ciphertext record.
                let ubuf = ubuf_addr(conn);
                let mut body = vec![0u8; m];
                self.timed_cpu(host, |h| {
                    h.mem_mut().memcpy(ubuf, file, m, 0, false); // read()
                    h.mem_mut().load(ubuf, &mut body, 0); // encrypt pass
                });
                self.charge_cpu_ns(host, p.cpu_ns(p.aesni_cpb, m));
                let gcm = AesGcm::new_128(&conn_key(conn));
                let (ct, _tag) = gcm.seal(&req_iv(req), b"", &body);
                self.timed_cpu(host, |h| h.mem_mut().store(rec, &ct, 0));
            }
            (UlpKind::Tls, PlatformKind::SmartNic) => {
                // Autonomous offload (Pismenny et al.): *unmodified*
                // software stack — the TLS library skips the cipher and
                // passes the plaintext record down; the NIC encrypts
                // inline at TX. CPU pays the per-record offload init.
                self.charge_cpu_ns(host, p.nic_record_init_ns);
                let ubuf = ubuf_addr(conn);
                let mut body = vec![0u8; m];
                self.timed_cpu(host, |h| {
                    h.mem_mut().memcpy(ubuf, file, m, 0, false); // read()
                    h.mem_mut().load(ubuf, &mut body, 0); // record build
                    h.mem_mut().store(rec, &body, 0);
                });
            }
            (UlpKind::Tls, PlatformKind::QuickAssist) => {
                // read() into the user buffer, then stage into the
                // DMA-safe buffer and submit the descriptor.
                let ubuf = ubuf_addr(conn);
                let mut body = vec![0u8; m];
                self.timed_cpu(host, |h| {
                    h.mem_mut().memcpy(ubuf, file, m, 0, false); // read()
                    h.mem_mut().load(ubuf, &mut body, 0);
                    h.mem_mut().store(rec, &body, 0); // DMA staging copy
                });
                self.charge_cpu_ns(host, p.qat_call_cpu_ns);
            }
            (UlpKind::Tls, PlatformKind::SmartDimm) => {
                // CompCpy is both the ULP and the socket-buffer copy.
                self.charge_cpu_ns(host, p.compcpy_sw_overhead_ns);
                let key = conn_key(conn);
                let iv = req_iv(req);
                let mut handle = None;
                self.timed_cpu(host, |h| {
                    handle = Some(
                        h.comp_cpy(rec, file, m, OffloadOp::TlsEncrypt { key, iv }, false, 0)
                            .expect("offload accepted"),
                    );
                });
                fl.handles.push(handle.expect("created"));
            }
            (UlpKind::Compression, PlatformKind::Cpu) => {
                // nginx gzip filter: read() into the user buffer, deflate
                // it (touching the per-stream zlib window + hash tables),
                // write the encoded output buffer.
                let ubuf = ubuf_addr(conn);
                let mut body = vec![0u8; m];
                self.timed_cpu(host, |h| {
                    h.mem_mut().memcpy(ubuf, file, m, 0, false); // read()
                    h.mem_mut().load(ubuf, &mut body, 0);
                    touch_deflate_state(h, conn, req, m.div_ceil(PAGE));
                });
                self.charge_cpu_ns(host, p.cpu_ns(p.deflate_cpb, m));
                let out = ulp_compress::deflate::compress(&body);
                fl.out_len = out.len();
                self.timed_cpu(host, |h| h.mem_mut().store(rec, &out, 0));
            }
            (UlpKind::Compression, PlatformKind::QuickAssist) => {
                let ubuf = ubuf_addr(conn);
                let mut body = vec![0u8; m];
                self.timed_cpu(host, |h| {
                    h.mem_mut().memcpy(ubuf, file, m, 0, false); // read()
                    h.mem_mut().load(ubuf, &mut body, 0);
                    h.mem_mut().store(rec, &body, 0); // DMA staging copy
                });
                self.charge_cpu_ns(host, p.qat_call_cpu_ns);
            }
            (UlpKind::Compression, PlatformKind::SmartDimm) => {
                // §V-C: one CompCpy per 4 KB page.
                for pg in 0..m.div_ceil(PAGE) {
                    let len = (m - pg * PAGE).min(PAGE);
                    let src = PhysAddr(file.0 + (pg * PAGE) as u64);
                    let dst = PhysAddr(rec.0 + (pg * PAGE) as u64);
                    self.charge_cpu_ns(host, p.compcpy_sw_overhead_ns);
                    let mut handle = None;
                    self.timed_cpu(host, |h| {
                        handle = Some(
                            h.comp_cpy(dst, src, len, OffloadOp::Compress, true, 0)
                                .expect("offload accepted"),
                        );
                    });
                    fl.handles.push(handle.expect("created"));
                }
            }
            (UlpKind::Compression, PlatformKind::SmartNic) => {
                unreachable!("guarded by PlatformKind::supports")
            }
        }
        fl
    }

    /// Fault-injected runs only: a starved DSA (dropped S6 interception)
    /// leaves an offload in progress, and its still-pending staged lines
    /// would NACK the NIC's reads past the controller's retry limit.
    /// Drain any fault-deferred writebacks and re-feed the source range
    /// until every offload is terminal — the recovery a fault-aware
    /// driver performs.
    fn settle_offloads(host: &mut CompCpyHost, handles: &[OffloadHandle]) {
        use smartdimm::configmem::OffloadStatus;
        if host.fault_handle().is_none() {
            return;
        }
        for handle in handles {
            for _ in 0..5 {
                let status = host.read_result(handle).status;
                if matches!(
                    status,
                    OffloadStatus::Done | OffloadStatus::Incompressible | OffloadStatus::Error
                ) {
                    break;
                }
                host.mem_mut().drain_writebacks();
                let lines = handle.size.div_ceil(64);
                host.mem_mut().flush(handle.sbuf, lines * 64);
                for l in 0..lines {
                    let mut buf = [0u8; 64];
                    host.mem_mut()
                        .load(PhysAddr(handle.sbuf.0 + (l * 64) as u64), &mut buf, 0);
                }
            }
        }
    }

    pub(crate) fn socket_write(&mut self, host: &mut CompCpyHost, fl: &mut Inflight) {
        let m = fl.len;
        let p = self.cfg.costs;
        let rec = rec_addr(fl.conn);
        let skb = skb_addr(fl.conn);

        match (self.cfg.ulp, self.kind) {
            (UlpKind::None, _) => {} // sendfile: no socket copy
            (UlpKind::Tls, PlatformKind::Cpu | PlatformKind::SmartNic) => {
                // write(): kernel copies the record into the skb.
                self.timed_cpu(host, |h| h.mem_mut().memcpy(skb, rec, m, 0, false));
            }
            (UlpKind::Tls, PlatformKind::QuickAssist) => {
                // Device executes now: DMA in, encrypt, DMA the
                // ciphertext into the skb. CPU polls the completion.
                let accel = p.qat_latency_ns + p.accel_ns(p.qat_gbps, m);
                advance_ns(host.mem_mut(), accel);
                self.cost.accel_ns += accel;
                let staged = host.mem_mut().dma_read(rec, m);
                let gcm = AesGcm::new_128(&conn_key(fl.conn));
                let (ct, _tag) = gcm.seal(&req_iv(fl.req), b"", &staged);
                host.mem_mut().dma_write(skb, &ct);
            }
            (UlpKind::Tls, PlatformKind::SmartDimm) => {
                Self::settle_offloads(host, &fl.handles);
                // USE: flush the record so the NIC reads ciphertext.
                self.timed_cpu(host, |h| {
                    h.mem_mut().flush(rec, m.div_ceil(64) * 64);
                });
            }
            (UlpKind::Compression, PlatformKind::Cpu) => {
                let out = fl.out_len;
                self.timed_cpu(host, |h| {
                    h.mem_mut()
                        .memcpy(skb, rec, out.div_ceil(64) * 64, 0, false)
                });
            }
            (UlpKind::Compression, PlatformKind::QuickAssist) => {
                let accel = p.qat_latency_ns + p.accel_ns(p.qat_gbps, m);
                advance_ns(host.mem_mut(), accel);
                self.cost.accel_ns += accel;
                let staged = host.mem_mut().dma_read(rec, m);
                let out = ulp_compress::deflate::compress(&staged);
                fl.out_len = out.len();
                host.mem_mut().dma_write(skb, &out);
            }
            (UlpKind::Compression, PlatformKind::SmartDimm) => {
                Self::settle_offloads(host, &fl.handles);
                // USE each page and collect the compressed sizes.
                let mut total = 0usize;
                let handles = fl.handles.clone();
                self.timed_cpu(host, |h| {
                    for handle in &handles {
                        h.mem_mut()
                            .flush(handle.dbuf, handle.size.div_ceil(64) * 64);
                        total += h.read_result(handle).out_len as usize;
                    }
                });
                fl.out_len = total;
            }
            (UlpKind::Compression, PlatformKind::SmartNic) => unreachable!(),
        }
    }

    pub(crate) fn nic_tx(&mut self, host: &mut CompCpyHost, fl: &Inflight) {
        let m = fl.len;
        let conn = fl.conn;
        let (addr, len) = match (self.cfg.ulp, self.kind) {
            (UlpKind::None, _) => (conn_file_addr(conn), m),
            (UlpKind::Tls, PlatformKind::SmartDimm) => (rec_addr(conn), m),
            (UlpKind::Tls, _) => (skb_addr(conn), m),
            (UlpKind::Compression, PlatformKind::SmartDimm) => (rec_addr(conn), fl.out_len),
            (UlpKind::Compression, _) => (skb_addr(conn), fl.out_len),
        };
        let _ = host.mem_mut().dma_read(addr, len);
        self.cost.wire_bytes += len as u64;
    }
}

/// In-flight responses across the worker pool at saturation: each worker
/// multiplexes `connections/workers` sockets.
pub(crate) fn batch_size(cfg: &WorkloadConfig) -> usize {
    (cfg.connections / cfg.workers).clamp(1, 64) * cfg.workers.min(16)
}

/// Runs the workload on the given platform and reports steady-state
/// metrics.
///
/// # Panics
///
/// Panics if the platform cannot run the ULP
/// ([`PlatformKind::supports`]) or the configuration is degenerate.
pub fn run_server(kind: PlatformKind, cfg: &WorkloadConfig) -> ServerMetrics {
    run_server_instrumented(kind, cfg).0
}

/// [`run_server`], additionally exporting the full post-run state of the
/// simulated machine — harness metrics plus the memory hierarchy and (for
/// the SmartDIMM placement) every channel's device counters — under
/// `scope` for a `telemetry/v1` snapshot.
pub fn run_server_with_telemetry(
    kind: PlatformKind,
    cfg: &WorkloadConfig,
    scope: &mut simkit::telemetry::Scope,
) -> ServerMetrics {
    let (metrics, mut host) = run_server_instrumented(kind, cfg);
    metrics.export_telemetry(scope);
    // Every placement runs on the simulated machine (SmartDIMM devices are
    // installed on all channels regardless of which placement executes the
    // ULP), so the full hierarchy is always exportable.
    host.export_telemetry(scope.scope("host"));
    metrics
}

fn run_server_instrumented(
    kind: PlatformKind,
    cfg: &WorkloadConfig,
) -> (ServerMetrics, CompCpyHost) {
    if let Err(e) = cfg.validate() {
        panic!("invalid WorkloadConfig: {e}");
    }
    let mut host_cfg = HostConfig::default();
    host_cfg.mem.llc = cfg.llc;
    host_cfg.mem.backend = cfg.backend;
    host_cfg.mem.dram.topology.channels = cfg.channels;
    host_cfg.mem.dram.topology.channel_interleave_lines = cfg.channel_interleave_lines.max(1);
    host_cfg.mem.dram.topology.dimms_per_channel = cfg.dimms_per_channel.max(1);
    host_cfg.mem.dram.topology.sockets = cfg.sockets.max(1);
    host_cfg.mem.dram.interconnect_penalty_cycles = cfg.interconnect_penalty_cycles;
    host_cfg.sched.policy = cfg.placement;
    host_cfg.threads = cfg.threads;
    let mut host = CompCpyHost::new(host_cfg);
    if let Some(fault_seed) = cfg.fault_seed {
        let plan = simkit::FaultPlan::generate(fault_seed, cfg.requests as u64);
        host.set_fault_handle(simkit::FaultHandle::new(plan));
    }
    let mut rng = DetRng::new(cfg.seed);
    let mut engine = Engine::new(kind, cfg);
    engine.preload(&mut host);

    let batch = batch_size(cfg);
    let warmup_batches = ((cfg.requests / 4).max(cfg.connections)).div_ceil(batch);
    let measure_batches = cfg.requests.div_ceil(batch);

    let draw = |rng: &mut DetRng| -> Vec<usize> {
        (0..batch)
            .map(|_| rng.gen_range(0..cfg.connections as u64) as usize)
            .collect()
    };

    for _ in 0..warmup_batches {
        let conns = draw(&mut rng);
        engine.run_batch(&mut host, &conns);
    }
    host.mem_mut().dram_mut().reset_stats();
    host.mem_mut().llc_mut().reset_stats();
    engine.reset_window();
    let t_start = host.mem().now();
    let force_start = host.force_recycle_count();

    for _ in 0..measure_batches {
        let conns = draw(&mut rng);
        engine.run_batch(&mut host, &conns);
    }

    let measured = (measure_batches * batch) as f64;
    let elapsed_cycles = host.mem().now() - t_start;
    let avg_request_ns = cycles_to_ns(elapsed_cycles) / measured;
    let cpu_ns_per_req = engine.cost.cpu_ns as f64 / measured;
    let accel_ns_per_req = engine.cost.accel_ns as f64 / measured;
    let wire_bytes_per_req = engine.cost.wire_bytes as f64 / measured;
    let dram_bytes_per_req = host.mem().dram().stats().bytes_transferred() as f64 / measured;
    let llc_miss_rate = host.mem().llc().stats().miss_rate();
    let force_recycles = host.force_recycle_count() - force_start;

    let worker_rps = cfg.workers as f64 * 1e9 / avg_request_ns;
    let link_rps = cfg.costs.link_gbps * 1e9 / 8.0 / wire_bytes_per_req.max(1.0);
    let accel_rps = if accel_ns_per_req > 0.0 {
        // Lookaside devices pipeline across several engines.
        8.0 * 1e9 / accel_ns_per_req
    } else {
        f64::INFINITY
    };
    let rps = worker_rps.min(link_rps).min(accel_rps);
    let cpu_utilization = (rps * cpu_ns_per_req / (cfg.workers as f64 * 1e9)).min(1.0);
    let mem_bw_bytes = rps * dram_bytes_per_req;

    let metrics = ServerMetrics {
        rps,
        cpu_utilization,
        mem_bw_bytes,
        dram_bytes_per_req,
        avg_request_ns,
        cpu_ns_per_req,
        wire_bytes_per_req,
        llc_miss_rate,
        force_recycles,
    };
    (metrics, host)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(ulp: UlpKind, message: usize, conns: usize) -> WorkloadConfig {
        WorkloadConfig {
            message_bytes: message,
            connections: conns,
            requests: 600,
            ulp,
            llc: Some(CacheConfig::mb(2, 16)), // small LLC: fast + contended
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn platform_support_matrix() {
        assert!(PlatformKind::SmartNic.supports(UlpKind::Tls));
        assert!(!PlatformKind::SmartNic.supports(UlpKind::Compression));
        assert!(PlatformKind::SmartDimm.supports(UlpKind::Compression));
        assert!(PlatformKind::Cpu.supports(UlpKind::None));
    }

    #[test]
    fn https_uses_more_memory_bandwidth_than_http() {
        // Fig. 3's effect: TLS adds buffer copies and cache pressure.
        let http = run_server(PlatformKind::Cpu, &quick(UlpKind::None, 4096, 512));
        let https = run_server(PlatformKind::Cpu, &quick(UlpKind::Tls, 4096, 512));
        assert!(
            https.dram_bytes_per_req > 1.5 * http.dram_bytes_per_req,
            "https {} vs http {}",
            https.dram_bytes_per_req,
            http.dram_bytes_per_req
        );
    }

    #[test]
    fn smartdimm_tls_beats_cpu_under_contention() {
        let cfg = quick(UlpKind::Tls, 4096, 512);
        let cpu = run_server(PlatformKind::Cpu, &cfg);
        let sd = run_server(PlatformKind::SmartDimm, &cfg);
        assert!(
            sd.rps > cpu.rps,
            "smartdimm {} vs cpu {} rps",
            sd.rps,
            cpu.rps
        );
        assert!(
            sd.dram_bytes_per_req < cpu.dram_bytes_per_req,
            "smartdimm {} vs cpu {} bytes/req",
            sd.dram_bytes_per_req,
            cpu.dram_bytes_per_req
        );
    }

    #[test]
    fn quickassist_loses_at_small_messages() {
        let cfg = quick(UlpKind::Tls, 4096, 256);
        let cpu = run_server(PlatformKind::Cpu, &cfg);
        let qat = run_server(PlatformKind::QuickAssist, &cfg);
        assert!(
            qat.rps < cpu.rps,
            "qat {} vs cpu {} at 4KB",
            qat.rps,
            cpu.rps
        );
    }

    #[test]
    fn compression_offload_gains_are_large() {
        // Fig. 12: software deflate is so slow that SmartDIMM wins by
        // integer factors.
        let cfg = quick(UlpKind::Compression, 4096, 256);
        let cpu = run_server(PlatformKind::Cpu, &cfg);
        let sd = run_server(PlatformKind::SmartDimm, &cfg);
        assert!(
            sd.rps > 3.0 * cpu.rps,
            "smartdimm {} vs cpu {} rps",
            sd.rps,
            cpu.rps
        );
    }

    #[test]
    fn compressed_responses_shrink_the_wire() {
        let cfg = quick(UlpKind::Compression, 4096, 128);
        let m = run_server(PlatformKind::Cpu, &cfg);
        assert!(m.wire_bytes_per_req < 4096.0 * 0.8);
    }

    #[test]
    fn more_connections_mean_more_llc_misses() {
        let small = run_server(PlatformKind::Cpu, &quick(UlpKind::Tls, 4096, 16));
        let large = run_server(PlatformKind::Cpu, &quick(UlpKind::Tls, 4096, 1024));
        assert!(
            large.llc_miss_rate > small.llc_miss_rate,
            "1024conn {} vs 16conn {}",
            large.llc_miss_rate,
            small.llc_miss_rate
        );
        assert!(large.dram_bytes_per_req > small.dram_bytes_per_req);
    }

    #[test]
    fn metrics_are_deterministic() {
        let cfg = quick(UlpKind::Tls, 4096, 64);
        let a = run_server(PlatformKind::SmartDimm, &cfg);
        let b = run_server(PlatformKind::SmartDimm, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn multi_channel_smartdimm_server_works_and_is_deterministic() {
        // Two shards under coarse interleave: the connection arenas sit
        // at odd page strides, so most record→skb offloads cross
        // channels and take the driver's bounce path. The run must stay
        // deterministic and produce sane metrics.
        for (channels, interleave) in [(2, 64), (4, 1)] {
            let cfg = WorkloadConfig {
                channels,
                channel_interleave_lines: interleave,
                ..quick(UlpKind::Tls, 4096, 64)
            };
            let a = run_server(PlatformKind::SmartDimm, &cfg);
            let b = run_server(PlatformKind::SmartDimm, &cfg);
            assert_eq!(a, b, "{channels}ch/{interleave} diverged across runs");
            assert!(a.rps > 0.0);
        }
    }

    #[test]
    fn multi_channel_compression_server_works() {
        let cfg = WorkloadConfig {
            channels: 2,
            channel_interleave_lines: 64,
            ..quick(UlpKind::Compression, 4096, 64)
        };
        let m = run_server(PlatformKind::SmartDimm, &cfg);
        assert!(m.rps > 0.0);
        assert!(m.wire_bytes_per_req < 4096.0);
    }

    #[test]
    #[should_panic(expected = "cannot offload")]
    fn smartnic_compression_rejected() {
        let _ = run_server(
            PlatformKind::SmartNic,
            &quick(UlpKind::Compression, 4096, 16),
        );
    }

    #[test]
    fn validate_catches_degenerate_configs() {
        let ok = WorkloadConfig::default();
        assert_eq!(ok.validate(), Ok(()));

        let cases: &[(WorkloadConfig, WorkloadConfigError)] = &[
            (
                WorkloadConfig {
                    workers: 0,
                    ..WorkloadConfig::default()
                },
                WorkloadConfigError::ZeroWorkers,
            ),
            (
                WorkloadConfig {
                    connections: 0,
                    ..WorkloadConfig::default()
                },
                WorkloadConfigError::ZeroConnections,
            ),
            (
                WorkloadConfig {
                    connections: 1025,
                    ..WorkloadConfig::default()
                },
                WorkloadConfigError::TooManyConnections(1025),
            ),
            (
                WorkloadConfig {
                    requests: 0,
                    ..WorkloadConfig::default()
                },
                WorkloadConfigError::ZeroRequests,
            ),
            (
                WorkloadConfig {
                    message_bytes: 0,
                    ..WorkloadConfig::default()
                },
                WorkloadConfigError::BadMessageSize(0),
            ),
            (
                WorkloadConfig {
                    message_bytes: 65537,
                    ..WorkloadConfig::default()
                },
                WorkloadConfigError::BadMessageSize(65537),
            ),
            (
                WorkloadConfig {
                    channels: 0,
                    ..WorkloadConfig::default()
                },
                WorkloadConfigError::ZeroChannels,
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.validate(), Err(*want));
            // Every variant renders a non-empty human-readable message.
            assert!(!want.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "workers must be >= 1")]
    fn zero_workers_panics_with_message_not_divide_by_zero() {
        // Before validate() this hit `connections / workers` and died with
        // an anonymous "attempt to divide by zero".
        let cfg = WorkloadConfig {
            workers: 0,
            ..quick(UlpKind::None, 4096, 16)
        };
        let _ = run_server(PlatformKind::Cpu, &cfg);
    }

    #[test]
    fn boundary_configs_run() {
        // workers=1 must serve a sane single-threaded pipeline, and
        // connections < workers must not produce an empty batch.
        let one_worker = WorkloadConfig {
            workers: 1,
            requests: 50,
            ..quick(UlpKind::None, 4096, 4)
        };
        let m = run_server(PlatformKind::Cpu, &one_worker);
        assert!(m.rps > 0.0 && m.rps.is_finite());

        let few_conns = WorkloadConfig {
            workers: 10,
            requests: 50,
            ..quick(UlpKind::None, 4096, 2)
        };
        assert!(batch_size(&few_conns) >= 1);
        let m = run_server(PlatformKind::Cpu, &few_conns);
        assert!(m.rps > 0.0 && m.rps.is_finite());
    }

    #[test]
    fn exact_conversion_matches_float_path() {
        // ns_to_cycles must be byte-identical to the float expression it
        // replaced for every duration a run can produce.
        let mut rng = DetRng::new(7);
        for _ in 0..10_000 {
            let ns = rng.gen_range(0..1_000_000_000_000);
            assert_eq!(
                ns_to_cycles(ns),
                (ns as f64 * CYC_PER_NS).round() as u64,
                "diverged at ns={ns}"
            );
        }
        for ns in 0..2048u64 {
            assert_eq!(ns_to_cycles(ns), (ns as f64 * CYC_PER_NS).round() as u64);
        }
    }

    #[test]
    fn round_trip_error_is_bounded() {
        // ns → cycles → ns is exact to within 0.25 ns (the nearest-rounding
        // error of ns_to_cycles scaled by 0.625 ns/cycle).
        for ns in 0..100_000u64 {
            let back = cycles_to_ns(ns_to_cycles(ns));
            assert!(
                (back - ns as f64).abs() <= 0.25,
                "ns={ns} round-tripped to {back}"
            );
        }
        // cycles → ns is exact for multiples of 8 cycles (5 ns each).
        assert_eq!(cycles_to_ns(8), 5.0);
        assert_eq!(cycles_to_ns(1600), 1000.0);
    }
}
