//! `platforms` assembles the full evaluation testbed of the SmartDIMM
//! paper: an Nginx-like web server whose per-request memory traffic runs
//! through the real cache + DRAM simulators, with the ULP (TLS or
//! compression) executed on one of the four evaluated placements:
//!
//! * **CPU** — AES-NI / zlib software on the host cores,
//! * **SmartNIC** — autonomous inline kTLS (TLS only: non-size-preserving
//!   ULPs cannot be offloaded autonomously, §III Obs. 1),
//! * **QuickAssist** — a PCIe lookaside accelerator with per-call setup,
//!   DMA descriptor and notification costs,
//! * **SmartDIMM** — the CompCpy near-memory path from the `smartdimm`
//!   crate.
//!
//! [`server::run_server`] produces the requests-per-second, CPU
//! utilization and memory-bandwidth numbers behind Fig. 3, Fig. 11 and
//! Fig. 12; [`corun`] reproduces Table I; [`designspace`] renders the
//! qualitative Fig. 13 comparison.

//!
//! [`eventsim`] replaces the lock-step batches with a central event-queue
//! simulation for tail-latency studies: tens of thousands of closed-loop
//! connections with zipfian object popularity, connection churn, slow
//! clients, and pressure-aware admission control on the offload path.

pub mod corun;
pub mod designspace;
pub mod eventsim;
pub mod params;
pub mod server;

pub use dram::BackendKind;
pub use eventsim::{
    run_event_server, run_event_server_with_telemetry, AdmissionConfig, AdmissionPolicy,
    EventConfigError, EventServerMetrics, EventWorkloadConfig,
};
pub use params::CostParams;
pub use server::{
    run_server, run_server_with_telemetry, PlatformKind, ServerMetrics, UlpKind, WorkloadConfig,
    WorkloadConfigError,
};
