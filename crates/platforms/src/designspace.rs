//! The qualitative ULP-processing design-space comparison of Fig. 13.
//!
//! The figure scores each accelerator placement against six criteria.
//! This module encodes those scores (0 = poor, 1 = partial, 2 = strong)
//! with the paper's rationale, and renders the matrix for the
//! `fig13_design_space` binary. Where a score is checkable in this
//! simulator (LLC-contention behaviour, loss resilience, non-size-
//! preserving support), the integration tests cross-check it against
//! measured behaviour.

use crate::server::PlatformKind;

/// One comparison criterion from Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// Performance when the LLC is lightly contended.
    LowLlcContention,
    /// Performance when the LLC is heavily contended.
    HighLlcContention,
    /// Works atop both TCP and UDP transports.
    TransportCompatibility,
    /// Supports non-size-preserving / non-incremental ULPs.
    DiverseUlps,
    /// Keeps its benefit under packet loss and reordering.
    LossResilience,
    /// Leaves the layer-4 software stack free to evolve.
    TransportFlexibility,
}

impl Criterion {
    /// All criteria, in the figure's order.
    pub const ALL: [Criterion; 6] = [
        Criterion::LowLlcContention,
        Criterion::HighLlcContention,
        Criterion::TransportCompatibility,
        Criterion::DiverseUlps,
        Criterion::LossResilience,
        Criterion::TransportFlexibility,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Criterion::LowLlcContention => "low LLC contention",
            Criterion::HighLlcContention => "high LLC contention",
            Criterion::TransportCompatibility => "TCP & UDP support",
            Criterion::DiverseUlps => "diverse ULPs",
            Criterion::LossResilience => "loss resilience",
            Criterion::TransportFlexibility => "L4 flexibility",
        }
    }
}

/// Scores a placement on a criterion (0 = poor, 1 = partial, 2 = strong),
/// following §VIII's discussion.
pub fn score(placement: PlatformKind, criterion: Criterion) -> u8 {
    use Criterion::*;
    use PlatformKind::*;
    match (placement, criterion) {
        // CPU: flexible everywhere, but burns cache and cycles under load.
        (Cpu, LowLlcContention) => 2,
        (Cpu, HighLlcContention) => 0,
        (Cpu, TransportCompatibility) => 2,
        (Cpu, DiverseUlps) => 2,
        (Cpu, LossResilience) => 2,
        (Cpu, TransportFlexibility) => 2,
        // Autonomous SmartNIC: great until packets drop; size-preserving only.
        (SmartNic, LowLlcContention) => 2,
        (SmartNic, HighLlcContention) => 1,
        (SmartNic, TransportCompatibility) => 1,
        (SmartNic, DiverseUlps) => 0,
        (SmartNic, LossResilience) => 0,
        (SmartNic, TransportFlexibility) => 2,
        // PCIe lookaside: coarse-grain only; copies and notifications hurt.
        (QuickAssist, LowLlcContention) => 1,
        (QuickAssist, HighLlcContention) => 0,
        (QuickAssist, TransportCompatibility) => 2,
        (QuickAssist, DiverseUlps) => 2,
        (QuickAssist, LossResilience) => 2,
        (QuickAssist, TransportFlexibility) => 2,
        // SmartDIMM: designed for high contention; transport-agnostic
        // because it sits above L4 on the memory path.
        (SmartDimm, LowLlcContention) => 1,
        (SmartDimm, HighLlcContention) => 2,
        (SmartDimm, TransportCompatibility) => 2,
        (SmartDimm, DiverseUlps) => 2,
        (SmartDimm, LossResilience) => 2,
        (SmartDimm, TransportFlexibility) => 2,
    }
}

/// Renders the full Fig. 13 matrix as text.
pub fn render_matrix() -> String {
    let placements = [
        PlatformKind::Cpu,
        PlatformKind::SmartNic,
        PlatformKind::QuickAssist,
        PlatformKind::SmartDimm,
    ];
    let glyph = |s: u8| match s {
        0 => "-",
        1 => "o",
        _ => "+",
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>10} {:>10} {:>12} {:>10}\n",
        "criterion", "CPU", "SmartNIC", "QuickAssist", "SmartDIMM"
    ));
    for c in Criterion::ALL {
        out.push_str(&format!("{:<22}", c.label()));
        for p in placements {
            out.push_str(&format!(" {:>10}", glyph(score(p, c))));
        }
        out.push('\n');
    }
    out.push_str("\n+ strong   o partial   - poor\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smartdimm_wins_high_contention() {
        for p in [
            PlatformKind::Cpu,
            PlatformKind::SmartNic,
            PlatformKind::QuickAssist,
        ] {
            assert!(
                score(PlatformKind::SmartDimm, Criterion::HighLlcContention)
                    > score(p, Criterion::HighLlcContention)
                    || p == PlatformKind::SmartNic
            );
        }
    }

    #[test]
    fn smartnic_fails_loss_and_diverse_ulps() {
        assert_eq!(score(PlatformKind::SmartNic, Criterion::LossResilience), 0);
        assert_eq!(score(PlatformKind::SmartNic, Criterion::DiverseUlps), 0);
    }

    #[test]
    fn cpu_is_most_flexible_but_contention_bound() {
        assert_eq!(score(PlatformKind::Cpu, Criterion::DiverseUlps), 2);
        assert_eq!(score(PlatformKind::Cpu, Criterion::HighLlcContention), 0);
    }

    #[test]
    fn matrix_renders_all_rows() {
        let m = render_matrix();
        for c in Criterion::ALL {
            assert!(m.contains(c.label()), "missing {}", c.label());
        }
        assert!(m.contains("SmartDIMM"));
    }
}
