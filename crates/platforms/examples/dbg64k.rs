use cache::CacheConfig;
use platforms::*;
fn main() {
    let cfg = WorkloadConfig {
        message_bytes: 65536,
        connections: 1024,
        requests: 150,
        ulp: UlpKind::Tls,
        llc: Some(CacheConfig::mb(2, 16)),
        ..WorkloadConfig::default()
    };
    let m = run_server(PlatformKind::SmartDimm, &cfg);
    println!("ok rps={:.0}", m.rps);
}
