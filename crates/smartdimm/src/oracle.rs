//! Differential oracle for fault-injected offloads.
//!
//! [`FaultOracle`] drives a [`CompCpyHost`] under a seeded
//! [`simkit::FaultPlan`] and replays every offload against the software
//! golden path (software AES-GCM, the Deflate hardware model, the
//! software inflater). Each scenario must end with byte-exact output no
//! matter which faults fired, by exercising the same recovery ladder
//! production software would use:
//!
//! 1. **Re-feed** — a starved DSA (dropped S6 interception) is fed again
//!    by flushing and re-reading the source range; the device's
//!    `processed` dedup map makes this idempotent.
//! 2. **Drain + retry** — stale source data (delayed writebacks stuck in
//!    a write buffer) is pushed to DRAM and the offload is reissued;
//!    re-registering the same destination pages supersedes the stale
//!    staging.
//! 3. **Software fallback** — unrecoverable offloads (translation table
//!    full, scratchpad exhausted even after Force-Recycle) fall back to
//!    [`CompCpyHost::cpu_transform`] after clearing injected state.
//!
//! After every scenario the oracle checks structural invariants: no
//! orphaned scratchpad pages survive Force-Recycle, no translation-table
//! entries leak, and the table's *legitimate* occupancy stays below the
//! paper's 33 % bound.

use dram::PhysAddr;
use simkit::{FaultHandle, FaultPlan};
use ulp_compress::hwmodel::HwCompressor;
use ulp_crypto::gcm::AesGcm;

use crate::compcpy::{CompCpyHost, HostConfig};
use crate::configmem::OffloadStatus;
use crate::dsa::OffloadOp;
use crate::PAGE;

/// A recovery action the oracle had to take for a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery {
    /// The source range was flushed and re-read to feed a starved DSA.
    RefeedSource {
        /// Re-feed passes until the offload reached a terminal status.
        attempts: u32,
    },
    /// Fault-deferred writebacks were drained to DRAM.
    DrainedWritebacks {
        /// Cachelines delivered.
        lines: usize,
    },
    /// The offload produced wrong bytes (stale source) and was reissued.
    Retry,
    /// The offload was abandoned and recomputed in software.
    SoftwareFallback {
        /// Why the device path was abandoned.
        reason: String,
    },
}

/// What happened while checking one offload.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The (verified) transformed bytes.
    pub output: Vec<u8>,
    /// Whether the device path was abandoned for software.
    pub used_fallback: bool,
    /// Recovery actions, in order.
    pub recoveries: Vec<Recovery>,
}

/// Drives offloads under fault injection and verifies each against the
/// software golden path.
pub struct FaultOracle {
    host: CompCpyHost,
    cfg: HostConfig,
    fault: FaultHandle,
    recoveries: Vec<Recovery>,
    /// Force-Recycle invocations from the CompCpy reservation path (not
    /// the oracle's own end-of-scenario mop-up).
    organic_force_recycles: u64,
}

impl FaultOracle {
    /// Builds a host with `cfg` and installs a fault injector executing
    /// `plan`.
    pub fn new(cfg: HostConfig, plan: FaultPlan) -> FaultOracle {
        let mut host = CompCpyHost::new(cfg.clone());
        let fault = FaultHandle::new(plan);
        host.set_fault_handle(fault.clone());
        FaultOracle {
            host,
            cfg,
            fault,
            recoveries: Vec::new(),
            organic_force_recycles: 0,
        }
    }

    /// The driven host (buffer allocation, stats).
    pub fn host(&mut self) -> &mut CompCpyHost {
        &mut self.host
    }

    /// The `offload:label` log of every fault that fired.
    pub fn fired_log(&self) -> Vec<String> {
        self.fault.fired_log()
    }

    /// Every recovery action taken so far, in order.
    pub fn recoveries(&self) -> &[Recovery] {
        &self.recoveries
    }

    /// Force-Recycle invocations triggered by scratchpad shortage during
    /// offload issue (excludes the oracle's end-of-scenario mop-up).
    pub fn organic_force_recycles(&self) -> u64 {
        self.organic_force_recycles
    }

    /// Runs one offload of `input` under the installed fault plan,
    /// recovers from whatever fires and verifies the output bytes against
    /// the software golden path.
    ///
    /// # Panics
    ///
    /// Panics if the output cannot be made byte-correct or a structural
    /// invariant (orphaned scratchpad page, leaked translation entry,
    /// occupancy bound) is violated — these are the test failures the
    /// oracle exists to surface.
    pub fn check(&mut self, op: OffloadOp, input: &[u8], aad: &[u8]) -> ScenarioOutcome {
        assert!(!input.is_empty(), "oracle needs a non-empty message");
        let golden = self.golden(op, input, aad);
        let pages = input.len().div_ceil(PAGE);
        let src = self.host.alloc_pages(pages);
        let dst = self.host.alloc_pages(pages);
        self.host.mem_mut().store(src, input, 0);

        let fr_before = self.host.force_recycle_count();
        let mut recs: Vec<Recovery> = Vec::new();
        let mut outcome: Option<(Vec<u8>, bool)> = None;

        for _attempt in 0..3 {
            let handle = match self
                .host
                .comp_cpy_with_aad(dst, src, input.len(), op, aad, false, 0)
            {
                Ok(h) => h,
                Err(e) => {
                    let out = self.software_fallback(
                        &mut recs,
                        dst,
                        src,
                        input.len(),
                        op,
                        aad,
                        e.to_string(),
                    );
                    outcome = Some((out, true));
                    break;
                }
            };

            // A starved DSA (dropped S6 interception) leaves the offload
            // in progress: drain any stuck writebacks and re-feed the
            // source range until the result is terminal.
            let mut refeeds = 0u32;
            let mut status = self.host.read_result(&handle).status;
            while !matches!(
                status,
                OffloadStatus::Done | OffloadStatus::Incompressible | OffloadStatus::Error
            ) && refeeds < 5
            {
                self.drain(&mut recs);
                self.refeed(src, input.len());
                refeeds += 1;
                status = self.host.read_result(&handle).status;
            }
            if refeeds > 0 {
                recs.push(Recovery::RefeedSource { attempts: refeeds });
            }

            if !matches!(status, OffloadStatus::Done | OffloadStatus::Incompressible) {
                let out = self.software_fallback(
                    &mut recs,
                    dst,
                    src,
                    input.len(),
                    op,
                    aad,
                    format!("terminal status {status:?}"),
                );
                outcome = Some((out, true));
                break;
            }

            let out = self.host.use_buffer(&handle);
            if out == golden {
                if let OffloadOp::TlsEncrypt { key, iv } = op {
                    let want = AesGcm::new_128(&key).seal(&iv, aad, input).1;
                    assert_eq!(self.host.tag(&handle), Some(want), "authentication tag");
                }
                outcome = Some((out, false));
                break;
            }
            // Wrong bytes: the DSA consumed stale source data (delayed
            // writebacks). Push everything to DRAM and reissue; the
            // re-registration supersedes the stale staging.
            recs.push(Recovery::Retry);
            self.drain(&mut recs);
        }

        let (output, used_fallback) = outcome.unwrap_or_else(|| {
            let out = self.software_fallback(
                &mut recs,
                dst,
                src,
                input.len(),
                op,
                aad,
                "retries exhausted".to_string(),
            );
            (out, true)
        });

        self.organic_force_recycles += self.host.force_recycle_count() - fr_before;
        self.verify_output(op, input, &golden, &output, used_fallback);
        self.check_invariants();
        self.recoveries.extend(recs.iter().cloned());
        ScenarioOutcome {
            output,
            used_fallback,
            recoveries: recs,
        }
    }

    /// The software golden path for `op`. For compression this is the
    /// Deflate *hardware model* (the device runs the identical model), so
    /// device-path outputs compare byte-exactly.
    fn golden(&self, op: OffloadOp, input: &[u8], aad: &[u8]) -> Vec<u8> {
        match op {
            OffloadOp::TlsEncrypt { key, iv } => AesGcm::new_128(&key).seal(&iv, aad, input).0,
            OffloadOp::TlsDecrypt { key, iv } => {
                let mut pt = input.to_vec();
                AesGcm::new_128(&key).xor_keystream(&iv, 0, &mut pt);
                pt
            }
            OffloadOp::Compress => {
                let mut hw = HwCompressor::new(self.cfg.dimm.hw_deflate);
                let result = hw.compress_page(input);
                if result.data.len() >= input.len() {
                    input.to_vec() // incompressible: raw passthrough
                } else {
                    result.data
                }
            }
            OffloadOp::Decompress => {
                ulp_compress::inflate::decompress(input).expect("oracle fed a valid stream")
            }
        }
    }

    /// Byte-exactness rule: device paths must match the golden bytes
    /// exactly; a software *compression* fallback may produce a different
    /// (but losslessly equivalent) stream.
    fn verify_output(
        &self,
        op: OffloadOp,
        input: &[u8],
        golden: &[u8],
        output: &[u8],
        used_fallback: bool,
    ) {
        if used_fallback && matches!(op, OffloadOp::Compress) {
            let roundtrip = ulp_compress::inflate::decompress(output)
                .map(|d| d == input)
                .unwrap_or(false);
            assert!(
                roundtrip || output == input,
                "software compression fallback is not lossless"
            );
        } else {
            assert_eq!(output, golden, "offload output diverged from golden path");
        }
    }

    /// Structural invariants at scenario end: injected state cleared, no
    /// scratchpad page orphaned past Force-Recycle, no translation
    /// entries leaked.
    fn check_invariants(&mut self) {
        self.host.clear_injected_faults();
        let mut recs = Vec::new();
        self.drain(&mut recs);
        self.recoveries.extend(recs);

        let capacity = self.cfg.dimm.scratchpad_pages;
        let channels = self.host.channels();
        // Unconsumed staged lines (e.g. a decompressed tail never read
        // back) are legitimate between offloads; Force-Recycle must be
        // able to reclaim every one of them.
        let needs_recycle = (0..channels).any(|ch| self.host.device_on(ch).free_pages() < capacity);
        if needs_recycle {
            self.host.force_recycle(capacity);
        }
        for ch in 0..channels {
            let dev = self.host.device_on(ch);
            assert_eq!(
                dev.free_pages(),
                capacity,
                "channel {ch}: scratchpad pages orphaned past Force-Recycle"
            );
            assert!(
                dev.xlat().is_empty(),
                "channel {ch}: leaked translation entries for pages {:?}",
                dev.xlat().pages()
            );
        }
    }

    /// Checks the paper's occupancy bound against the *legitimate*
    /// entries (injected pressure excluded): call mid-scenario from tests
    /// that want the tighter invariant.
    pub fn assert_occupancy_bound(&mut self) {
        let slots = self.cfg.dimm.xlat_entries;
        let channels = self.host.channels();
        for ch in 0..channels {
            let dev = self.host.device_on(ch);
            let legit = dev.xlat().len().saturating_sub(dev.injected_entries());
            assert!(
                (legit as f64) < slots as f64 / 3.0,
                "channel {ch}: {legit} legitimate entries exceed a third of {slots} slots"
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn software_fallback(
        &mut self,
        recs: &mut Vec<Recovery>,
        dbuf: PhysAddr,
        sbuf: PhysAddr,
        size: usize,
        op: OffloadOp,
        aad: &[u8],
        reason: String,
    ) -> Vec<u8> {
        recs.push(Recovery::SoftwareFallback { reason });
        self.host.clear_injected_faults();
        self.drain(recs);
        // The device attempt may have read the source while deferred
        // writebacks were still in flight, filling the LLC with stale
        // lines. Invalidate the range so the recompute reads the drained
        // bytes from DRAM, not the stale cached copies.
        self.host.mem_mut().flush(sbuf, size.div_ceil(64) * 64);
        self.host.cpu_transform(dbuf, sbuf, size, op, aad, 0)
    }

    fn drain(&mut self, recs: &mut Vec<Recovery>) {
        let lines = self.host.mem_mut().drain_writebacks();
        if lines > 0 {
            recs.push(Recovery::DrainedWritebacks { lines });
        }
    }

    /// Flushes the source range and re-reads every cacheline, feeding any
    /// source line the DSA missed (the device skips already-processed
    /// lines).
    fn refeed(&mut self, sbuf: PhysAddr, size: usize) {
        let lines = size.div_ceil(64);
        self.host.mem_mut().flush(sbuf, lines * 64);
        for l in 0..lines {
            let mut buf = [0u8; 64];
            self.host
                .mem_mut()
                .load(PhysAddr(sbuf.0 + (l * 64) as u64), &mut buf, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{FaultEvent, FaultKind};

    fn msg(len: usize, seed: u64) -> Vec<u8> {
        ulp_compress::corpus::html(len, seed)
    }

    #[test]
    fn fault_free_plan_is_byte_exact_with_no_recoveries() {
        let mut oracle = FaultOracle::new(HostConfig::default(), FaultPlan::empty());
        let out = oracle.check(
            OffloadOp::TlsEncrypt {
                key: [1; 16],
                iv: [2; 12],
            },
            &msg(5000, 7),
            b"hdr",
        );
        assert!(!out.used_fallback);
        assert!(out.recoveries.is_empty());
        assert!(oracle.fired_log().is_empty());
    }

    #[test]
    fn scratch_hogs_force_recycle_and_stay_byte_exact() {
        let mut cfg = HostConfig::default();
        cfg.dimm.scratchpad_pages = 8;
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                at_offload: 0,
                kind: FaultKind::ScratchHog { pages: 8 },
            }],
        };
        let mut oracle = FaultOracle::new(cfg, plan);
        let out = oracle.check(
            OffloadOp::TlsEncrypt {
                key: [3; 16],
                iv: [4; 12],
            },
            &msg(4096, 11),
            b"",
        );
        assert!(!out.used_fallback, "Force-Recycle should reclaim the hogs");
        assert!(oracle.organic_force_recycles() >= 1);
        assert_eq!(oracle.fired_log(), vec!["0:scratch_hog(8)"]);
    }

    #[test]
    fn dropped_source_feed_recovers_by_refeeding() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                at_offload: 0,
                kind: FaultKind::DropSourceFeed { line: 5 },
            }],
        };
        let mut oracle = FaultOracle::new(HostConfig::default(), plan);
        let out = oracle.check(
            OffloadOp::TlsDecrypt {
                key: [5; 16],
                iv: [6; 12],
            },
            &msg(4096, 13),
            b"",
        );
        assert!(!out.used_fallback);
        assert!(out
            .recoveries
            .iter()
            .any(|r| matches!(r, Recovery::RefeedSource { .. })));
        assert_eq!(oracle.fired_log(), vec!["0:drop_source_feed(5)"]);
    }

    #[test]
    fn delayed_writebacks_drain_and_retry() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                at_offload: 0,
                kind: FaultKind::DelayWriteback { lines: 6 },
            }],
        };
        let mut oracle = FaultOracle::new(HostConfig::default(), plan);
        let out = oracle.check(
            OffloadOp::TlsEncrypt {
                key: [7; 16],
                iv: [8; 12],
            },
            &msg(4096, 17),
            b"tls13",
        );
        // Either the stale bytes were caught and retried, or (if the
        // delayed lines were clean) nothing diverged at all.
        assert!(!out.used_fallback);
        assert_eq!(oracle.fired_log(), vec!["0:delay_writeback(6)"]);
    }
}
