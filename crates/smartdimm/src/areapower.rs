//! Area and power accounting (§VII-D).
//!
//! The paper reports its FPGA prototype at 4.78 W of dynamic power when
//! the DDR channel is saturated, ~0.92 W average across benchmarks
//! (< 30 % channel utilization), and ~21.8 % of FPGA resources for the
//! TLS offload. This module reproduces that accounting: per-component
//! SRAM-bit and logic-unit estimates whose totals are calibrated to the
//! published figures, with dynamic power scaling linearly in channel
//! utilization.

use crate::device::SmartDimmConfig;
use crate::LINES_PER_PAGE;

/// A per-component resource estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// SRAM bits used.
    pub sram_bits: u64,
    /// Logic cost in abstract LUT-equivalents.
    pub logic_units: u64,
    /// Dynamic power at full DDR-channel utilization, watts.
    pub dynamic_watts: f64,
}

/// The full report.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaPowerReport {
    /// Per-component breakdown.
    pub components: Vec<Component>,
    /// FPGA LUT budget used for utilization percentages.
    pub fpga_luts: u64,
}

impl AreaPowerReport {
    /// Total SRAM bits.
    pub fn total_sram_bits(&self) -> u64 {
        self.components.iter().map(|c| c.sram_bits).sum()
    }

    /// Total logic units.
    pub fn total_logic(&self) -> u64 {
        self.components.iter().map(|c| c.logic_units).sum()
    }

    /// Dynamic power at full channel utilization (the paper: 4.78 W).
    pub fn full_dynamic_watts(&self) -> f64 {
        self.components.iter().map(|c| c.dynamic_watts).sum()
    }

    /// Dynamic power at the given DDR channel utilization (0.0–1.0) —
    /// the paper's benchmarks average ~0.92 W below 30 % utilization.
    pub fn dynamic_watts_at(&self, channel_utilization: f64) -> f64 {
        assert!((0.0..=1.0).contains(&channel_utilization));
        self.full_dynamic_watts() * channel_utilization
    }

    /// Fraction of the FPGA consumed by the TLS DSA + its tables.
    pub fn tls_fpga_fraction(&self) -> f64 {
        let tls_logic: u64 = self
            .components
            .iter()
            .filter(|c| {
                matches!(
                    c.name,
                    "tls-dsa" | "gf-multiplier" | "translation-table" | "config-memory"
                )
            })
            .map(|c| c.logic_units)
            .sum();
        tls_logic as f64 / self.fpga_luts as f64
    }

    /// Renders a plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("component            sram_bits   logic_units  dyn_watts\n");
        for c in &self.components {
            out.push_str(&format!(
                "{:<20} {:>10} {:>12} {:>9.3}\n",
                c.name, c.sram_bits, c.logic_units, c.dynamic_watts
            ));
        }
        out.push_str(&format!(
            "TOTAL                {:>10} {:>12} {:>9.3}\n",
            self.total_sram_bits(),
            self.total_logic(),
            self.full_dynamic_watts()
        ));
        out
    }
}

/// Builds the report for a device configuration.
pub fn estimate(cfg: &SmartDimmConfig) -> AreaPowerReport {
    let scratch_bits = (cfg.scratchpad_pages * LINES_PER_PAGE * 64 * 8) as u64
        + (cfg.scratchpad_pages * LINES_PER_PAGE * 2) as u64; // data + state
    let xlat_bits = (cfg.xlat_entries as u64) * (52 + 40) // tag + mapping
        + (cfg.cam_entries as u64) * 92;
    let config_bits = (cfg.result_slots as u64) * 512 + 8 * 1024 * 1024; // results + 8MB ctx
    let deflate_bits = cfg.hw_deflate.candidate_memory_bits() as u64;

    // Logic-unit model calibrated so the TLS share lands at ~21.8% of a
    // KU060-class FPGA (~330K LUTs) and full-rate dynamic power at 4.78W.
    let fpga_luts = 330_000u64;
    let components = vec![
        Component {
            name: "ddr-phy",
            sram_bits: 32 * 1024,
            logic_units: 24_000,
            dynamic_watts: 1.10,
        },
        Component {
            name: "mig-phy",
            sram_bits: 32 * 1024,
            logic_units: 22_000,
            dynamic_watts: 1.05,
        },
        Component {
            name: "arbiter",
            sram_bits: 4 * 1024,
            logic_units: 9_000,
            dynamic_watts: 0.22,
        },
        Component {
            name: "bank-table",
            sram_bits: 16 * 64,
            logic_units: 1_200,
            dynamic_watts: 0.03,
        },
        Component {
            name: "translation-table",
            sram_bits: xlat_bits,
            logic_units: 14_000,
            dynamic_watts: 0.34,
        },
        Component {
            name: "scratchpad",
            sram_bits: scratch_bits,
            logic_units: 8_000,
            dynamic_watts: 0.55,
        },
        Component {
            name: "config-memory",
            sram_bits: config_bits,
            logic_units: 6_000,
            dynamic_watts: 0.31,
        },
        Component {
            name: "gf-multiplier",
            sram_bits: 8 * 1024,
            logic_units: 16_000,
            dynamic_watts: 0.28,
        },
        Component {
            name: "tls-dsa",
            sram_bits: 24 * 1024,
            logic_units: 36_000,
            dynamic_watts: 0.52,
        },
        Component {
            name: "deflate-dsa",
            sram_bits: deflate_bits,
            logic_units: 42_000,
            dynamic_watts: 0.38,
        },
    ];
    AreaPowerReport {
        components,
        fpga_luts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_calibration() {
        let report = estimate(&SmartDimmConfig::default());
        let full = report.full_dynamic_watts();
        assert!((full - 4.78).abs() < 0.05, "full-rate power {full}");
        // <30% utilization averages ~0.92W in the paper.
        let avg = report.dynamic_watts_at(0.20);
        assert!((0.7..1.2).contains(&avg), "avg power {avg}");
        let tls = report.tls_fpga_fraction();
        assert!((0.18..0.26).contains(&tls), "tls fraction {tls}");
    }

    #[test]
    fn scratchpad_dominates_sram() {
        let report = estimate(&SmartDimmConfig::default());
        let scratch = report
            .components
            .iter()
            .find(|c| c.name == "scratchpad")
            .unwrap();
        // 8 MB scratchpad = 64 Mbit data + state.
        assert!(scratch.sram_bits > 64 * 1024 * 1024);
    }

    #[test]
    fn power_scales_with_utilization() {
        let report = estimate(&SmartDimmConfig::default());
        assert_eq!(report.dynamic_watts_at(0.0), 0.0);
        assert!(report.dynamic_watts_at(0.5) < report.dynamic_watts_at(1.0));
    }

    #[test]
    fn render_is_nonempty_and_tabular() {
        let report = estimate(&SmartDimmConfig::default());
        let text = report.render();
        assert!(text.contains("tls-dsa"));
        assert!(text.contains("TOTAL"));
        assert!(text.lines().count() >= 12);
    }

    #[test]
    fn wider_deflate_window_costs_more_sram() {
        let mut a = SmartDimmConfig::default();
        a.hw_deflate.window = 4;
        let mut b = SmartDimmConfig::default();
        b.hw_deflate.window = 16;
        assert!(estimate(&b).total_sram_bits() > estimate(&a).total_sram_bits());
    }
}
