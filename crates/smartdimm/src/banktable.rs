//! The Bank Table (§IV-C): one entry per bank in the SmartDIMM rank,
//! recording the ID of the currently active row.
//!
//! The buffer device cannot see full addresses on CAS commands — only
//! `(BG, BA, Col)` — so it shadows the controller's row state: RAS
//! (activate) commands record the row, precharges clear it. The Addr
//! Remap module then combines the table's row with the CAS coordinates
//! to regenerate the physical address.

/// Per-rank bank table.
#[derive(Debug, Clone)]
pub struct BankTable {
    rows: Vec<Vec<Option<usize>>>, // [rank][bank_index] -> active row
}

impl BankTable {
    /// Creates a table for `ranks` ranks of `banks` banks, all precharged.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(ranks: usize, banks: usize) -> BankTable {
        assert!(ranks > 0 && banks > 0, "empty bank table");
        BankTable {
            rows: vec![vec![None; banks]; ranks],
        }
    }

    /// Records a RAS (activate) command. Returns `true` if the bank was
    /// already open: a controller never activates an open bank without an
    /// intervening precharge, so an activate-on-open means the device
    /// missed an implicit precharge and its shadow state desynchronized.
    /// The stale row is cleared before the new one is recorded so the
    /// caller can account for the desync (`bank_desyncs` in `device.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn activate(&mut self, rank: usize, bank_index: usize, row: usize) -> bool {
        let desync = self.rows[rank][bank_index].is_some();
        if desync {
            self.rows[rank][bank_index] = None;
        }
        self.rows[rank][bank_index] = Some(row);
        desync
    }

    /// Records a precharge.
    pub fn precharge(&mut self, rank: usize, bank_index: usize) {
        self.rows[rank][bank_index] = None;
    }

    /// The active row in `(rank, bank_index)`, if any.
    pub fn active_row(&self, rank: usize, bank_index: usize) -> Option<usize> {
        self.rows[rank][bank_index]
    }

    /// Number of banks currently holding an open row.
    pub fn open_banks(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| r.iter())
            .filter(|r| r.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_precharged() {
        let t = BankTable::new(1, 16);
        assert_eq!(t.active_row(0, 0), None);
        assert_eq!(t.open_banks(), 0);
    }

    #[test]
    fn activate_records_row() {
        let mut t = BankTable::new(1, 16);
        t.activate(0, 8, 10);
        assert_eq!(t.active_row(0, 8), Some(10));
        assert_eq!(t.open_banks(), 1);
    }

    #[test]
    fn reactivation_replaces_row_and_reports_desync() {
        // Regression: activating an already-open bank used to overwrite
        // the shadowed row silently; it must be reported as a desync.
        let mut t = BankTable::new(1, 16);
        assert!(!t.activate(0, 3, 100), "first activate is not a desync");
        assert!(t.activate(0, 3, 200), "activate-on-open must report");
        assert_eq!(t.active_row(0, 3), Some(200));
        // After an intervening precharge the next activate is clean again.
        t.precharge(0, 3);
        assert!(!t.activate(0, 3, 300));
        assert_eq!(t.active_row(0, 3), Some(300));
    }

    #[test]
    fn precharge_clears() {
        let mut t = BankTable::new(2, 16);
        t.activate(1, 5, 42);
        t.precharge(1, 5);
        assert_eq!(t.active_row(1, 5), None);
    }

    #[test]
    fn banks_are_independent() {
        let mut t = BankTable::new(1, 16);
        t.activate(0, 0, 1);
        t.activate(0, 15, 2);
        t.precharge(0, 0);
        assert_eq!(t.active_row(0, 0), None);
        assert_eq!(t.active_row(0, 15), Some(2));
    }
}
