//! The adaptive offload policy (§IV, §V-C): SmartDIMM is only worth
//! using when the LLC is contended; otherwise on-CPU execution wins.
//!
//! The paper's modified OpenSSL engine "selectively offloads TLS to
//! SmartDIMM or processes it on the CPU based on the level of LLC
//! contention", assessed by "frequently sampling the miss rate of the
//! LLC" against a configurable threshold. [`AdaptivePolicy`] reproduces
//! that controller, with hysteresis so the decision does not flap around
//! the threshold.

/// Where the next ULP operation should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Run the transform on the CPU (low contention).
    Cpu,
    /// Offload through CompCpy to SmartDIMM (high contention).
    SmartDimm,
}

/// Miss-rate-driven placement controller.
///
/// # Example
///
/// ```
/// use smartdimm::policy::{AdaptivePolicy, Placement};
/// let mut p = AdaptivePolicy::new(0.3, 0.05);
/// assert_eq!(p.decide(0.1), Placement::Cpu);
/// assert_eq!(p.decide(0.5), Placement::SmartDimm);
/// // Hysteresis: a dip just below the threshold does not flip back.
/// assert_eq!(p.decide(0.27), Placement::SmartDimm);
/// assert_eq!(p.decide(0.1), Placement::Cpu);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    threshold: f64,
    hysteresis: f64,
    current: Placement,
    switches: u64,
    decisions: u64,
    offload_decisions: u64,
}

impl AdaptivePolicy {
    /// Creates a policy that offloads when the sampled LLC miss rate
    /// exceeds `threshold`, returning to the CPU only when it falls below
    /// `threshold - hysteresis`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold <= 1` and `0 <= hysteresis < threshold`.
    pub fn new(threshold: f64, hysteresis: f64) -> AdaptivePolicy {
        assert!(threshold > 0.0 && threshold <= 1.0, "threshold range");
        assert!((0.0..threshold).contains(&hysteresis), "hysteresis range");
        AdaptivePolicy {
            threshold,
            hysteresis,
            current: Placement::Cpu,
            switches: 0,
            decisions: 0,
            offload_decisions: 0,
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Decides placement for the next operation given the sampled LLC
    /// miss rate.
    pub fn decide(&mut self, llc_miss_rate: f64) -> Placement {
        self.decisions += 1;
        let next = match self.current {
            Placement::Cpu if llc_miss_rate > self.threshold => Placement::SmartDimm,
            Placement::SmartDimm if llc_miss_rate < self.threshold - self.hysteresis => {
                Placement::Cpu
            }
            cur => cur,
        };
        if next != self.current {
            self.switches += 1;
            self.current = next;
        }
        if next == Placement::SmartDimm {
            self.offload_decisions += 1;
        }
        next
    }

    /// The current placement without re-evaluating.
    pub fn current(&self) -> Placement {
        self.current
    }

    /// Number of CPU↔SmartDIMM transitions so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Fraction of decisions that chose SmartDIMM.
    pub fn offload_fraction(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.offload_decisions as f64 / self.decisions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_on_cpu() {
        let p = AdaptivePolicy::new(0.3, 0.05);
        assert_eq!(p.current(), Placement::Cpu);
    }

    #[test]
    fn crosses_threshold_upward() {
        let mut p = AdaptivePolicy::new(0.3, 0.05);
        assert_eq!(p.decide(0.29), Placement::Cpu);
        assert_eq!(p.decide(0.31), Placement::SmartDimm);
        assert_eq!(p.switches(), 1);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut p = AdaptivePolicy::new(0.3, 0.1);
        p.decide(0.5);
        assert_eq!(p.current(), Placement::SmartDimm);
        // Oscillate in the hysteresis band: stays offloaded.
        for rate in [0.28, 0.25, 0.22, 0.21] {
            assert_eq!(p.decide(rate), Placement::SmartDimm);
        }
        assert_eq!(p.decide(0.19), Placement::Cpu);
        assert_eq!(p.switches(), 2);
    }

    #[test]
    fn offload_fraction_tracks_decisions() {
        let mut p = AdaptivePolicy::new(0.3, 0.0);
        p.decide(0.1); // cpu
        p.decide(0.5); // dimm
        p.decide(0.5); // dimm
        p.decide(0.1); // cpu
        assert!((p.offload_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "threshold range")]
    fn bad_threshold_rejected() {
        AdaptivePolicy::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "hysteresis range")]
    fn bad_hysteresis_rejected() {
        AdaptivePolicy::new(0.3, 0.3);
    }
}
