//! The adaptive offload policy (§IV, §V-C): SmartDIMM is only worth
//! using when the LLC is contended; otherwise on-CPU execution wins.
//!
//! The paper's modified OpenSSL engine "selectively offloads TLS to
//! SmartDIMM or processes it on the CPU based on the level of LLC
//! contention", assessed by "frequently sampling the miss rate of the
//! LLC" against a configurable threshold. [`AdaptivePolicy`] reproduces
//! that controller, with hysteresis so the decision does not flap around
//! the threshold.

/// Where the next ULP operation should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Run the transform on the CPU (low contention).
    Cpu,
    /// Offload through CompCpy to SmartDIMM (high contention).
    SmartDimm,
}

/// Miss-rate-driven placement controller.
///
/// # Example
///
/// ```
/// use smartdimm::policy::{AdaptivePolicy, Placement};
/// let mut p = AdaptivePolicy::new(0.3, 0.05);
/// assert_eq!(p.decide(0.1), Placement::Cpu);
/// assert_eq!(p.decide(0.5), Placement::SmartDimm);
/// // Hysteresis: a dip just below the threshold does not flip back.
/// assert_eq!(p.decide(0.27), Placement::SmartDimm);
/// assert_eq!(p.decide(0.1), Placement::Cpu);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    threshold: f64,
    hysteresis: f64,
    current: Placement,
    switches: u64,
    decisions: u64,
    offload_decisions: u64,
}

impl AdaptivePolicy {
    /// Creates a policy that offloads when the sampled LLC miss rate
    /// exceeds `threshold`, returning to the CPU only when it falls below
    /// `threshold - hysteresis`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold <= 1` and `0 <= hysteresis < threshold`.
    pub fn new(threshold: f64, hysteresis: f64) -> AdaptivePolicy {
        assert!(threshold > 0.0 && threshold <= 1.0, "threshold range");
        assert!((0.0..threshold).contains(&hysteresis), "hysteresis range");
        AdaptivePolicy {
            threshold,
            hysteresis,
            current: Placement::Cpu,
            switches: 0,
            decisions: 0,
            offload_decisions: 0,
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Decides placement for the next operation given the sampled LLC
    /// miss rate.
    ///
    /// Boundary semantics (pinned by tests): a rate *exactly at*
    /// `threshold` does not offload (strictly "exceeds"), and a rate
    /// *exactly at* `threshold - hysteresis` does not return to the CPU
    /// (strictly "falls below").
    pub fn decide(&mut self, llc_miss_rate: f64) -> Placement {
        self.decisions += 1;
        let next = match self.current {
            Placement::Cpu if llc_miss_rate > self.threshold => Placement::SmartDimm,
            Placement::SmartDimm if llc_miss_rate < self.threshold - self.hysteresis => {
                Placement::Cpu
            }
            cur => cur,
        };
        if next != self.current {
            // The initial `current` is a pre-decision default, not an
            // observed placement: the first decision establishes state
            // rather than transitioning, so it never counts as a switch.
            if self.decisions > 1 {
                self.switches += 1;
            }
            self.current = next;
        }
        if next == Placement::SmartDimm {
            self.offload_decisions += 1;
        }
        next
    }

    /// The current placement without re-evaluating.
    pub fn current(&self) -> Placement {
        self.current
    }

    /// Number of CPU↔SmartDIMM transitions so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Fraction of decisions that chose SmartDIMM.
    pub fn offload_fraction(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.offload_decisions as f64 / self.decisions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_on_cpu() {
        let p = AdaptivePolicy::new(0.3, 0.05);
        assert_eq!(p.current(), Placement::Cpu);
    }

    #[test]
    fn crosses_threshold_upward() {
        let mut p = AdaptivePolicy::new(0.3, 0.05);
        assert_eq!(p.decide(0.29), Placement::Cpu);
        assert_eq!(p.decide(0.31), Placement::SmartDimm);
        assert_eq!(p.switches(), 1);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut p = AdaptivePolicy::new(0.3, 0.1);
        p.decide(0.5);
        assert_eq!(p.current(), Placement::SmartDimm);
        // Oscillate in the hysteresis band: stays offloaded.
        for rate in [0.28, 0.25, 0.22, 0.21] {
            assert_eq!(p.decide(rate), Placement::SmartDimm);
        }
        assert_eq!(p.decide(0.19), Placement::Cpu);
        // Only the SmartDimm→Cpu transition counts: the opening
        // decide(0.5) was the first decision and establishes state.
        assert_eq!(p.switches(), 1);
    }

    #[test]
    fn first_decision_is_not_a_switch() {
        // Regression: the initial `current: Cpu` is a pre-decision
        // default; a first decision landing on SmartDimm used to be
        // counted as a CPU→SmartDIMM transition.
        let mut p = AdaptivePolicy::new(0.3, 0.05);
        assert_eq!(p.decide(0.9), Placement::SmartDimm);
        assert_eq!(p.switches(), 0);
        // Subsequent transitions still count.
        assert_eq!(p.decide(0.1), Placement::Cpu);
        assert_eq!(p.switches(), 1);
    }

    #[test]
    fn exactly_threshold_does_not_offload() {
        // Pin the boundary: the docs say "exceeds", so a miss rate of
        // exactly `threshold` stays on the CPU. 0.5 is exactly
        // representable, so the comparison is not at the mercy of
        // rounding.
        let mut p = AdaptivePolicy::new(0.5, 0.125);
        assert_eq!(p.decide(0.5), Placement::Cpu);
        assert_eq!(p.switches(), 0);
        assert_eq!(p.decide(0.5000001), Placement::SmartDimm);
    }

    #[test]
    fn exactly_hysteresis_floor_stays_offloaded() {
        // Pin the boundary: returning to the CPU requires the rate to
        // fall strictly below `threshold - hysteresis`; exactly at the
        // floor stays on SmartDIMM. 0.5 - 0.125 = 0.375 exactly.
        let mut p = AdaptivePolicy::new(0.5, 0.125);
        assert_eq!(p.decide(0.75), Placement::SmartDimm);
        assert_eq!(p.decide(0.375), Placement::SmartDimm);
        assert_eq!(p.decide(0.3749), Placement::Cpu);
    }

    #[test]
    fn offload_fraction_tracks_decisions() {
        let mut p = AdaptivePolicy::new(0.3, 0.0);
        p.decide(0.1); // cpu
        p.decide(0.5); // dimm
        p.decide(0.5); // dimm
        p.decide(0.1); // cpu
        assert!((p.offload_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "threshold range")]
    fn bad_threshold_rejected() {
        AdaptivePolicy::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "hysteresis range")]
    fn bad_hysteresis_rejected() {
        AdaptivePolicy::new(0.3, 0.3);
    }
}
