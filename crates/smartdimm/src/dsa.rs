//! The Domain-Specific Accelerators (§V): TLS AES-GCM and Deflate
//! (de)compression, behind a uniform per-cacheline interface the arbiter
//! drives.
//!
//! One [`DsaInstance`] exists per registered offload. The TLS DSA
//! transforms each 64-byte cacheline independently and out of order
//! (powers-of-H GHASH, §V-A). The Deflate DSA is a streaming engine: it
//! consumes ordered cachelines (CompCpy's `ordered` mode inserts the
//! fences, §IV-D) and emits its output once the page is complete, which
//! is why compression destination lines can see premature writebacks
//! (S7) that the Scratchpad ignores.

use ulp_compress::hwmodel::{HwCompressor, HwDeflateConfig};
use ulp_crypto::gcm::{AesGcm, Direction, OooGcm};

use crate::configmem::OffloadStatus;

/// Copies `N` bytes out of the context payload starting at `at`,
/// without any panicking slice/array conversion.
fn take_arr<const N: usize>(p: &[u8; 48], at: usize) -> Option<[u8; N]> {
    let slice = p.get(at..at + N)?;
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    Some(out)
}

/// The offload operation requested through CompCpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadOp {
    /// AES-128-GCM encryption of the whole message.
    TlsEncrypt {
        /// AES-128 traffic key.
        key: [u8; 16],
        /// 96-bit per-record nonce.
        iv: [u8; 12],
    },
    /// AES-128-GCM decryption.
    TlsDecrypt {
        /// AES-128 traffic key.
        key: [u8; 16],
        /// 96-bit per-record nonce.
        iv: [u8; 12],
    },
    /// Deflate compression at 4 KB page granularity.
    Compress,
    /// Deflate decompression of one compressed page.
    Decompress,
}

impl OffloadOp {
    /// Serializes the op + message parameters into a context payload
    /// (fits the 48-byte chunk of one MMIO write, §V-A).
    pub fn encode_context(&self, msg_len: usize, aad: &[u8]) -> [u8; 48] {
        self.encode_context_with_policy(msg_len, aad, true)
    }

    /// [`OffloadOp::encode_context`] with control over metadata
    /// absorption: under channel interleaving each DIMM's TLS engine is a
    /// *partial* engine and must not absorb the AAD/length blocks (the
    /// host contributes them once when combining, §V-D).
    pub fn encode_context_with_policy(
        &self,
        msg_len: usize,
        aad: &[u8],
        absorb_metadata: bool,
    ) -> [u8; 48] {
        self.encode_context_full(msg_len, aad, absorb_metadata, false)
    }

    /// Full context encoding. `dma_input` marks a *Compute DMA* offload
    /// (§IV-E): source data arrives through device DMA *writes* instead of
    /// the CompCpy copy's reads, so the arbiter feeds the DSA from wrCAS
    /// commands on the source range.
    pub fn encode_context_full(
        &self,
        msg_len: usize,
        aad: &[u8],
        absorb_metadata: bool,
        dma_input: bool,
    ) -> [u8; 48] {
        assert!(aad.len() <= 7, "AAD limited to 7 bytes (TLS header is 5)");
        let mut p = [0u8; 48];
        p[45] = absorb_metadata as u8;
        p[46] = dma_input as u8;
        p[0] = match self {
            OffloadOp::TlsEncrypt { .. } => 0,
            OffloadOp::TlsDecrypt { .. } => 1,
            OffloadOp::Compress => 2,
            OffloadOp::Decompress => 3,
        };
        p[1] = aad.len() as u8;
        p[2..2 + aad.len()].copy_from_slice(aad);
        p[9..17].copy_from_slice(&(msg_len as u64).to_le_bytes());
        match self {
            OffloadOp::TlsEncrypt { key, iv } | OffloadOp::TlsDecrypt { key, iv } => {
                p[17..33].copy_from_slice(key);
                p[33..45].copy_from_slice(iv);
            }
            _ => {}
        }
        p
    }

    /// Decodes a context payload back into
    /// `(op, msg_len, aad, absorb_metadata)`, or `None` for a malformed
    /// payload (unknown op byte, oversized AAD length).
    pub fn decode_context(p: &[u8; 48]) -> Option<(OffloadOp, usize, Vec<u8>, bool)> {
        let (op, msg_len, aad, absorb, _) = OffloadOp::decode_context_full(p)?;
        Some((op, msg_len, aad, absorb))
    }

    /// Full context decoding including the Compute-DMA flag. Returns
    /// `None` for a malformed payload: the device must reject a corrupt
    /// MMIO context write, not fault on it.
    pub fn decode_context_full(p: &[u8; 48]) -> Option<(OffloadOp, usize, Vec<u8>, bool, bool)> {
        let dma_input = p[46] != 0;
        let absorb_metadata = p[45] != 0;
        let aad_len = p[1] as usize;
        if aad_len > 7 {
            return None; // corrupt context: aad length
        }
        let aad = p.get(2..2 + aad_len)?.to_vec();
        let msg_len = u64::from_le_bytes(take_arr(p, 9)?) as usize;
        let op = match p[0] {
            0 | 1 => {
                let key: [u8; 16] = take_arr(p, 17)?;
                let iv: [u8; 12] = take_arr(p, 33)?;
                if p[0] == 0 {
                    OffloadOp::TlsEncrypt { key, iv }
                } else {
                    OffloadOp::TlsDecrypt { key, iv }
                }
            }
            2 => OffloadOp::Compress,
            3 => OffloadOp::Decompress,
            _ => return None, // unknown offload op
        };
        Some((op, msg_len, aad, absorb_metadata, dma_input))
    }

    /// Whether the DSA requires ordered input delivery (Algorithm 2's
    /// `ordered` flag): Deflate's dictionary state is sequential, while
    /// AES-GCM handles any cacheline order.
    pub fn requires_ordered(&self) -> bool {
        matches!(self, OffloadOp::Compress | OffloadOp::Decompress)
    }

    /// Whether the transformation preserves message size (drives how many
    /// destination lines are expected per page).
    pub fn size_preserving(&self) -> bool {
        matches!(
            self,
            OffloadOp::TlsEncrypt { .. } | OffloadOp::TlsDecrypt { .. }
        )
    }
}

/// Output of feeding one cacheline to a DSA.
#[derive(Debug, Clone, Default)]
pub struct DsaOutput {
    /// `(message-wide output line index, data)` pairs produced.
    pub produced: Vec<(usize, [u8; 64])>,
    /// Present once the offload's final state is known.
    pub completion: Option<DsaCompletion>,
}

/// Terminal state of an offload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsaCompletion {
    /// Result status for the MMIO result slot.
    pub status: OffloadStatus,
    /// Output length in bytes.
    pub out_len: usize,
    /// Authentication tag (TLS only).
    pub tag: Option<[u8; 16]>,
}

/// A live DSA engine bound to one offload.
pub enum DsaInstance {
    /// AES-GCM, out-of-order per cacheline.
    Tls(OooGcm),
    /// Deflate compression: buffers the page, then compresses.
    Compress(StreamBuf),
    /// Deflate decompression: buffers the compressed page, then inflates.
    Decompress(StreamBuf),
}

impl std::fmt::Debug for DsaInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsaInstance::Tls(g) => write!(f, "Tls({}B)", g.msg_len()),
            DsaInstance::Compress(s) => write!(f, "Compress({}B)", s.msg_len),
            DsaInstance::Decompress(s) => write!(f, "Decompress({}B)", s.msg_len),
        }
    }
}

/// Reassembly buffer for the streaming (de)compression DSAs.
#[derive(Debug)]
pub struct StreamBuf {
    msg_len: usize,
    data: Vec<u8>,
    received: Vec<bool>, // per cacheline
    hw_config: HwDeflateConfig,
}

impl StreamBuf {
    fn new(msg_len: usize, hw_config: HwDeflateConfig) -> StreamBuf {
        StreamBuf {
            msg_len,
            data: vec![0u8; msg_len],
            received: vec![false; msg_len.div_ceil(64)],
            hw_config,
        }
    }

    fn absorb(&mut self, offset: usize, line: &[u8; 64]) -> bool {
        let idx = offset / 64;
        if self.received[idx] {
            return false;
        }
        self.received[idx] = true;
        let take = (self.msg_len - offset).min(64);
        self.data[offset..offset + take].copy_from_slice(&line[..take]);
        self.received.iter().all(|&r| r)
    }
}

/// Splits a byte stream into 64-byte output lines (zero-padded tail).
fn to_lines(bytes: &[u8]) -> Vec<(usize, [u8; 64])> {
    bytes
        .chunks(64)
        .enumerate()
        .map(|(i, c)| {
            let mut line = [0u8; 64];
            line[..c.len()].copy_from_slice(c);
            (i, line)
        })
        .collect()
}

impl DsaInstance {
    /// Instantiates the engine for a decoded context.
    ///
    /// # Panics
    ///
    /// Panics if `msg_len` is zero, or exceeds 4 KB for the page-granular
    /// (de)compression engines (§V-C).
    pub fn new(op: OffloadOp, msg_len: usize, aad: &[u8], hw: HwDeflateConfig) -> DsaInstance {
        DsaInstance::with_metadata_policy(op, msg_len, aad, hw, true)
    }

    /// [`DsaInstance::new`] for per-channel partial TLS engines (§V-D).
    pub fn with_metadata_policy(
        op: OffloadOp,
        msg_len: usize,
        aad: &[u8],
        hw: HwDeflateConfig,
        absorb_metadata: bool,
    ) -> DsaInstance {
        assert!(msg_len > 0, "empty offload");
        match op {
            OffloadOp::TlsEncrypt { key, iv } => DsaInstance::Tls(OooGcm::with_metadata_policy(
                AesGcm::new_128(&key),
                iv,
                aad,
                msg_len,
                Direction::Encrypt,
                absorb_metadata,
            )),
            OffloadOp::TlsDecrypt { key, iv } => DsaInstance::Tls(OooGcm::with_metadata_policy(
                AesGcm::new_128(&key),
                iv,
                aad,
                msg_len,
                Direction::Decrypt,
                absorb_metadata,
            )),
            OffloadOp::Compress => {
                assert!(msg_len <= 4096, "compression is page-granular");
                DsaInstance::Compress(StreamBuf::new(msg_len, hw))
            }
            OffloadOp::Decompress => {
                assert!(msg_len <= 4096, "decompression input is page-granular");
                DsaInstance::Decompress(StreamBuf::new(msg_len, hw))
            }
        }
    }

    /// Feeds the cacheline at message byte `offset`. `valid` is the
    /// number of meaningful bytes (< 64 only on the final line).
    ///
    /// Returns the output lines produced by this input and, when the
    /// offload reaches its terminal state, the completion record.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is unaligned or out of range.
    pub fn process_line(&mut self, offset: usize, data: &[u8; 64], valid: usize) -> DsaOutput {
        assert_eq!(offset % 64, 0, "cacheline alignment");
        match self {
            DsaInstance::Tls(gcm) => {
                assert!(offset < gcm.msg_len(), "offset beyond message");
                let out = gcm.process_cacheline(offset, &data[..valid]);
                let mut line = [0u8; 64];
                line[..out.len()].copy_from_slice(&out);
                let completion = if gcm.is_complete() {
                    Some(DsaCompletion {
                        status: OffloadStatus::Done,
                        out_len: gcm.msg_len(),
                        tag: Some(gcm.tag()),
                    })
                } else {
                    None
                };
                DsaOutput {
                    produced: vec![(offset / 64, line)],
                    completion,
                }
            }
            DsaInstance::Compress(buf) => {
                let complete = buf.absorb(offset, data);
                if !complete {
                    return DsaOutput::default();
                }
                let mut hw = HwCompressor::new(buf.hw_config);
                let result = hw.compress_page(&buf.data);
                if result.data.len() >= buf.msg_len {
                    // Did not compress below the original size: hand the
                    // raw input back so the output never outgrows the
                    // registered destination pages.
                    DsaOutput {
                        produced: to_lines(&buf.data),
                        completion: Some(DsaCompletion {
                            status: OffloadStatus::Incompressible,
                            out_len: buf.msg_len,
                            tag: None,
                        }),
                    }
                } else {
                    DsaOutput {
                        produced: to_lines(&result.data),
                        completion: Some(DsaCompletion {
                            status: OffloadStatus::Done,
                            out_len: result.data.len(),
                            tag: None,
                        }),
                    }
                }
            }
            DsaInstance::Decompress(buf) => {
                let complete = buf.absorb(offset, data);
                if !complete {
                    return DsaOutput::default();
                }
                match ulp_compress::inflate::decompress(&buf.data) {
                    Ok(out) if !out.is_empty() && out.len() <= 4096 => DsaOutput {
                        produced: to_lines(&out),
                        completion: Some(DsaCompletion {
                            status: OffloadStatus::Done,
                            out_len: out.len(),
                            tag: None,
                        }),
                    },
                    _ => DsaOutput {
                        produced: Vec::new(),
                        completion: Some(DsaCompletion {
                            status: OffloadStatus::Error,
                            out_len: 0,
                            tag: None,
                        }),
                    },
                }
            }
        }
    }

    /// For TLS engines: `(bytes processed, raw GHASH accumulator)` — the
    /// per-channel partial result exposed through the result slot under
    /// interleaving. `None` for (de)compression engines.
    pub fn partial(&self) -> Option<(usize, [u8; 16])> {
        match self {
            DsaInstance::Tls(g) => Some((g.bytes_processed(), g.partial_ghash())),
            _ => None,
        }
    }

    /// Total input length this engine expects.
    pub fn msg_len(&self) -> usize {
        match self {
            DsaInstance::Tls(g) => g.msg_len(),
            DsaInstance::Compress(s) | DsaInstance::Decompress(s) => s.msg_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_crypto::gcm::AesGcm;

    #[test]
    fn context_round_trip_tls() {
        let op = OffloadOp::TlsEncrypt {
            key: [3u8; 16],
            iv: [4u8; 12],
        };
        let ctx = op.encode_context(12345, b"hdr55");
        let (op2, len, aad, absorb) = OffloadOp::decode_context(&ctx).unwrap();
        assert_eq!(op2, op);
        assert_eq!(len, 12345);
        assert_eq!(aad, b"hdr55");
        assert!(absorb);
        let ctx = op.encode_context_with_policy(4096, b"", false);
        assert!(!OffloadOp::decode_context(&ctx).unwrap().3);
        let mut corrupt = ctx;
        corrupt[0] = 9; // unknown op byte
        assert!(OffloadOp::decode_context(&corrupt).is_none());
        let mut corrupt = ctx;
        corrupt[1] = 200; // oversized AAD length
        assert!(OffloadOp::decode_context(&corrupt).is_none());
    }

    #[test]
    fn context_round_trip_compress() {
        let ctx = OffloadOp::Compress.encode_context(4096, b"");
        let (op, len, aad, _) = OffloadOp::decode_context(&ctx).unwrap();
        assert_eq!(op, OffloadOp::Compress);
        assert_eq!(len, 4096);
        assert!(aad.is_empty());
    }

    #[test]
    fn ordering_requirements() {
        assert!(!OffloadOp::TlsEncrypt {
            key: [0; 16],
            iv: [0; 12]
        }
        .requires_ordered());
        assert!(OffloadOp::Compress.requires_ordered());
        assert!(OffloadOp::TlsDecrypt {
            key: [0; 16],
            iv: [0; 12]
        }
        .size_preserving());
        assert!(!OffloadOp::Decompress.size_preserving());
    }

    #[test]
    fn tls_dsa_matches_software_gcm() {
        let key = [1u8; 16];
        let iv = [2u8; 12];
        let msg: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let mut dsa = DsaInstance::new(
            OffloadOp::TlsEncrypt { key, iv },
            msg.len(),
            b"",
            HwDeflateConfig::default(),
        );
        let mut out = vec![0u8; msg.len()];
        let mut completion = None;
        for start in [128usize, 0, 64, 192] {
            let valid = (msg.len() - start).min(64);
            let mut line = [0u8; 64];
            line[..valid].copy_from_slice(&msg[start..start + valid]);
            let o = dsa.process_line(start, &line, valid);
            for (idx, data) in o.produced {
                let begin = idx * 64;
                let n = (msg.len() - begin).min(64);
                out[begin..begin + n].copy_from_slice(&data[..n]);
            }
            if let Some(c) = o.completion {
                completion = Some(c);
            }
        }
        let gcm = AesGcm::new_128(&key);
        let (want, tag) = gcm.seal(&iv, b"", &msg);
        assert_eq!(out, want);
        let c = completion.expect("completed");
        assert_eq!(c.status, OffloadStatus::Done);
        assert_eq!(c.tag, Some(tag));
        assert_eq!(c.out_len, msg.len());
    }

    #[test]
    fn compress_dsa_emits_on_completion_only() {
        let page = ulp_compress::corpus::text(4096, 11);
        let mut dsa = DsaInstance::new(
            OffloadOp::Compress,
            page.len(),
            b"",
            HwDeflateConfig::default(),
        );
        let mut all_produced = Vec::new();
        let mut completion = None;
        for start in (0..page.len()).step_by(64) {
            let mut line = [0u8; 64];
            line.copy_from_slice(&page[start..start + 64]);
            let o = dsa.process_line(start, &line, 64);
            if start + 64 < page.len() {
                assert!(o.produced.is_empty(), "no output before completion");
            }
            all_produced.extend(o.produced);
            completion = completion.or(o.completion);
        }
        let c = completion.expect("completed");
        assert_eq!(c.status, OffloadStatus::Done);
        assert!(c.out_len < page.len());
        // Reassemble and verify.
        let mut bytes = Vec::new();
        for (i, (idx, line)) in all_produced.iter().enumerate() {
            assert_eq!(*idx, i);
            bytes.extend_from_slice(line);
        }
        bytes.truncate(c.out_len);
        assert_eq!(ulp_compress::inflate::decompress(&bytes).unwrap(), page);
    }

    #[test]
    fn compress_dsa_incompressible_fallback() {
        let page = ulp_compress::corpus::random(4096, 5);
        let mut dsa = DsaInstance::new(
            OffloadOp::Compress,
            page.len(),
            b"",
            HwDeflateConfig::default(),
        );
        let mut completion = None;
        for start in (0..page.len()).step_by(64) {
            let mut line = [0u8; 64];
            line.copy_from_slice(&page[start..start + 64]);
            completion = completion.or(dsa.process_line(start, &line, 64).completion);
        }
        let c = completion.expect("completed");
        assert_eq!(c.status, OffloadStatus::Incompressible);
        assert_eq!(c.out_len, page.len());
    }

    #[test]
    fn decompress_dsa_round_trip() {
        let page = ulp_compress::corpus::html(3000, 9);
        let compressed = ulp_compress::deflate::compress(&page);
        let mut dsa = DsaInstance::new(
            OffloadOp::Decompress,
            compressed.len(),
            b"",
            HwDeflateConfig::default(),
        );
        let mut out = Vec::new();
        let mut completion = None;
        for start in (0..compressed.len()).step_by(64) {
            let valid = (compressed.len() - start).min(64);
            let mut line = [0u8; 64];
            line[..valid].copy_from_slice(&compressed[start..start + valid]);
            let o = dsa.process_line(start, &line, valid);
            for (_, data) in o.produced {
                out.extend_from_slice(&data);
            }
            completion = completion.or(o.completion);
        }
        let c = completion.expect("completed");
        assert_eq!(c.status, OffloadStatus::Done);
        out.truncate(c.out_len);
        assert_eq!(out, page);
    }

    #[test]
    fn decompress_dsa_corrupt_stream_errors() {
        let garbage = [0xFFu8; 128];
        let mut dsa = DsaInstance::new(
            OffloadOp::Decompress,
            garbage.len(),
            b"",
            HwDeflateConfig::default(),
        );
        let mut completion = None;
        for start in (0..garbage.len()).step_by(64) {
            let mut line = [0u8; 64];
            line.copy_from_slice(&garbage[start..start + 64]);
            completion = completion.or(dsa.process_line(start, &line, 64).completion);
        }
        assert_eq!(completion.expect("terminal").status, OffloadStatus::Error);
    }

    #[test]
    fn duplicate_lines_are_idempotent_for_streams() {
        let page = ulp_compress::corpus::text(128, 2);
        let mut dsa = DsaInstance::new(
            OffloadOp::Compress,
            page.len(),
            b"",
            HwDeflateConfig::default(),
        );
        let mut line0 = [0u8; 64];
        line0.copy_from_slice(&page[..64]);
        let _ = dsa.process_line(0, &line0, 64);
        let again = dsa.process_line(0, &line0, 64);
        assert!(again.produced.is_empty() && again.completion.is_none());
    }
}
