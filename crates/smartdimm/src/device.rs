//! The SmartDIMM buffer device: the arbiter of Fig. 6.
//!
//! Installed on a simulated DIMM as its `dram::BufferDevice`, it
//! implements the complete decision flow for every CAS command:
//!
//! * maintain the Bank Table from RAS/PRE commands and regenerate the
//!   physical address of each CAS (Addr Remap);
//! * serve the MMIO config space (status, registration, context, result
//!   slots, pending list) — these accesses never touch the DRAM chips;
//! * on a rdCAS inside a registered *source* range, forward the DRAM
//!   data to the DSA (S6) and stage the results in the Scratchpad, while
//!   returning the unmodified data to the host (CompCpy's copy still
//!   sees the original bytes);
//! * on a wrCAS to a *destination* line whose result is staged, replace
//!   the write data with the Scratchpad line and invalidate it —
//!   **Self-Recycle** (S9);
//! * ignore premature writebacks of still-pending lines (S7);
//! * on a rdCAS of a destination line, serve the Scratchpad copy if the
//!   line is still staged (S10), or assert `ALERT_N`/retry if the
//!   computation is pending (S13).

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

use dram::{AddressMapper, BufferDevice, CasInfo, DramTopology, PhysAddr, RdResult, WrResult};
use simkit::{Cycle, FaultHandle, Histogram, TimeSeries};
use ulp_compress::hwmodel::HwDeflateConfig;

use crate::banktable::BankTable;
use crate::configmem::{
    pack_pending, ContextChunk, OffloadStatus, PendingRecord, Registration, ResultSlot, StatusReg,
    CONFIG_SPACE_SIZE, CONTEXT_OFFSET, PENDING_BASE, REGISTER_OFFSET, RESULT_BASE, STATUS_OFFSET,
};
use crate::dsa::{DsaInstance, OffloadOp};
use crate::scratchpad::{LineState, Scratchpad};
use crate::xlat::{Mapping, TranslationTable};
use crate::{LINES_PER_PAGE, PAGE};

/// Hardware configuration of the buffer device (defaults = §VI).
#[derive(Debug, Clone, Copy)]
pub struct SmartDimmConfig {
    /// Scratchpad pages (2048 × 4 KB = 8 MB).
    pub scratchpad_pages: usize,
    /// Translation-table slots (3 × 4096 = 12288).
    pub xlat_entries: usize,
    /// CAM stash entries (8).
    pub cam_entries: usize,
    /// Result slots in Config Memory.
    pub result_slots: usize,
    /// Base physical address of the MMIO config space (page aligned).
    pub config_base: PhysAddr,
    /// DRAM topology (must match the memory system's).
    pub topology: DramTopology,
    /// Which memory channel this device sits on (one SmartDIMM per
    /// channel under interleaving, §V-D).
    pub channel: usize,
    /// Which DIMM slot of the channel carries this device. Slot 0 by
    /// convention — the other slots are plain capacity DIMMs whose CAS
    /// traffic this device never sees, so registrations must only claim
    /// lines that decode to this slot.
    pub dimm_slot: usize,
    /// Deflate DSA geometry.
    pub hw_deflate: HwDeflateConfig,
}

impl Default for SmartDimmConfig {
    fn default() -> Self {
        SmartDimmConfig {
            scratchpad_pages: 2048,
            xlat_entries: 12288,
            cam_entries: 8,
            result_slots: 1024,
            config_base: PhysAddr(0x4000_0000),
            topology: DramTopology::default(),
            channel: 0,
            dimm_slot: 0,
            hw_deflate: HwDeflateConfig::default(),
        }
    }
}

/// Buffer-device statistics (§VII-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Page-pair registrations received.
    pub registrations: u64,
    /// Offloads that reached a terminal DSA state.
    pub offloads_completed: u64,
    /// Source cachelines fed to a DSA.
    pub dsa_lines: u64,
    /// Lines self-recycled by intercepted writebacks.
    pub self_recycles: u64,
    /// Premature writebacks ignored (S7).
    pub ignored_writebacks: u64,
    /// Reads NACKed with `ALERT_N` (S13).
    pub alert_retries: u64,
    /// Destination reads served from the Scratchpad (S10).
    pub scratch_reads: u64,
    /// Registrations dropped because the Scratchpad was full (software
    /// should have Force-Recycled first).
    pub alloc_failures: u64,
    /// Translation-table insert failures (expected: zero).
    pub xlat_failures: u64,
    /// MMIO register writes handled.
    pub mmio_writes: u64,
    /// Source feeds the (injected) arbiter fault dropped.
    pub dropped_feeds: u64,
    /// CAS commands whose bank had no Bank Table entry (arbiter out of
    /// sync with the controller; recovered from the command's own row).
    pub bank_desyncs: u64,
    /// DSA output lines with no registered destination page to stage in.
    pub orphan_lines: u64,
    /// Whole-page source feeds accepted via the batched read protocol
    /// (one Translation Table probe per 4 KB page instead of per line).
    pub page_feeds: u64,
    /// Registrations rejected because the page pair's source and
    /// destination lines decode to different channels — a shard cannot
    /// serve a pair it only half-sees (§V-D); the host must route such
    /// pairs through a channel-aligned bounce buffer instead.
    pub cross_channel_rejects: u64,
}

/// One accepted-but-not-yet-computed DSA source feed.
///
/// Interception acceptance (translation hit, dedup via `processed`,
/// fault arbitration) happens at enqueue time — in exact command order —
/// while the ULP *compute* (`DsaInstance::process_line`) is deferred
/// until the first observation of derived state. Each entry carries the
/// cycle the feed arrived at, so the deferred replay stamps scratchpad
/// produce times and completions with the same simulated instants the
/// inline path would have.
#[derive(Debug)]
struct PendingFeed {
    offload: u64,
    byte_offset: usize,
    data: [u8; 64],
    valid: usize,
    at: Cycle,
    /// Device-local monotonic sequence number (the `seq` of the
    /// cross-channel `(cycle, channel, seq)` merge key).
    seq: u64,
}

#[derive(Debug)]
struct Offload {
    op: OffloadOp,
    msg_len: usize,
    dsa: DsaInstance,
    /// scratch page per destination page index of the message.
    dst_scratch: Vec<Option<usize>>,
    /// physical page address per destination page index.
    dst_phys: Vec<Option<u64>>,
    /// registered source page addresses (for cleanup).
    src_pages: Vec<u64>,
    /// per-source-line processed flags (dedup repeated rdCAS).
    processed: Vec<bool>,
    /// Compute DMA (§IV-E): the DSA is fed by source-range *writes*.
    dma_input: bool,
    done: bool,
}

/// The buffer device. See the module docs for the protocol.
pub struct SmartDimmDevice {
    cfg: SmartDimmConfig,
    mapper: AddressMapper,
    bank_table: BankTable,
    xlat: TranslationTable,
    scratchpad: Scratchpad,
    offloads: BTreeMap<u64, Offload>,
    contexts: BTreeMap<u64, [u8; 48]>,
    results: Vec<[u8; 64]>,
    /// Offload currently owning each result slot (for live partial reads).
    slot_owner: Vec<Option<u64>>,
    stats: DeviceStats,
    /// Cycle at which each staged line was produced, for slack tracking.
    produce_time: BTreeMap<(usize, usize), Cycle>,
    /// rdCAS(sbuf) → wrCAS(dbuf) slack histogram (cycles, §IV-D).
    slack: Histogram,
    /// Fault injector (tests only; `None` costs nothing).
    fault: Option<FaultHandle>,
    /// Accepted source feeds whose ULP compute has not run yet. Drained
    /// (in FIFO = arrival order) before any access that could observe
    /// compute-derived state; between those points the queue lets the
    /// shard's compute run on a `simkit::par` worker.
    feed_q: VecDeque<PendingFeed>,
    /// Next per-device feed sequence number (monotonic, never reused).
    feed_seq: u64,
    /// Sentinel pages holding injected translation pressure.
    injected_xlat_pages: Vec<u64>,
    /// Sentinel destination pages of injected scratchpad hogs.
    injected_hog_pages: Vec<u64>,
    /// Next free sentinel page number for injections.
    sentinel_next: u64,
}

impl std::fmt::Debug for SmartDimmDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmartDimmDevice")
            .field("offloads", &self.offloads.len())
            .field("free_pages", &self.scratchpad.free_pages())
            .finish()
    }
}

impl SmartDimmDevice {
    /// Builds the device.
    ///
    /// # Panics
    ///
    /// Panics if `config_base` is not page aligned.
    pub fn new(cfg: SmartDimmConfig) -> SmartDimmDevice {
        assert!(cfg.config_base.is_page_aligned(), "config base alignment");
        let topo = cfg.topology;
        SmartDimmDevice {
            mapper: AddressMapper::new(topo),
            bank_table: BankTable::new(topo.ranks, topo.banks_per_rank()),
            xlat: TranslationTable::new(cfg.xlat_entries, cfg.cam_entries),
            scratchpad: Scratchpad::new(cfg.scratchpad_pages),
            offloads: BTreeMap::new(),
            contexts: BTreeMap::new(),
            results: vec![ResultSlot::empty().to_bytes(); cfg.result_slots],
            slot_owner: vec![None; cfg.result_slots],
            stats: DeviceStats::default(),
            produce_time: BTreeMap::new(),
            slack: Histogram::new("smartdimm.slack_cycles", 200, 2000),
            fault: None,
            feed_q: VecDeque::new(),
            feed_seq: 0,
            injected_xlat_pages: Vec::new(),
            injected_hog_pages: Vec::new(),
            // Sentinel pages for injected state: physical 0x3000_0000+,
            // far above the driver pool and below the MMIO window.
            sentinel_next: 0x30000,
            cfg,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &SmartDimmConfig {
        &self.cfg
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Free scratchpad pages right now.
    pub fn free_pages(&self) -> usize {
        self.scratchpad.free_pages()
    }

    /// Scratchpad occupancy time series (Fig. 10).
    pub fn occupancy_series(&self) -> &TimeSeries {
        self.scratchpad.occupancy_series()
    }

    /// Scratchpad statistics.
    pub fn scratchpad_stats(&self) -> crate::scratchpad::ScratchpadStats {
        self.scratchpad.stats()
    }

    /// Translation-table statistics (for the §IV-C ablation).
    pub fn xlat_stats(&self) -> crate::xlat::XlatStats {
        self.xlat.stats()
    }

    /// Read-only view of the translation table (oracle invariants).
    pub fn xlat(&self) -> &crate::xlat::TranslationTable {
        &self.xlat
    }

    /// The rdCAS→wrCAS slack histogram in DDR command-clock cycles
    /// (§IV-D reports the budget exceeds 1 µs = 1600 cycles).
    pub fn slack_histogram(&self) -> &Histogram {
        &self.slack
    }

    /// Registers every device statistic under `scope` as three sibling
    /// sub-scopes — `device` (protocol counters + slack histogram),
    /// `scratchpad`, and `xlat` — so a multi-channel host can mount each
    /// shard under `channel[i]` for a `telemetry/v1` snapshot.
    pub fn export_telemetry(&self, scope: &mut simkit::telemetry::Scope) {
        let s = self.stats;
        let dev_scope = scope.scope("device");
        dev_scope.set_counter("registrations", s.registrations);
        dev_scope.set_counter("offloads_completed", s.offloads_completed);
        dev_scope.set_counter("dsa_lines", s.dsa_lines);
        dev_scope.set_counter("self_recycles", s.self_recycles);
        dev_scope.set_counter("ignored_writebacks", s.ignored_writebacks);
        dev_scope.set_counter("alert_retries", s.alert_retries);
        dev_scope.set_counter("scratch_reads", s.scratch_reads);
        dev_scope.set_counter("alloc_failures", s.alloc_failures);
        dev_scope.set_counter("xlat_failures", s.xlat_failures);
        dev_scope.set_counter("mmio_writes", s.mmio_writes);
        dev_scope.set_counter("dropped_feeds", s.dropped_feeds);
        dev_scope.set_counter("bank_desyncs", s.bank_desyncs);
        dev_scope.set_counter("orphan_lines", s.orphan_lines);
        dev_scope.set_counter("page_feeds", s.page_feeds);
        dev_scope.set_counter("cross_channel_rejects", s.cross_channel_rejects);
        dev_scope.set_histogram("slack_cycles", &self.slack);
        let sp = self.scratchpad.stats();
        let sp_scope = scope.scope("scratchpad");
        sp_scope.set_counter("allocs", sp.allocs);
        sp_scope.set_counter("frees", sp.frees);
        sp_scope.set_counter("self_recycled_lines", sp.self_recycled_lines);
        sp_scope.set_counter("peak_bytes", sp.peak_bytes as u64);
        sp_scope.set_counter("free_pages", self.scratchpad.free_pages() as u64);
        sp_scope.set_time_series("occupancy_bytes", self.scratchpad.occupancy_series());
        let xs = self.xlat.stats();
        let xl_scope = scope.scope("xlat");
        xl_scope.set_counter("inserts", xs.inserts);
        xl_scope.set_counter("first_try", xs.first_try);
        xl_scope.set_counter("displacements", xs.displacements);
        xl_scope.set_counter("stash_spills", xs.stash_spills);
        xl_scope.set_counter("failures", xs.failures);
        xl_scope.set_counter("lookups", xs.lookups);
    }

    /// Installs a fault injector. Device-side hooks (dropped S6
    /// interceptions) consult it; the injection helpers below apply the
    /// preparation faults the CompCpy host arms per offload.
    pub fn set_fault_handle(&mut self, fault: FaultHandle) {
        self.fault = Some(fault);
    }

    /// Fault injection: inserts up to `entries` dummy source
    /// registrations (competing tenants) into the translation table.
    /// Returns how many fit before `TableFull`.
    pub fn inject_xlat_pressure(&mut self, entries: usize) -> usize {
        // Table occupancy is compute-derived (finalize retires entries);
        // settle pending feeds so the pressure result is deterministic.
        self.drain_feeds();
        let mut inserted = 0;
        for _ in 0..entries {
            let page = self.sentinel_next;
            self.sentinel_next += 1;
            let mapping = Mapping::Source {
                offload: u64::MAX,
                msg_offset: 0,
            };
            if self.xlat.insert(page, mapping).is_err() {
                break;
            }
            self.injected_xlat_pages.push(page);
            inserted += 1;
        }
        inserted
    }

    /// Fault injection: stages up to `pages` phantom scratchpad pages
    /// (every line valid, owner never consumes them). They appear in the
    /// pending list, so Force-Recycle can genuinely reclaim them with its
    /// flush + explicit-write passes. Returns how many were staged.
    pub fn inject_scratch_hog(&mut self, at: Cycle, pages: usize) -> usize {
        // Scratchpad occupancy is compute-derived; settle first so the
        // number of hog pages that fit does not depend on drain timing.
        self.drain_feeds();
        let mut staged = 0;
        for _ in 0..pages {
            let dst_page = self.sentinel_next;
            self.sentinel_next += 1;
            let mask = crate::scratchpad::prefix_mask(LINES_PER_PAGE);
            let Some(sp) = self.scratchpad.alloc(at, dst_page, mask) else {
                break;
            };
            let mapping = Mapping::Dest {
                offload: u64::MAX,
                msg_offset: 0,
                scratch_page: sp,
            };
            if self.xlat.insert(dst_page, mapping).is_err() {
                self.scratchpad.force_free(at, sp);
                break;
            }
            for line in 0..LINES_PER_PAGE {
                self.scratchpad.produce(sp, line, [0xA5u8; 64]);
            }
            self.injected_hog_pages.push(dst_page);
            staged += 1;
        }
        staged
    }

    /// Drains injected state that survived the offload: phantom pressure
    /// registrations and any hog pages Force-Recycle did not reclaim
    /// (modeling the competing tenants retiring their offloads).
    pub fn clear_injected(&mut self, at: Cycle) {
        self.drain_feeds();
        for page in self.injected_xlat_pages.drain(..) {
            self.xlat.remove(page);
        }
        for page in self.injected_hog_pages.drain(..) {
            if let Some(Mapping::Dest { scratch_page, .. }) = self.xlat.peek(page) {
                self.scratchpad.force_free(at, scratch_page);
                self.xlat.remove(page);
            }
        }
    }

    /// Live injected entries (pressure registrations + unreclaimed hogs).
    pub fn injected_entries(&self) -> usize {
        self.injected_xlat_pages.len()
            + self
                .injected_hog_pages
                .iter()
                .filter(|&&p| self.xlat.peek(p).is_some())
                .count()
    }

    fn in_config_space(&self, addr: PhysAddr) -> bool {
        let span = CONFIG_SPACE_SIZE * self.cfg.topology.channels as u64;
        addr.0 >= self.cfg.config_base.0 && addr.0 < self.cfg.config_base.0 + span
    }

    /// Whether `line_addr` decodes to this shard's channel *and* DIMM
    /// slot — the only lines whose CAS traffic this device observes
    /// (capacity DIMMs on the same bus carry no DSA).
    fn line_on_shard(&self, line_addr: PhysAddr) -> bool {
        let loc = self.mapper.decode(line_addr);
        loc.channel == self.cfg.channel
            && self.cfg.topology.dimm_slot_of_rank(loc.rank) == self.cfg.dimm_slot
    }

    /// De-interleaves a physical config-space address into this device's
    /// logical register offset. Fine-grain channel interleaving spreads
    /// consecutive cachelines across channels, so each DIMM's private
    /// register window is the subset of lines that map to its channel;
    /// the logical offset is the line's rank within that subset (§V-D).
    fn mmio_logical_offset(&self, addr: PhysAddr) -> u64 {
        let topo = &self.cfg.topology;
        let ch = topo.channels as u64;
        let g = topo.channel_interleave_lines as u64;
        let li = (addr.0 - self.cfg.config_base.0) / 64;
        let logical_line = (li / (ch * g)) * g + li % g;
        logical_line * 64 + (addr.0 - self.cfg.config_base.0) % 64
    }

    fn handle_mmio_read(&mut self, addr: PhysAddr) -> [u8; 64] {
        let off = self.mmio_logical_offset(addr);
        match off {
            STATUS_OFFSET => StatusReg {
                free_pages: self.scratchpad.free_pages() as u64,
                pending_pages: self.scratchpad.pending_pages().len() as u64,
                self_recycled: self.stats.self_recycles,
                ignored_writebacks: self.stats.ignored_writebacks,
            }
            .to_bytes(),
            o if o >= RESULT_BASE && o < RESULT_BASE + (self.results.len() as u64) * 64 => {
                let slot = ((o - RESULT_BASE) / 64) as usize;
                // Live TLS offloads expose their running partial result
                // (bytes processed + raw GHASH accumulator) so the host
                // can combine per-channel partials under interleaving.
                if let Some(owner) = self.slot_owner[slot] {
                    if let Some(off) = self.offloads.get(&owner) {
                        if !off.done {
                            if let Some((bytes, partial)) = off.dsa.partial() {
                                return ResultSlot {
                                    status: OffloadStatus::Partial,
                                    out_len: bytes as u64,
                                    tag: partial,
                                }
                                .to_bytes();
                            }
                        }
                    }
                }
                self.results[slot]
            }
            o if (PENDING_BASE..CONFIG_SPACE_SIZE).contains(&o) => {
                let index = ((o - PENDING_BASE) / 64) as usize * 4;
                let pending = self.scratchpad.pending_pages();
                let records: Vec<PendingRecord> = pending
                    .iter()
                    .skip(index)
                    .take(4)
                    .map(|&(sp, dst_page)| {
                        let mut bitmap = 0u64;
                        for line in self.scratchpad.valid_lines(sp) {
                            bitmap |= 1 << line;
                        }
                        PendingRecord {
                            dst_page_addr: dst_page << 12,
                            valid_bitmap: bitmap,
                        }
                    })
                    .collect();
                pack_pending(&records)
            }
            _ => [0u8; 64],
        }
    }

    fn handle_mmio_write(&mut self, at: Cycle, addr: PhysAddr, data: &[u8; 64]) {
        self.stats.mmio_writes += 1;
        let off = self.mmio_logical_offset(addr);
        match off {
            REGISTER_OFFSET => self.register(at, Registration::from_bytes(data)),
            CONTEXT_OFFSET => {
                let chunk = ContextChunk::from_bytes(data);
                self.contexts.insert(chunk.offload_id, chunk.payload);
                // Hardware context memory is finite: retire the oldest
                // entries once we exceed the result-slot count (ids are
                // monotonic, so first = oldest). Keeps non-participating
                // shards of a multi-channel broadcast from growing the
                // map without bound.
                while self.contexts.len() > self.results.len() {
                    self.contexts.pop_first();
                }
            }
            _ => {}
        }
    }

    fn register(&mut self, at: Cycle, reg: Registration) {
        self.stats.registrations += 1;
        let Some(payload) = self.contexts.get(&reg.offload_id).copied() else {
            // Context must precede registration; drop silently (counts as
            // a software bug surfaced by the xlat_failures stat).
            self.stats.xlat_failures += 1;
            return;
        };
        let Some((op, msg_len, aad, absorb_metadata, dma_input)) =
            OffloadOp::decode_context_full(&payload)
        else {
            // Corrupt context payload: reject the registration.
            self.stats.xlat_failures += 1;
            return;
        };
        let page_index = (reg.msg_offset as usize) / PAGE;
        let num_pages = msg_len.div_ceil(PAGE);
        if page_index >= num_pages {
            // A descriptor whose msg_offset lies beyond the message is a
            // driver bug; the hardware must reject it, not fault on it.
            self.stats.xlat_failures += 1;
            return;
        }

        // Lazily create the offload state on its first page registration.
        if !self.offloads.contains_key(&reg.offload_id) {
            let dsa = DsaInstance::with_metadata_policy(
                op,
                msg_len,
                &aad,
                self.cfg.hw_deflate,
                absorb_metadata,
            );
            self.offloads.insert(
                reg.offload_id,
                Offload {
                    op,
                    msg_len,
                    dsa,
                    dst_scratch: vec![None; num_pages],
                    dst_phys: vec![None; num_pages],
                    src_pages: Vec::new(),
                    processed: vec![false; msg_len.div_ceil(64)],
                    dma_input,
                    done: false,
                },
            );
            let slot = (reg.offload_id as usize) % self.results.len();
            self.results[slot] = ResultSlot::empty().to_bytes();
            self.slot_owner[slot] = Some(reg.offload_id);
        }

        // A destination page may be re-registered before its previous
        // offload fully recycled (e.g. a persistent connection reusing
        // its record buffer while some lines had their writebacks ignored
        // at S7). The new registration supersedes the old staging.
        if let Some(Mapping::Dest {
            offload: old_id,
            msg_offset: old_off,
            scratch_page: old_sp,
        }) = self.xlat.peek(reg.dst_page_addr >> 12)
        {
            self.scratchpad.force_free(at, old_sp);
            self.xlat.remove(reg.dst_page_addr >> 12);
            if let Some(old) = self.offloads.get_mut(&old_id) {
                let old_page_index = old_off / PAGE;
                if let Some(s) = old.dst_scratch.get_mut(old_page_index) {
                    *s = None;
                }
                if let Some(p) = old.dst_phys.get_mut(old_page_index) {
                    *p = None;
                }
            }
            if old_id != reg.offload_id {
                // Same-id re-registration must not drop the offload we are
                // in the middle of (re)registering: its first page pair has
                // no staging yet, so maybe_drop_offload would reap it here.
                self.maybe_drop_offload(old_id);
            }
        }

        // Bytes of the message covered by this page.
        let covered = (msg_len - reg.msg_offset as usize).min(PAGE);
        let covered_lines = match op {
            // Size-preserving: output lines mirror the input coverage.
            OffloadOp::TlsEncrypt { .. } | OffloadOp::TlsDecrypt { .. } => covered.div_ceil(64),
            // Compression output never exceeds its input (stored/raw
            // fallback), so the input coverage bounds it.
            OffloadOp::Compress => covered.div_ceil(64),
            // Decompression can expand up to the full 4 KB page; the
            // actual count is trimmed at completion (§V-C registers as
            // many destination pages as source pages).
            OffloadOp::Decompress => LINES_PER_PAGE,
        };
        // Under channel interleaving this DIMM stages only the covered
        // lines whose addresses map to its channel (§V-D).
        let mut expected_mask = 0u64;
        for l in 0..covered_lines {
            let line_addr = PhysAddr(reg.dst_page_addr + (l as u64) * 64);
            if self.line_on_shard(line_addr) {
                expected_mask |= 1u64 << l;
            }
        }
        // The source lines this shard will see on its own channel. A
        // shard can only serve a page pair it sees both sides of: the
        // rd-CAS feed (source) and the wr-CAS/rd-CAS staging (dest) are
        // both routed per channel decode, so a pair whose masks disagree
        // would stage destination lines that are never fed (or feed a
        // DSA whose output it cannot stage) and hang at S13.
        let src_lines = covered.div_ceil(64);
        let mut src_mask = 0u64;
        for l in 0..src_lines {
            let line_addr = PhysAddr(reg.src_page_addr + (l as u64) * 64);
            if self.line_on_shard(line_addr) {
                src_mask |= 1u64 << l;
            }
        }
        if expected_mask == 0 && src_mask == 0 {
            // No cacheline of this pair lands on this DIMM; drop the
            // lazily-created record if no earlier page touched us (the
            // context stays: a later page of the offload may land here).
            self.reap_if_untouched(reg.offload_id);
            return;
        }
        let aligned = match op {
            // Size-preserving ops and compression cover the same line
            // count on both sides: the shard must see line i of the
            // source exactly when it stages line i of the destination.
            OffloadOp::TlsEncrypt { .. } | OffloadOp::TlsDecrypt { .. } | OffloadOp::Compress => {
                src_mask == expected_mask
            }
            // Decompression output spans the whole page regardless of
            // input coverage, so both pages must be entirely on this
            // channel (page-granular placement, e.g. coarse interleave).
            OffloadOp::Decompress => {
                src_mask == crate::scratchpad::prefix_mask(src_lines)
                    && expected_mask == crate::scratchpad::prefix_mask(covered_lines)
            }
        };
        if !aligned {
            // Cross-channel page pair: the host driver must bounce it
            // through a channel-aligned buffer. Reject loudly instead of
            // hanging the offload.
            self.stats.cross_channel_rejects += 1;
            self.reap_if_untouched(reg.offload_id);
            return;
        }
        let Some(scratch_page) = self
            .scratchpad
            .alloc(at, reg.dst_page_addr >> 12, expected_mask)
        else {
            self.stats.alloc_failures += 1;
            return;
        };

        let src_ok = self.xlat.insert(
            reg.src_page_addr >> 12,
            Mapping::Source {
                offload: reg.offload_id,
                msg_offset: reg.msg_offset as usize,
            },
        );
        let dst_ok = self.xlat.insert(
            reg.dst_page_addr >> 12,
            Mapping::Dest {
                offload: reg.offload_id,
                msg_offset: reg.msg_offset as usize,
                scratch_page,
            },
        );
        if src_ok.is_err() || dst_ok.is_err() {
            // Roll back: a half-registered page pair must not leak its
            // scratchpad page or leave a dangling translation behind.
            self.stats.xlat_failures += 1;
            self.scratchpad.force_free(at, scratch_page);
            if src_ok.is_ok() {
                self.xlat.remove(reg.src_page_addr >> 12);
            }
            if dst_ok.is_ok() {
                self.xlat.remove(reg.dst_page_addr >> 12);
            }
            return;
        }
        let Some(off) = self.offloads.get_mut(&reg.offload_id) else {
            // The offload record vanished (should be unreachable now that
            // same-id supersede keeps it alive); unwind the registration
            // instead of faulting the device.
            self.stats.xlat_failures += 1;
            self.scratchpad.force_free(at, scratch_page);
            self.xlat.remove(reg.src_page_addr >> 12);
            self.xlat.remove(reg.dst_page_addr >> 12);
            return;
        };
        // `page_index < num_pages` was checked above; the vectors were
        // sized with `num_pages` when the record was created.
        if let Some(s) = off.dst_scratch.get_mut(page_index) {
            *s = Some(scratch_page);
        }
        if let Some(p) = off.dst_phys.get_mut(page_index) {
            *p = Some(reg.dst_page_addr >> 12);
        }
        off.src_pages.push(reg.src_page_addr >> 12);
    }

    /// Accepts a source feed: dedup/fault arbitration already happened
    /// at the caller (in command order); the compute itself is deferred.
    fn enqueue_feed(
        &mut self,
        offload: u64,
        byte_offset: usize,
        data: [u8; 64],
        valid: usize,
        at: Cycle,
    ) {
        let seq = self.feed_seq;
        self.feed_seq += 1;
        self.feed_q.push_back(PendingFeed {
            offload,
            byte_offset,
            data,
            valid,
            at,
            seq,
        });
    }

    /// Runs every deferred source feed through its DSA engine, in
    /// arrival (FIFO) order, stamping outputs and completions with each
    /// feed's recorded cycle. After this returns, device state is
    /// byte-identical to a device that computed every feed inline —
    /// which is why any access that can observe compute-derived state
    /// (MMIO, destination lines, injections) drains first, and why
    /// running different shards' drains on different worker threads
    /// cannot change any simulated outcome.
    fn drain_feeds(&mut self) -> u64 {
        let mut drained = 0u64;
        while let Some(e) = self.feed_q.pop_front() {
            drained += 1;
            // The record can only vanish between enqueue and drain via a
            // drained completion of the same offload (e.g. a zero-output
            // trim); the inline path would have fed a completed engine's
            // leftover line into nothing as well, so skip quietly.
            let Some(off) = self.offloads.get_mut(&e.offload) else {
                continue;
            };
            let out = off.dsa.process_line(e.byte_offset, &e.data, e.valid);
            Self::stage_outputs(
                &mut self.scratchpad,
                &mut self.produce_time,
                &mut self.stats,
                off,
                e.at,
                &out.produced,
            );
            if let Some(c) = out.completion {
                self.finalize(e.at, e.offload, c);
            }
        }
        drained
    }

    /// Host-side channel-sync point: drains every deferred feed and
    /// returns the `(cycle, seq)` key of each drained event, in this
    /// shard's own stream order — ready for the deterministic
    /// `(cycle, channel, seq)` cross-channel merge
    /// (`simkit::par::merge_ordered`). Called by the host through the
    /// sanctioned shard API; also safe (and a no-op) when nothing is
    /// pending.
    pub fn settle(&mut self) -> Vec<(u64, u64)> {
        let keys: Vec<(u64, u64)> = self.feed_q.iter().map(|e| (e.at.raw(), e.seq)).collect();
        self.drain_feeds();
        keys
    }

    /// Deferred source feeds currently queued (0 once settled).
    pub fn pending_feeds(&self) -> usize {
        self.feed_q.len()
    }

    /// Routes DSA output lines into the scratchpad pages of the offload.
    fn stage_outputs(
        scratchpad: &mut Scratchpad,
        produce_time: &mut BTreeMap<(usize, usize), Cycle>,
        stats: &mut DeviceStats,
        off: &Offload,
        at: Cycle,
        produced: &[(usize, [u8; 64])],
    ) {
        for &(out_line, data) in produced {
            let page_index = out_line / LINES_PER_PAGE;
            let line_in_page = out_line % LINES_PER_PAGE;
            // An output line beyond the registered destination range (or
            // landing on a superseded page) has nowhere to go: count it
            // and drop the data rather than faulting the device.
            let Some(Some(scratch)) = off.dst_scratch.get(page_index).copied() else {
                stats.orphan_lines += 1;
                continue;
            };
            if scratchpad.line_state(scratch, line_in_page) == LineState::Pending {
                scratchpad.produce(scratch, line_in_page, data);
                produce_time.insert((scratch, line_in_page), at);
            }
        }
    }

    fn finalize(&mut self, at: Cycle, offload_id: u64, completion: crate::dsa::DsaCompletion) {
        let slot = (offload_id as usize) % self.results.len();
        self.results[slot] = ResultSlot {
            status: completion.status,
            out_len: completion.out_len as u64,
            tag: completion.tag.unwrap_or([0u8; 16]),
        }
        .to_bytes();
        self.stats.offloads_completed += 1;
        let Some(off) = self.offloads.get_mut(&offload_id) else {
            return; // completion raced a full supersede; result already stored
        };
        off.done = true;
        if !off.op.size_preserving() {
            // Trim destination pages to the actual output size.
            let out_lines = completion.out_len.div_ceil(64);
            for (page_index, scratch) in off.dst_scratch.clone().iter().enumerate() {
                let Some(sp) = *scratch else { continue };
                let start_line = page_index * LINES_PER_PAGE;
                let lines_here = out_lines.saturating_sub(start_line).min(LINES_PER_PAGE);
                let freed_before = self.scratchpad.free_pages();
                self.scratchpad
                    .set_expected(at, sp, crate::scratchpad::prefix_mask(lines_here));
                if self.scratchpad.free_pages() > freed_before {
                    // Page freed entirely (no output lines landed here).
                    self.cleanup_dst_page(offload_id, page_index);
                }
            }
        }
        self.maybe_drop_offload(offload_id);
    }

    fn cleanup_dst_page(&mut self, offload_id: u64, page_index: usize) {
        if let Some(off) = self.offloads.get_mut(&offload_id) {
            if let Some(dst_page) = off.dst_phys.get_mut(page_index).and_then(Option::take) {
                self.xlat.remove(dst_page);
            }
            if let Some(s) = off.dst_scratch.get_mut(page_index) {
                *s = None;
            }
        }
    }

    /// Removes the lazily-created record for `offload_id` if no page
    /// pair has actually landed on this shard. The registration
    /// broadcast reaches every channel, so non-participating shards must
    /// not accumulate empty records. The context entry is kept: a later
    /// page of the same offload may still decode to this channel.
    fn reap_if_untouched(&mut self, offload_id: u64) {
        let untouched = match self.offloads.get(&offload_id) {
            Some(off) => off.src_pages.is_empty() && off.dst_scratch.iter().all(|s| s.is_none()),
            None => false,
        };
        if !untouched {
            return;
        }
        self.offloads.remove(&offload_id);
        let slot = (offload_id as usize) % self.results.len();
        if let Some(owner) = self.slot_owner.get_mut(slot) {
            if *owner == Some(offload_id) {
                *owner = None;
            }
        }
    }

    fn maybe_drop_offload(&mut self, offload_id: u64) {
        // An offload is dead once no destination page stages output for
        // it anymore — either it completed and fully recycled, or every
        // page was superseded by re-registrations.
        let drop_it = match self.offloads.get(&offload_id) {
            Some(off) => off.dst_scratch.iter().all(|s| s.is_none()),
            None => false,
        };
        if !drop_it {
            return;
        }
        let Some(off) = self.offloads.remove(&offload_id) else {
            return;
        };
        let slot = (offload_id as usize) % self.results.len();
        if !off.done {
            // A partial TLS engine (channel interleaving) fully
            // recycled without a device-local completion: persist its
            // partial result for the host-side combine.
            if let Some((bytes, partial)) = off.dsa.partial() {
                self.results[slot] = ResultSlot {
                    status: OffloadStatus::Partial,
                    out_len: bytes as u64,
                    tag: partial,
                }
                .to_bytes();
            }
        }
        if self.slot_owner[slot] == Some(offload_id) {
            self.slot_owner[slot] = None;
        }
        for src in off.src_pages {
            // A newer offload may have re-registered the same source
            // page (persistent connections reuse buffers): remove the
            // translation only if it still belongs to this offload.
            if let Some(Mapping::Source { offload, .. }) = self.xlat.peek(src) {
                if offload == offload_id {
                    self.xlat.remove(src);
                }
            }
        }
        self.contexts.remove(&offload_id);
    }
}

impl BufferDevice for SmartDimmDevice {
    fn on_activate(&mut self, _at: Cycle, rank: usize, bank_index: usize, row: usize) {
        // An activate on an already-open bank means we missed the
        // controller's implicit precharge: the shadowed row was stale.
        if self.bank_table.activate(rank, bank_index, row) {
            self.stats.bank_desyncs += 1;
        }
    }

    fn on_precharge(&mut self, _at: Cycle, rank: usize, bank_index: usize) {
        self.bank_table.precharge(rank, bank_index);
    }

    fn on_rd_cas(&mut self, info: &CasInfo, dram_data: &[u8; 64]) -> RdResult {
        // Addr Remap: regenerate the physical address from the Bank
        // Table's active row plus the CAS coordinates (§IV-C). A CAS to a
        // precharged bank means the Bank Table lost sync with the
        // controller; recover from the command's own row and count it.
        let row = match self.bank_table.active_row(info.loc.rank, info.bank_index) {
            Some(row) => row,
            None => {
                self.stats.bank_desyncs += 1;
                info.loc.row
            }
        };
        debug_assert_eq!(row, info.loc.row, "bank table out of sync");
        let mut loc = info.loc;
        loc.row = row;
        let phys = self.mapper.encode(&loc);
        debug_assert_eq!(phys, info.phys, "addr remap mismatch");

        if self.in_config_space(phys) {
            // MMIO observes results, partials, free pages and the
            // pending list — all compute-derived: sync the shard first.
            self.drain_feeds();
            return RdResult::Data(self.handle_mmio_read(phys));
        }

        let page = phys.page();
        // Destination handling may need a drain (staged lines and even
        // the translation entry itself are compute-derived); the loop
        // re-resolves the lookup once after draining.
        loop {
            match self.xlat.lookup(page) {
                None => return RdResult::Data(*dram_data), // S4: regular DIMM
                Some(Mapping::Source {
                    offload,
                    msg_offset,
                }) => {
                    // S6: accept the feed in command order; defer the
                    // compute. The data still passes through unchanged.
                    let line_in_page = ((phys.0 & 0xFFF) / 64) as usize;
                    let byte_offset = msg_offset + line_in_page * 64;
                    let Some(off) = self.offloads.get_mut(&offload) else {
                        return RdResult::Data(*dram_data);
                    };
                    if off.dma_input {
                        // Compute DMA: the DSA is fed by writes, not reads.
                        return RdResult::Data(*dram_data);
                    }
                    if byte_offset >= off.msg_len {
                        return RdResult::Data(*dram_data); // tail beyond message
                    }
                    let line_index = byte_offset / 64;
                    if off.processed[line_index] {
                        return RdResult::Data(*dram_data); // repeat read
                    }
                    if let Some(f) = &self.fault {
                        // Injected interception miss: the arbiter fails to feed
                        // this line. `processed` stays clear, so a host re-read
                        // of the source range recovers the offload.
                        if f.drop_source_feed(line_index) {
                            self.stats.dropped_feeds += 1;
                            return RdResult::Data(*dram_data);
                        }
                    }
                    off.processed[line_index] = true;
                    let valid = (off.msg_len - byte_offset).min(64);
                    self.stats.dsa_lines += 1;
                    self.enqueue_feed(offload, byte_offset, *dram_data, valid, info.at);
                    return RdResult::Data(*dram_data);
                }
                Some(Mapping::Dest { scratch_page, .. }) => {
                    if !self.feed_q.is_empty() {
                        self.drain_feeds();
                        continue; // the drain may have retired this entry
                    }
                    let line_in_page = ((phys.0 & 0xFFF) / 64) as usize;
                    return match self.scratchpad.line_state(scratch_page, line_in_page) {
                        LineState::Valid => {
                            // S10: serve from the Scratchpad.
                            self.stats.scratch_reads += 1;
                            RdResult::Data(self.scratchpad.read(scratch_page, line_in_page))
                        }
                        LineState::Pending => {
                            // S13: computation unfinished — ALERT_N retry.
                            self.stats.alert_retries += 1;
                            RdResult::Retry
                        }
                        LineState::Done => RdResult::Data(*dram_data),
                    };
                }
            }
        }
    }

    fn page_read_supported(&mut self, base: PhysAddr) -> bool {
        // Batched page reads bypass the per-line CAS interception, so they
        // are only safe when nothing on this page needs per-line handling:
        //  * config-space reads must go through the MMIO handler,
        //  * destination pages can hold Pending lines that demand a Retry
        //    (inexpressible in a batch),
        //  * an installed fault handle must see each source feed
        //    individually to decide which ones to drop.
        if self.fault.is_some() {
            return false;
        }
        if self.in_config_space(base) || self.in_config_space(PhysAddr(base.0 + 0xFFF)) {
            return false;
        }
        if matches!(self.xlat.peek(base.page()), Some(Mapping::Dest { .. })) {
            // A pending feed may retire this destination entry (finalize
            // removes translations); settle before denying the batch.
            if self.feed_q.is_empty() {
                return false;
            }
            self.drain_feeds();
            return !matches!(self.xlat.peek(base.page()), Some(Mapping::Dest { .. }));
        }
        true
    }

    fn on_rd_page(
        &mut self,
        base: PhysAddr,
        first_at: Cycle,
        stride: u64,
        // simlint: allow(PANIC-INDEX): fixed-size array type annotation, not an indexing expression
        data: &mut [[u8; 64]; 64],
    ) {
        // S6 for a whole page at once: one Translation Table probe covers
        // all 64 lines (they share a page number). Unmapped pages pass
        // through untouched, exactly like the per-line S4 path.
        let Some(Mapping::Source {
            offload,
            msg_offset,
        }) = self.xlat.lookup(base.page())
        else {
            return;
        };
        self.stats.page_feeds += 1;
        let Some(off) = self.offloads.get_mut(&offload) else {
            return;
        };
        if off.dma_input {
            return; // Compute DMA: the DSA is fed by writes, not reads.
        }
        // Accept every in-range line now (command order fixes `processed`
        // and the counters); defer the DSA compute to the next drain.
        let mut accepted: Vec<(usize, [u8; 64], usize, Cycle)> = Vec::new();
        for (line_in_page, line) in data.iter().enumerate() {
            // Line i's burst issues i strides after the first — the same
            // instant the per-line path would stamp in `CasInfo::at`, so
            // scratchpad produce times (and thus the slack histogram)
            // match the serialized command stream.
            let at = first_at + (line_in_page as u64) * stride;
            let byte_offset = msg_offset + line_in_page * 64;
            if byte_offset >= off.msg_len {
                break; // tail beyond message
            }
            let line_index = byte_offset / 64;
            if off.processed[line_index] {
                continue; // repeat read
            }
            off.processed[line_index] = true;
            let valid = (off.msg_len - byte_offset).min(64);
            self.stats.dsa_lines += 1;
            accepted.push((byte_offset, *line, valid, at));
        }
        for (byte_offset, line, valid, at) in accepted {
            self.enqueue_feed(offload, byte_offset, line, valid, at);
        }
    }

    fn on_wr_cas(&mut self, info: &CasInfo, host_data: &[u8; 64]) -> WrResult {
        let row = match self.bank_table.active_row(info.loc.rank, info.bank_index) {
            Some(row) => row,
            None => {
                self.stats.bank_desyncs += 1;
                info.loc.row
            }
        };
        let mut loc = info.loc;
        loc.row = row;
        let phys = self.mapper.encode(&loc);

        if self.in_config_space(phys) {
            // MMIO writes (registration, recycle, buffer reuse) act on
            // compute-derived state: sync the shard first.
            self.drain_feeds();
            self.handle_mmio_write(info.at, phys, host_data);
            return WrResult::Ignore;
        }

        let page = phys.page();
        // As on the read side, the destination arm re-resolves once after
        // draining pending feeds (which can retire the translation).
        loop {
            match self.xlat.lookup(page) {
                None => return WrResult::Commit(*host_data),
                Some(Mapping::Source {
                    offload,
                    msg_offset,
                }) => {
                    // Compute DMA (§IV-E): a write into a registered source
                    // range feeds the DSA as the device DMAs the data in; the
                    // data also commits to DRAM as a normal write.
                    let line_in_page = ((phys.0 & 0xFFF) / 64) as usize;
                    let byte_offset = msg_offset + line_in_page * 64;
                    let mut feed = None;
                    if let Some(off) = self.offloads.get_mut(&offload) {
                        if off.dma_input && byte_offset < off.msg_len {
                            let line_index = byte_offset / 64;
                            if !off.processed[line_index] {
                                off.processed[line_index] = true;
                                let valid = (off.msg_len - byte_offset).min(64);
                                self.stats.dsa_lines += 1;
                                feed = Some(valid);
                            }
                        }
                    }
                    if let Some(valid) = feed {
                        self.enqueue_feed(offload, byte_offset, *host_data, valid, info.at);
                    }
                    return WrResult::Commit(*host_data);
                }
                Some(Mapping::Dest {
                    offload,
                    msg_offset,
                    scratch_page,
                }) => {
                    if !self.feed_q.is_empty() {
                        self.drain_feeds();
                        continue; // the drain may have retired this entry
                    }
                    let line_in_page = ((phys.0 & 0xFFF) / 64) as usize;
                    return match self.scratchpad.line_state(scratch_page, line_in_page) {
                        LineState::Valid => {
                            // S9: Self-Recycle — substitute the staged result.
                            let (data, freed) =
                                self.scratchpad.recycle(info.at, scratch_page, line_in_page);
                            self.stats.self_recycles += 1;
                            if let Some(t0) =
                                self.produce_time.remove(&(scratch_page, line_in_page))
                            {
                                self.slack.record(info.at.saturating_since(t0));
                            }
                            if freed {
                                // Remove the translation by page, not through
                                // the offload record: pages staged without a
                                // live offload (injected hogs, races with
                                // supersede) must not orphan their entry.
                                self.xlat.remove(page);
                                if let Some(off) = self.offloads.get_mut(&offload) {
                                    let page_index = msg_offset / PAGE;
                                    off.dst_phys[page_index] = None;
                                    off.dst_scratch[page_index] = None;
                                }
                                self.maybe_drop_offload(offload);
                            }
                            WrResult::Commit(data)
                        }
                        LineState::Pending => {
                            // S7: premature writeback — ignore, keep pending.
                            self.stats.ignored_writebacks += 1;
                            WrResult::Ignore
                        }
                        LineState::Done => WrResult::Commit(*host_data),
                    };
                }
            }
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_info(mapper: &AddressMapper, addr: PhysAddr, at: Cycle) -> CasInfo {
        let loc = mapper.decode(addr);
        CasInfo {
            loc,
            phys: addr.cacheline(),
            bank_index: loc.bank_index(mapper.topology()),
            at,
            tag: 0,
        }
    }

    fn prepare(dev: &mut SmartDimmDevice, addr: PhysAddr) -> CasInfo {
        // Open the row at the device's bank table the way the controller
        // would before any CAS.
        let mapper = AddressMapper::new(dev.cfg.topology);
        let info = mk_info(&mapper, addr, Cycle(0));
        dev.on_activate(Cycle(0), info.loc.rank, info.bank_index, info.loc.row);
        info
    }

    #[test]
    fn mmio_status_read() {
        let mut dev = SmartDimmDevice::new(SmartDimmConfig::default());
        let addr = PhysAddr(dev.cfg.config_base.0 + STATUS_OFFSET);
        let info = prepare(&mut dev, addr);
        match dev.on_rd_cas(&info, &[0u8; 64]) {
            RdResult::Data(d) => {
                let status = StatusReg::from_bytes(&d);
                assert_eq!(status.free_pages, 2048);
                assert_eq!(status.pending_pages, 0);
            }
            RdResult::Retry => panic!("status read must not retry"),
        }
    }

    #[test]
    fn mmio_writes_never_reach_dram() {
        let mut dev = SmartDimmDevice::new(SmartDimmConfig::default());
        let addr = PhysAddr(dev.cfg.config_base.0 + CONTEXT_OFFSET);
        let info = prepare(&mut dev, addr);
        let chunk = ContextChunk {
            offload_id: 1,
            payload: OffloadOp::Compress.encode_context(64, b""),
        };
        assert_eq!(dev.on_wr_cas(&info, &chunk.to_bytes()), WrResult::Ignore);
        assert_eq!(dev.stats().mmio_writes, 1);
    }

    #[test]
    fn activate_on_open_bank_counts_desync() {
        // Regression: an activate on an already-open bank (the
        // controller issued an implicit precharge the device never saw)
        // used to overwrite the shadowed row silently. It must bump
        // `bank_desyncs` like the rd-CAS resync path does.
        let mut dev = SmartDimmDevice::new(SmartDimmConfig::default());
        dev.on_activate(Cycle(0), 0, 3, 100);
        assert_eq!(dev.stats().bank_desyncs, 0);
        dev.on_activate(Cycle(1), 0, 3, 200);
        assert_eq!(dev.stats().bank_desyncs, 1);
        // A precharged activate is clean.
        dev.on_precharge(Cycle(2), 0, 3);
        dev.on_activate(Cycle(3), 0, 3, 300);
        assert_eq!(dev.stats().bank_desyncs, 1);
    }

    #[test]
    fn unregistered_pages_pass_through() {
        let mut dev = SmartDimmDevice::new(SmartDimmConfig::default());
        let addr = PhysAddr(0x123000);
        let info = prepare(&mut dev, addr);
        assert_eq!(dev.on_rd_cas(&info, &[9u8; 64]), RdResult::Data([9u8; 64]));
        assert_eq!(
            dev.on_wr_cas(&info, &[7u8; 64]),
            WrResult::Commit([7u8; 64])
        );
    }

    /// Drives a complete single-page TLS offload at the raw CAS level.
    #[test]
    fn end_to_end_tls_offload_at_cas_level() {
        let mut dev = SmartDimmDevice::new(SmartDimmConfig::default());
        let base = dev.cfg.config_base.0;
        let key = [1u8; 16];
        let iv = [2u8; 12];
        let msg: Vec<u8> = (0..4096u32).map(|i| (i * 13) as u8).collect();

        // 1. Context + registration.
        let ctx = ContextChunk {
            offload_id: 5,
            payload: OffloadOp::TlsEncrypt { key, iv }.encode_context(msg.len(), b""),
        };
        let info = prepare(&mut dev, PhysAddr(base + CONTEXT_OFFSET));
        dev.on_wr_cas(&info, &ctx.to_bytes());
        let reg = Registration {
            offload_id: 5,
            src_page_addr: 0x10000,
            dst_page_addr: 0x20000,
            msg_offset: 0,
        };
        let info = prepare(&mut dev, PhysAddr(base + REGISTER_OFFSET));
        dev.on_wr_cas(&info, &reg.to_bytes());
        assert_eq!(dev.free_pages(), 2047);

        // 2. rdCAS every source line (the CompCpy copy loop).
        for line in 0..64usize {
            let addr = PhysAddr(0x10000 + (line as u64) * 64);
            let info = prepare(&mut dev, addr);
            let mut data = [0u8; 64];
            data.copy_from_slice(&msg[line * 64..line * 64 + 64]);
            // Pass-through: the host still sees the plaintext.
            assert_eq!(dev.on_rd_cas(&info, &data), RdResult::Data(data));
        }
        assert_eq!(dev.stats().dsa_lines, 64);
        // Feeds are accepted at CAS time but computed lazily; settle the
        // shard before observing compute-derived state.
        dev.settle();
        assert_eq!(dev.stats().offloads_completed, 1);

        // 3. Writebacks of the destination lines self-recycle.
        let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
        let (want, want_tag) = gcm.seal(&iv, b"", &msg);
        for line in 0..64usize {
            let addr = PhysAddr(0x20000 + (line as u64) * 64);
            let info = prepare(&mut dev, addr);
            let mut plain = [0u8; 64];
            plain.copy_from_slice(&msg[line * 64..line * 64 + 64]);
            match dev.on_wr_cas(&info, &plain) {
                WrResult::Commit(data) => {
                    assert_eq!(&data[..], &want[line * 64..line * 64 + 64], "line {line}");
                }
                WrResult::Ignore => panic!("line {line} should recycle"),
            }
        }
        assert_eq!(dev.stats().self_recycles, 64);
        assert_eq!(dev.free_pages(), 2048, "scratchpad page freed");

        // 4. Result slot carries the tag.
        let info = prepare(&mut dev, PhysAddr(base + RESULT_BASE + 5 * 64));
        match dev.on_rd_cas(&info, &[0u8; 64]) {
            RdResult::Data(d) => {
                let r = ResultSlot::from_bytes(&d);
                assert_eq!(r.status, OffloadStatus::Done);
                assert_eq!(r.tag, want_tag);
                assert_eq!(r.out_len, 4096);
            }
            RdResult::Retry => panic!(),
        }

        // 5. All translation entries cleaned up.
        let info = prepare(&mut dev, PhysAddr(0x10000));
        assert_eq!(dev.on_rd_cas(&info, &[1u8; 64]), RdResult::Data([1u8; 64]));
        assert_eq!(dev.stats().dsa_lines, 64, "no further DSA activity");
    }

    #[test]
    fn premature_writeback_ignored_then_read_retries() {
        // Compression: output pending until the whole page arrives.
        let mut dev = SmartDimmDevice::new(SmartDimmConfig::default());
        let base = dev.cfg.config_base.0;
        let page = ulp_compress::corpus::text(4096, 3);
        let ctx = ContextChunk {
            offload_id: 9,
            payload: OffloadOp::Compress.encode_context(page.len(), b""),
        };
        let info = prepare(&mut dev, PhysAddr(base + CONTEXT_OFFSET));
        dev.on_wr_cas(&info, &ctx.to_bytes());
        let reg = Registration {
            offload_id: 9,
            src_page_addr: 0x30000,
            dst_page_addr: 0x40000,
            msg_offset: 0,
        };
        let info = prepare(&mut dev, PhysAddr(base + REGISTER_OFFSET));
        dev.on_wr_cas(&info, &reg.to_bytes());

        // Feed half the source page.
        for line in 0..32usize {
            let addr = PhysAddr(0x30000 + (line as u64) * 64);
            let info = prepare(&mut dev, addr);
            let mut data = [0u8; 64];
            data.copy_from_slice(&page[line * 64..line * 64 + 64]);
            dev.on_rd_cas(&info, &data);
        }
        // A writeback of dst line 0 now is premature: S7 ignores it.
        let info = prepare(&mut dev, PhysAddr(0x40000));
        assert_eq!(dev.on_wr_cas(&info, &[0xAA; 64]), WrResult::Ignore);
        assert_eq!(dev.stats().ignored_writebacks, 1);
        // A read of dst line 0 must retry (S13).
        assert_eq!(dev.on_rd_cas(&info, &[0u8; 64]), RdResult::Retry);
        assert_eq!(dev.stats().alert_retries, 1);

        // Feed the rest; compression completes.
        for line in 32..64usize {
            let addr = PhysAddr(0x30000 + (line as u64) * 64);
            let info = prepare(&mut dev, addr);
            let mut data = [0u8; 64];
            data.copy_from_slice(&page[line * 64..line * 64 + 64]);
            dev.on_rd_cas(&info, &data);
        }
        dev.settle(); // lazy feeds: sync before observing completion
        assert_eq!(dev.stats().offloads_completed, 1);
        // Now dst line 0 reads from the scratchpad (S10). The row must be
        // re-activated: the source-page accesses above reused the bank.
        let info = prepare(&mut dev, PhysAddr(0x40000));
        match dev.on_rd_cas(&info, &[0u8; 64]) {
            RdResult::Data(_) => {}
            RdResult::Retry => panic!("computation finished"),
        }
        assert!(dev.stats().scratch_reads >= 1);
    }

    #[test]
    fn alloc_failure_counted_when_scratchpad_full() {
        let cfg = SmartDimmConfig {
            scratchpad_pages: 1,
            ..Default::default()
        };
        let mut dev = SmartDimmDevice::new(cfg);
        let base = dev.cfg.config_base.0;
        for id in 0..2u64 {
            let ctx = ContextChunk {
                offload_id: id,
                payload: OffloadOp::TlsEncrypt {
                    key: [0; 16],
                    iv: [0; 12],
                }
                .encode_context(4096, b""),
            };
            let info = prepare(&mut dev, PhysAddr(base + CONTEXT_OFFSET));
            dev.on_wr_cas(&info, &ctx.to_bytes());
            let reg = Registration {
                offload_id: id,
                src_page_addr: 0x50000 + id * 0x2000,
                dst_page_addr: 0x60000 + id * 0x2000,
                msg_offset: 0,
            };
            let info = prepare(&mut dev, PhysAddr(base + REGISTER_OFFSET));
            dev.on_wr_cas(&info, &reg.to_bytes());
        }
        assert_eq!(dev.stats().alloc_failures, 1);
    }
}
