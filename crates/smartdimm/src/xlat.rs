//! The Translation Table (§IV-C): physical page number → offload state.
//!
//! A CAM would match page numbers in one cycle but is too power-hungry
//! for a DIMM buffer device, so the paper uses a **3-ary cuckoo hash
//! table** sized 3× the required entries (12 K for 2 × 2048 pages),
//! keeping occupancy below 33 % where insertions almost never displace
//! and effectively never fail. An **8-entry CAM stash** absorbs
//! insertions immediately so cuckoo displacement chains run off the
//! critical path.
//!
//! This module reproduces those structures and exposes displacement /
//! failure statistics for the §IV-C ablation.

/// What a translated page maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// A registered source page: data read from it feeds the DSA of
    /// `offload`, covering message bytes starting at `msg_offset`.
    Source {
        /// Offload this page belongs to.
        offload: u64,
        /// Byte offset of this page within the offload's message.
        msg_offset: usize,
    },
    /// A registered destination page: DSA results for it are staged in
    /// Scratchpad page `scratch_page`.
    Dest {
        /// Offload this page belongs to.
        offload: u64,
        /// Byte offset of this page within the offload's output.
        msg_offset: usize,
        /// Scratchpad page index staging the results.
        scratch_page: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    page: u64,
    mapping: Mapping,
}

/// Insertion/lookup statistics for the ablation study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XlatStats {
    /// Successful insertions.
    pub inserts: u64,
    /// Insertions that landed in an empty slot on the first try.
    pub first_try: u64,
    /// Total cuckoo displacements performed.
    pub displacements: u64,
    /// Insertions that had to sit in the CAM stash.
    pub stash_spills: u64,
    /// Insertions that failed outright (table and stash full).
    pub failures: u64,
    /// Lookups served.
    pub lookups: u64,
}

/// The 3-ary cuckoo translation table with CAM stash.
///
/// # Example
///
/// ```
/// use smartdimm::xlat::{Mapping, TranslationTable};
/// let mut t = TranslationTable::new(12288, 8);
/// t.insert(42, Mapping::Source { offload: 1, msg_offset: 0 }).unwrap();
/// assert!(matches!(t.lookup(42), Some(Mapping::Source { offload: 1, .. })));
/// assert_eq!(t.lookup(43), None);
/// ```
#[derive(Debug, Clone)]
pub struct TranslationTable {
    slots: Vec<Option<Entry>>,
    stash: Vec<Entry>,
    stash_capacity: usize,
    stats: XlatStats,
    max_kicks: usize,
}

/// Error returned when an insertion cannot be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "translation table and CAM stash are full")
    }
}

impl std::error::Error for TableFull {}

impl TranslationTable {
    /// Creates a table with `capacity` cuckoo slots (paper: 12288) and a
    /// CAM stash of `stash_capacity` entries (paper: 8).
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 3` (three hash ways need three slots).
    pub fn new(capacity: usize, stash_capacity: usize) -> TranslationTable {
        assert!(capacity >= 3, "cuckoo table needs at least 3 slots");
        TranslationTable {
            slots: vec![None; capacity],
            stash: Vec::with_capacity(stash_capacity),
            stash_capacity,
            stats: XlatStats::default(),
            max_kicks: 32,
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> XlatStats {
        self.stats
    }

    /// Number of live entries (cuckoo + stash).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count() + self.stash.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy fraction of the cuckoo array.
    pub fn occupancy(&self) -> f64 {
        self.slots.iter().filter(|s| s.is_some()).count() as f64 / self.slots.len() as f64
    }

    /// Every mapped page number (cuckoo + stash), in unspecified order.
    /// Used by the differential oracle to diagnose leaked entries.
    pub fn pages(&self) -> Vec<u64> {
        self.slots
            .iter()
            .flatten()
            .map(|e| e.page)
            .chain(self.stash.iter().map(|e| e.page))
            .collect()
    }

    fn hash(&self, page: u64, way: usize) -> usize {
        // Three independent mix functions (SplitMix-style finalizers with
        // different constants), reduced onto the slot array.
        const C: [(u64, u64); 3] = [
            (0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB),
            (0xFF51_AFD7_ED55_8CCD, 0xC4CE_B9FE_1A85_EC53),
            (0x9E37_79B9_7F4A_7C15, 0xD6E8_FEB8_6659_FD93),
        ];
        let (c1, c2) = C[way];
        let mut z = page.wrapping_add(c2.rotate_left(way as u32));
        z = (z ^ (z >> 30)).wrapping_mul(c1);
        z = (z ^ (z >> 27)).wrapping_mul(c2);
        z ^= z >> 31;
        (z % self.slots.len() as u64) as usize
    }

    /// Looks up a page (checks the CAM stash first, as hardware would in
    /// parallel).
    pub fn lookup(&mut self, page: u64) -> Option<Mapping> {
        self.stats.lookups += 1;
        if let Some(e) = self.stash.iter().find(|e| e.page == page) {
            return Some(e.mapping);
        }
        for way in 0..3 {
            let idx = self.hash(page, way);
            if let Some(e) = &self.slots[idx] {
                if e.page == page {
                    return Some(e.mapping);
                }
            }
        }
        None
    }

    /// Read-only lookup (no stats side effects) for assertions/tests.
    pub fn peek(&self, page: u64) -> Option<Mapping> {
        if let Some(e) = self.stash.iter().find(|e| e.page == page) {
            return Some(e.mapping);
        }
        for way in 0..3 {
            let idx = self.hash(page, way);
            if let Some(e) = &self.slots[idx] {
                if e.page == page {
                    return Some(e.mapping);
                }
            }
        }
        None
    }

    /// Inserts or replaces the mapping for `page`.
    ///
    /// # Errors
    ///
    /// Returns [`TableFull`] if the displacement budget is exhausted and
    /// the CAM stash is full — effectively impossible below 33 %
    /// occupancy, which the §IV-C ablation demonstrates.
    pub fn insert(&mut self, page: u64, mapping: Mapping) -> Result<(), TableFull> {
        // Replace an existing entry in place.
        if let Some(e) = self.stash.iter_mut().find(|e| e.page == page) {
            e.mapping = mapping;
            self.stats.inserts += 1;
            self.stats.first_try += 1;
            return Ok(());
        }
        for way in 0..3 {
            let idx = self.hash(page, way);
            if let Some(e) = &mut self.slots[idx] {
                if e.page == page {
                    e.mapping = mapping;
                    self.stats.inserts += 1;
                    self.stats.first_try += 1;
                    return Ok(());
                }
            }
        }
        // Try an empty way.
        for way in 0..3 {
            let idx = self.hash(page, way);
            if self.slots[idx].is_none() {
                self.slots[idx] = Some(Entry { page, mapping });
                self.stats.inserts += 1;
                if way == 0 {
                    self.stats.first_try += 1;
                }
                return Ok(());
            }
        }
        // Cuckoo displacement chain. Each step is recorded so a failed
        // insertion can unwind: without the unwind, failure would leave
        // the new entry resident and silently drop the final evicted
        // victim — corrupting the table exactly when it is under the most
        // pressure.
        let mut chain: Vec<(usize, Entry)> = Vec::new();
        let mut cur = Entry { page, mapping };
        let mut way = 0usize;
        for kick in 0..self.max_kicks {
            let idx = self.hash(cur.page, way);
            let Some(evicted) = self.slots[idx].replace(cur) else {
                // The slot was free after all (cannot happen after the
                // empty-way scan above, but an empty slot just absorbed
                // the entry either way): the insert is complete.
                self.stats.inserts += 1;
                return Ok(());
            };
            self.stats.displacements += 1;
            chain.push((idx, evicted));
            cur = evicted;
            // Find an empty way for the evicted entry.
            let mut placed = false;
            for w in 0..3 {
                let i = self.hash(cur.page, w);
                if self.slots[i].is_none() {
                    self.slots[i] = Some(cur);
                    placed = true;
                    break;
                }
            }
            if placed {
                self.stats.inserts += 1;
                return Ok(());
            }
            way = (way + 1 + kick) % 3;
        }
        // Displacement budget exhausted: stash in the CAM.
        if self.stash.len() < self.stash_capacity {
            self.stash.push(cur);
            self.stats.inserts += 1;
            self.stats.stash_spills += 1;
            Ok(())
        } else {
            // Unwind the displacement chain so failure is atomic: every
            // pre-existing entry returns to its slot and the would-be new
            // entry is the only one left out.
            for (idx, evicted) in chain.into_iter().rev() {
                self.slots[idx] = Some(evicted);
            }
            self.stats.failures += 1;
            Err(TableFull)
        }
    }

    /// Removes the mapping for `page`, returning it if present.
    pub fn remove(&mut self, page: u64) -> Option<Mapping> {
        if let Some(pos) = self.stash.iter().position(|e| e.page == page) {
            return Some(self.stash.swap_remove(pos).mapping);
        }
        for way in 0..3 {
            let idx = self.hash(page, way);
            if self.slots[idx].map(|e| e.page) == Some(page) {
                return self.slots[idx].take().map(|e| e.mapping);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn src(o: u64) -> Mapping {
        Mapping::Source {
            offload: o,
            msg_offset: 0,
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t = TranslationTable::new(64, 8);
        t.insert(100, src(1)).unwrap();
        assert_eq!(t.lookup(100), Some(src(1)));
        assert_eq!(t.remove(100), Some(src(1)));
        assert_eq!(t.lookup(100), None);
        assert!(t.is_empty());
    }

    #[test]
    fn replace_in_place() {
        let mut t = TranslationTable::new(64, 8);
        t.insert(7, src(1)).unwrap();
        t.insert(7, src(2)).unwrap();
        assert_eq!(t.lookup(7), Some(src(2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn low_occupancy_insertions_rarely_displace() {
        // Paper's configuration: 12288 slots, fill to 33% (4096 entries).
        let mut t = TranslationTable::new(12288, 8);
        for page in 0..4096u64 {
            t.insert(page, src(page)).unwrap();
        }
        let s = t.stats();
        assert_eq!(s.failures, 0);
        // Below 33% occupancy, the displacement rate is tiny.
        let disp_rate = s.displacements as f64 / s.inserts as f64;
        assert!(disp_rate < 0.05, "displacement rate {disp_rate}");
        assert!(t.occupancy() <= 0.34);
        // Everything is still findable.
        for page in 0..4096u64 {
            assert_eq!(t.peek(page), Some(src(page)), "page {page}");
        }
    }

    #[test]
    fn high_occupancy_eventually_fails() {
        let mut t = TranslationTable::new(12, 2);
        let mut failed = false;
        for page in 0..20u64 {
            if t.insert(page, src(page)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(
            failed,
            "a 12-slot table + 2-entry stash cannot hold 20 entries"
        );
        assert!(t.stats().failures > 0);
    }

    #[test]
    fn stash_absorbs_collisions() {
        let mut t = TranslationTable::new(3, 8);
        // Only 3 slots: the 4th..11th insertions must use the stash.
        for page in 0..10u64 {
            t.insert(page, src(page)).unwrap();
        }
        assert!(t.stats().stash_spills > 0);
        for page in 0..10u64 {
            assert_eq!(t.peek(page), Some(src(page)));
        }
    }

    #[test]
    fn dest_mapping_round_trips() {
        let mut t = TranslationTable::new(64, 8);
        let m = Mapping::Dest {
            offload: 9,
            msg_offset: 4096,
            scratch_page: 17,
        };
        t.insert(55, m).unwrap();
        assert_eq!(t.lookup(55), Some(m));
    }

    proptest! {
        #[test]
        fn prop_model_equivalence(
            ops in proptest::collection::vec((0u64..128, 0u64..3), 1..400),
        ) {
            // Against a HashMap oracle: insert (op 0), remove (op 1),
            // lookup (op 2).
            use std::collections::HashMap;
            let mut t = TranslationTable::new(1024, 8);
            let mut oracle: HashMap<u64, Mapping> = HashMap::new();
            for (page, op) in ops {
                match op {
                    0 => {
                        let m = src(page * 3);
                        if t.insert(page, m).is_ok() {
                            oracle.insert(page, m);
                        }
                    }
                    1 => {
                        prop_assert_eq!(t.remove(page), oracle.remove(&page));
                    }
                    _ => {
                        prop_assert_eq!(t.lookup(page), oracle.get(&page).copied());
                    }
                }
            }
        }
    }
}
