//! The CompCpy API (Algorithm 2) and its host-side runtime.
//!
//! [`CompCpyHost`] owns the simulated memory system with a SmartDIMM
//! installed on channel 0, a page allocator standing in for the kernel
//! driver (§V-C), and the software state of Algorithm 2: the lock-guarded
//! `freePages` counter with lazy MMIO refresh, Force-Recycle
//! (Algorithm 1), source flush, page registration and the copy loop.

use dram::{AddressMapper, Dimm, PhysAddr};
use memsys::{MemConfig, MemSystem};
use simkit::par::DetMutex;
use std::collections::BTreeMap;

use crate::configmem::{
    unpack_pending, ContextChunk, OffloadStatus, Registration, ResultSlot, StatusReg,
    CONTEXT_OFFSET, PENDING_BASE, REGISTER_OFFSET, RESULT_BASE, STATUS_OFFSET,
};
use crate::device::{SmartDimmConfig, SmartDimmDevice};
use crate::dsa::OffloadOp;
use crate::sched::{self, PlacementPolicy, SchedStats};
use crate::{LINES_PER_PAGE, PAGE};

/// Errors surfaced by the CompCpy API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompCpyError {
    /// `sbuf` or `dbuf` is not 4 KB page aligned (Algorithm 2 line 4).
    NotAligned,
    /// The requested size is zero or exceeds the registered capability.
    BadSize,
    /// Scratchpad space could not be reclaimed even by Force-Recycle.
    OutOfScratchpad,
    /// The offload finished with a device-side error status.
    DeviceError,
    /// Non-size-preserving ULPs need their buffers mapped to a single
    /// channel (§V-D); this system interleaves across channels.
    SingleChannelOnly,
    /// A thread holding the driver's scratchpad-space lock panicked,
    /// poisoning the software-side free-page tracker. Retained for API
    /// compatibility: since the `simkit::par` doorway migration the
    /// tracker recovers from poison, so this is no longer constructed.
    HostStatePoisoned,
}

impl std::fmt::Display for CompCpyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompCpyError::NotAligned => write!(f, "buffers must be 4KB page aligned"),
            CompCpyError::BadSize => write!(f, "invalid offload size"),
            CompCpyError::OutOfScratchpad => write!(f, "scratchpad exhausted"),
            CompCpyError::DeviceError => write!(f, "device reported an offload error"),
            CompCpyError::SingleChannelOnly => {
                write!(
                    f,
                    "non-size-preserving offloads require single-channel mapping"
                )
            }
            CompCpyError::HostStatePoisoned => {
                write!(f, "driver scratchpad-space lock poisoned")
            }
        }
    }
}

impl std::error::Error for CompCpyError {}

/// Host configuration.
#[derive(Debug, Clone, Default)]
pub struct HostConfig {
    /// Memory-system configuration (LLC geometry, DRAM topology, costs).
    pub mem: MemConfig,
    /// SmartDIMM hardware configuration.
    pub dimm: SmartDimmConfig,
    /// Worker threads for parallel channel-shard settling. `0` (the
    /// default) defers to the `SMARTDIMM_THREADS` environment variable,
    /// falling back to fully sequential execution. Any value produces
    /// byte-identical simulated state — the count only changes
    /// wall-clock time (see [`simkit::par`]).
    pub threads: usize,
    /// Offload placement scheduling: policy plus tuning knobs (see
    /// [`crate::sched`]). The default keeps the static per-line decode.
    pub sched: sched::SchedConfig,
}

/// Device-side queueing pressure, sampled at a settle point
/// ([`CompCpyHost::queue_pressure`]). All fields report the *worst*
/// shard, so a single-channel admission decision stays conservative
/// under interleaving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuePressure {
    /// Fraction of scratchpad pages free on the scarcest channel
    /// (`1.0` = empty scratchpad, `0.0` = exhausted).
    pub scratch_free_fraction: f64,
    /// Translation-table occupancy on the fullest channel (`0.0`–`1.0`;
    /// cuckoo displacement cost rises sharply past ~0.33, §IV-C).
    pub xlat_occupancy: f64,
    /// DSA feeds accepted but not yet settled, summed over all shards.
    pub pending_feeds: usize,
}

impl QueuePressure {
    /// Collapses the snapshot into one scalar in `[0, 1]`: the worst of
    /// scratchpad usage and translation-table occupancy. Admission
    /// controllers compare this against a watermark.
    pub fn scalar(&self) -> f64 {
        (1.0 - self.scratch_free_fraction).max(self.xlat_occupancy)
    }
}

/// A live offload returned by [`CompCpyHost::comp_cpy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadHandle {
    /// The software-assigned offload id.
    pub id: u64,
    /// Destination buffer base.
    pub dbuf: PhysAddr,
    /// Source buffer base.
    pub sbuf: PhysAddr,
    /// Input size in bytes.
    pub size: usize,
    /// The requested operation (needed to combine per-channel partial
    /// tags host-side under interleaving, §V-D).
    pub op: OffloadOp,
    /// AEAD additional data (TLS record header; at most 7 bytes).
    pub aad: [u8; 7],
    /// Valid bytes of `aad`.
    pub aad_len: u8,
    /// The shard that saw every *effective* source line, when one did
    /// (`None` for an interleaved placement). Recorded at issue time:
    /// the scheduler may have staged the source away from `sbuf`, so
    /// the owning channel can no longer be derived from the caller's
    /// addresses alone.
    pub home: Option<u16>,
}

impl OffloadHandle {
    /// The AAD bytes supplied at offload time.
    pub fn aad_bytes(&self) -> &[u8] {
        &self.aad[..self.aad_len as usize]
    }
}

/// The CompCpy host runtime.
pub struct CompCpyHost {
    mem: MemSystem,
    config_base: PhysAddr,
    result_slots: usize,
    channels: usize,
    interleave_lines: usize,
    /// Algorithm 2's lock-protected lazy scratchpad-space tracker.
    free_pages: DetMutex<i64>,
    next_id: u64,
    alloc_next: u64,
    /// Phase-matched bounce regions for cross-channel offloads, pooled
    /// for reuse keyed by `(phase within the interleave period, pages)`.
    bounce_pool: BTreeMap<(u64, u64), Vec<PhysAddr>>,
    /// Offloads routed through a bounce buffer because the caller's
    /// sbuf/dbuf pair interleaved across different channels (§V-D).
    bounced_offloads: u64,
    /// Device-visible staging ("home") regions for offloads whose
    /// source touched a DSA-less DIMM slot or that the scheduler
    /// migrated, pooled by `(target channel or `usize::MAX`, pages)`.
    home_pool: BTreeMap<(usize, u64), Vec<PhysAddr>>,
    /// Placement-decision counters (see [`crate::sched::SchedStats`]).
    sched_stats: SchedStats,
    /// Scheduler policy and tuning.
    sched: sched::SchedConfig,
    /// Address mapper mirroring the memory system's topology, for
    /// host-side residency checks.
    mapper: AddressMapper,
    /// The socket the issuing host lives on; shards on other sockets
    /// are remote to the scheduler.
    home_socket: usize,
    /// Software-side counters.
    force_recycles: u64,
    /// Preparation faults (xlat pressure, scratch hogs) armed and applied.
    injected_faults: u64,
    /// Fault injector (tests only); shared with the devices, the memory
    /// system and — if the caller threads it through — the TCP model.
    fault: Option<simkit::FaultHandle>,
    /// Resolved worker count for [`CompCpyHost::sync_shards`].
    threads: usize,
    /// Channel-sync points reached (deterministic: call sites are fixed
    /// by the command stream, never by the scheduler).
    sync_points: u64,
    /// Deferred DSA feeds retired across all shards at sync points.
    settled_lines: u64,
    /// Events that passed through the deterministic `(cycle, channel,
    /// seq)` merge. Conservation: equals `settled_lines` — the merge
    /// must lose nothing.
    merged_events: u64,
    /// Scheduler-dependent stats (workers/steals); quarantined from
    /// telemetry snapshots, surfaced only via [`CompCpyHost::par_stats`].
    par_stats: simkit::par::ParStats,
}

impl std::fmt::Debug for CompCpyHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompCpyHost")
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl CompCpyHost {
    /// Builds the host: memory system + one SmartDIMM per channel +
    /// driver state.
    pub fn new(config: HostConfig) -> CompCpyHost {
        let topo = config.mem.dram.topology;
        let home_socket = config.mem.dram.home_socket;
        let mut mem = MemSystem::new(config.mem);
        for channel in 0..topo.channels {
            let mut dimm_cfg = config.dimm;
            dimm_cfg.topology = topo;
            dimm_cfg.channel = channel;
            // `install_dimm` places the buffer device in slot 0 of the
            // channel; the shard must filter registrations to match.
            dimm_cfg.dimm_slot = 0;
            let device = SmartDimmDevice::new(dimm_cfg);
            mem.dram_mut()
                .install_dimm(channel, Dimm::new(Box::new(device)));
        }
        CompCpyHost {
            mem,
            config_base: config.dimm.config_base,
            result_slots: config.dimm.result_slots,
            channels: topo.channels,
            interleave_lines: topo.channel_interleave_lines,
            free_pages: DetMutex::new(-1), // Algorithm 2 line 1
            next_id: 1,
            alloc_next: 0x0010_0000, // driver pool starts at 1 MB
            bounce_pool: BTreeMap::new(),
            bounced_offloads: 0,
            home_pool: BTreeMap::new(),
            sched_stats: SchedStats::default(),
            sched: config.sched,
            mapper: AddressMapper::new(topo),
            home_socket,
            force_recycles: 0,
            injected_faults: 0,
            fault: None,
            threads: simkit::par::configured_threads(config.threads),
            sync_points: 0,
            settled_lines: 0,
            merged_events: 0,
            par_stats: simkit::par::ParStats::default(),
        }
    }

    /// Installs a deterministic fault injector on the host, every channel
    /// device and the memory system. Armed events fire as offloads are
    /// issued; see [`simkit::FaultPlan`].
    pub fn set_fault_handle(&mut self, fault: simkit::FaultHandle) {
        self.mem.set_fault_handle(fault.clone());
        for channel in 0..self.channels {
            self.device_on(channel).set_fault_handle(fault.clone());
        }
        self.fault = Some(fault);
    }

    /// The installed fault injector, if any.
    pub fn fault_handle(&self) -> Option<&simkit::FaultHandle> {
        self.fault.as_ref()
    }

    /// Advances the fault plan by one offload and applies whatever
    /// preparation faults (translation-table pressure, scratchpad hogs)
    /// arm at this index. Called at the top of every offload issue.
    fn apply_armed_faults(&mut self) {
        let Some(fault) = self.fault.clone() else {
            return;
        };
        let preps = fault.begin_offload();
        self.injected_faults += preps.len() as u64;
        for kind in preps {
            match kind {
                simkit::FaultKind::XlatPressure { entries } => {
                    for channel in 0..self.channels {
                        self.device_on(channel).inject_xlat_pressure(entries);
                    }
                }
                simkit::FaultKind::ScratchHog { pages } => {
                    let at = self.mem.now();
                    for channel in 0..self.channels {
                        self.device_on(channel).inject_scratch_hog(at, pages);
                    }
                }
                _ => {}
            }
        }
    }

    /// Removes every injected translation-table entry and scratchpad hog
    /// from all channel devices (fault-recovery path).
    pub fn clear_injected_faults(&mut self) {
        let at = self.mem.now();
        for channel in 0..self.channels {
            self.device_on(channel).clear_injected(at);
        }
    }

    /// Number of memory channels (= SmartDIMMs installed).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The memory system (CAT configuration, statistics, time).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Mutable memory-system access.
    pub fn mem_mut(&mut self) -> &mut MemSystem {
        &mut self.mem
    }

    /// Times Force-Recycle was invoked (§VII-A expects ~zero).
    pub fn force_recycle_count(&self) -> u64 {
        self.force_recycles
    }

    /// Offloads routed through a phase-matched bounce buffer because the
    /// caller's sbuf/dbuf pair interleaved across different channels.
    pub fn bounced_offload_count(&self) -> u64 {
        self.bounced_offloads
    }

    /// Preparation faults the installed injector armed and this host
    /// applied (zero unless a [`simkit::FaultPlan`] is installed).
    pub fn injected_fault_count(&self) -> u64 {
        self.injected_faults
    }

    /// Scheduler-dependent parallel-runtime stats accumulated over every
    /// [`CompCpyHost::sync_shards`] call: worker count, tasks, steals.
    /// These vary with thread count and OS scheduling — report them in
    /// wall-clock wrappers (`run_report/v1`), never in a deterministic
    /// telemetry snapshot.
    pub fn par_stats(&self) -> simkit::par::ParStats {
        self.par_stats
    }

    /// Placement-decision counters accumulated so far (see
    /// [`crate::sched::SchedStats`]). Deterministic: decisions depend
    /// only on simulated state.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched_stats
    }

    /// A deterministic snapshot of device-side queueing pressure — the
    /// inputs an admission controller needs to decide whether the next
    /// offload should be accepted, shed, or run on the CPU instead.
    ///
    /// Settles every shard first (pressure fields are compute-derived),
    /// then reports the *scarcest* shard: minimum scratchpad-free
    /// fraction and maximum translation-table occupancy across channels,
    /// plus the total number of DSA feeds still pending settle. The
    /// paper's Fig. 10 story (scratchpad occupancy under load) and the
    /// §IV-C xlat-occupancy bound are exactly the two resources that
    /// degrade first when offloads queue faster than they are used.
    pub fn queue_pressure(&mut self) -> QueuePressure {
        self.sync_shards();
        let mut scratch_free_fraction = 1.0f64;
        let mut xlat_occupancy = 0.0f64;
        let mut pending_feeds = 0usize;
        for ch in 0..self.channels {
            let dev = self.device_on(ch);
            let cap = dev.config().scratchpad_pages.max(1);
            let free = dev.free_pages() as f64 / cap as f64;
            let occ = dev.xlat().occupancy();
            scratch_free_fraction = scratch_free_fraction.min(free);
            xlat_occupancy = xlat_occupancy.max(occ);
            pending_feeds += dev.pending_feeds();
        }
        QueuePressure {
            scratch_free_fraction,
            xlat_occupancy,
            pending_feeds,
        }
    }

    /// Resolved worker count used for shard settling.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Channel-sync point: settles every shard's deferred DSA feeds —
    /// in parallel on the configured worker pool — and merges the
    /// retired events into one stream ordered by `(cycle, channel,
    /// seq)` (see [`simkit::par::merge_ordered`]).
    ///
    /// Between sync points shards advance independently: CAS-level
    /// feeds enqueue per shard and each shard drains its own queue with
    /// no cross-shard interaction, so the workers never contend on
    /// simulated state. The settle schedule is fixed by the host's
    /// command stream, never by the scheduler, which is why `threads=1`
    /// and `threads=N` produce byte-identical snapshots.
    pub fn sync_shards(&mut self) {
        self.sync_points += 1;
        // Cheap sequential peek first: spawning workers for empty
        // queues would cost wall-clock without settling anything.
        let mut idle = true;
        for ch in 0..self.channels {
            if self.device_on(ch).pending_feeds() > 0 {
                idle = false;
                break;
            }
        }
        if idle {
            return;
        }
        let threads = self.threads;
        let dimms = self.mem.dram_mut().dimms_mut();
        let (per_channel, stats) = simkit::par::run_indexed(threads, dimms, |_, dimm| {
            match dimm
                .buffer_mut()
                .as_any_mut()
                .downcast_mut::<SmartDimmDevice>()
            {
                Some(dev) => dev.settle(),
                None => Vec::new(),
            }
        });
        self.par_stats.absorb(stats);
        let settled: u64 = per_channel.iter().map(|v| v.len() as u64).sum();
        let streams: Vec<Vec<(u64, u64, ())>> = per_channel
            .into_iter()
            .map(|keys| keys.into_iter().map(|(cy, seq)| (cy, seq, ())).collect())
            .collect();
        let merged = simkit::par::merge_ordered(streams);
        debug_assert_eq!(settled, merged.len() as u64, "merge conserves events");
        self.settled_lines += settled;
        self.merged_events += merged.len() as u64;
    }

    /// Device statistics, read through the buffer-device downcast.
    /// Syncs the shards first: statistics include compute-derived
    /// counters and `stats()` takes `&self` on the device, so pending
    /// feeds must settle before the read.
    pub fn device_stats(&mut self) -> crate::device::DeviceStats {
        self.sync_shards();
        self.device().stats()
    }

    /// Registers host-level counters, the memory hierarchy (under `mem`)
    /// and every channel's shard (under `channelN`, each holding
    /// `device`/`scratchpad`/`xlat` sub-scopes) for a `telemetry/v1`
    /// snapshot. Takes `&mut self` because device access goes through the
    /// buffer-device downcast.
    pub fn export_telemetry(&mut self, scope: &mut simkit::telemetry::Scope) {
        // Settle every shard first: the per-channel scopes expose
        // compute-derived state through `&self` accessors.
        self.sync_shards();
        scope.set_counter("force_recycles", self.force_recycles);
        scope.set_counter("injected_faults", self.injected_faults);
        scope.set_counter("bounced_offloads", self.bounced_offloads);
        {
            // Placement-decision counters (see [`crate::sched`]).
            // Decisions depend only on simulated state, so these are
            // snapshot-safe at any thread count.
            let sch = scope.scope("sched");
            sch.set_counter("static_placements", self.sched_stats.static_placements);
            sch.set_counter("rehomed_offloads", self.sched_stats.rehomed_offloads);
            sch.set_counter("migrated_offloads", self.sched_stats.migrated_offloads);
            sch.set_counter("remote_placements", self.sched_stats.remote_placements);
            sch.set_counter("local_placements", self.sched_stats.local_placements);
        }
        {
            // Deterministic parallel-runtime counters only. Worker and
            // steal counts are scheduler artifacts and live in the
            // `run_report/v1` wrapper instead (see DESIGN.md §11).
            let par = scope.scope("par");
            par.set_counter("sync_points", self.sync_points);
            par.set_counter("settled_lines", self.settled_lines);
            par.set_counter("merged_events", self.merged_events);
        }
        for ch in 0..self.channels {
            let mut dev_scope = simkit::telemetry::Scope::default();
            self.device_on(ch).export_telemetry(&mut dev_scope);
            *scope.scope(&format!("channel{ch}")) = dev_scope;
        }
        self.mem.export_telemetry(scope.scope("mem"));
    }

    /// Direct access to the channel-0 device model (inspection only — all
    /// data-path interaction goes through memory commands).
    pub fn device(&mut self) -> &mut SmartDimmDevice {
        self.device_on(0)
    }

    /// Direct access to the device on `channel`.
    pub fn device_on(&mut self, channel: usize) -> &mut SmartDimmDevice {
        self.mem
            .dram_mut()
            .dimm_mut(channel)
            .buffer_mut()
            .as_any_mut()
            .downcast_mut::<SmartDimmDevice>()
            .expect("SmartDIMM installed on this channel")
    }

    /// Allocates `pages` contiguous 4 KB pages from the driver pool.
    pub fn alloc_pages(&mut self, pages: usize) -> PhysAddr {
        assert!(pages > 0);
        let addr = PhysAddr(self.alloc_next);
        self.alloc_next += (pages * PAGE) as u64;
        assert!(
            self.alloc_next <= self.config_base.0,
            "driver pool ran into the MMIO window"
        );
        addr
    }

    /// The physical alias of logical register offset `logical` on
    /// `channel`: inverts the device's de-interleave so each DIMM sees a
    /// private register window despite fine-grain interleaving (§V-D).
    fn mmio_alias(&self, logical: u64, channel: usize) -> PhysAddr {
        let ch = self.channels as u64;
        let g = self.interleave_lines as u64;
        let li = logical / 64;
        let phys_line = (li / g) * ch * g + (channel as u64) * g + li % g;
        PhysAddr(self.config_base.0 + phys_line * 64 + logical % 64)
    }

    fn mmio(&self, offset: u64) -> PhysAddr {
        self.mmio_alias(offset, 0)
    }

    /// Writes a 64-byte register on every channel's SmartDIMM — how the
    /// registration step replicates configuration data per DIMM (§V-D).
    fn mmio_broadcast(&mut self, logical: u64, data: &[u8; 64]) {
        for c in 0..self.channels {
            let addr = self.mmio_alias(logical, c);
            self.mem.mmio_write64(addr, data);
        }
    }

    /// Reads the SmartDIMM status register. With multiple channels, the
    /// scratchpad-space fields report the *scarcest* DIMM.
    pub fn read_status(&mut self) -> StatusReg {
        self.sync_shards(); // status fields are compute-derived
        let mut agg: Option<StatusReg> = None;
        for c in 0..self.channels {
            let addr = self.mmio_alias(STATUS_OFFSET, c);
            let data = self.mem.mmio_read64(addr);
            let s = StatusReg::from_bytes(&data);
            agg = Some(match agg {
                None => s,
                Some(a) => StatusReg {
                    free_pages: a.free_pages.min(s.free_pages),
                    pending_pages: a.pending_pages.max(s.pending_pages),
                    self_recycled: a.self_recycled + s.self_recycled,
                    ignored_writebacks: a.ignored_writebacks + s.ignored_writebacks,
                },
            });
        }
        agg.expect("at least one channel")
    }

    /// The channel the cacheline containing `addr` decodes to (the
    /// `dram::addr` channel-bit extraction, kept in sync with
    /// [`dram::AddressMapper::decode`]).
    fn line_channel(&self, addr: u64) -> usize {
        (((addr >> 6) / self.interleave_lines as u64) % self.channels as u64) as usize
    }

    /// `Some(channel)` when every covered cacheline of `[base,
    /// base+size)` decodes to a single channel — a "flex mode" placement
    /// (§V-D) that lets one shard run a full (metadata-absorbing) engine.
    fn sole_channel(&self, base: PhysAddr, size: usize) -> Option<usize> {
        if self.channels == 1 {
            return Some(0);
        }
        let first = self.line_channel(base.0);
        for l in 1..size.div_ceil(64) as u64 {
            if self.line_channel(base.0 + l * 64) != first {
                return None;
            }
        }
        Some(first)
    }

    /// Whether source line *i* and destination line *i* decode to the
    /// same channel for every covered line — the condition for a shard to
    /// see both sides of every page pair it registers. Always true under
    /// fine interleave (the per-line channel pattern repeats within a
    /// page); can fail under coarse interleave when sbuf and dbuf sit at
    /// different phases of the interleave period.
    fn channel_maps_match(&self, sbuf: PhysAddr, dbuf: PhysAddr, size: usize) -> bool {
        if self.channels == 1 {
            return true;
        }
        (0..size.div_ceil(64) as u64)
            .all(|l| self.line_channel(sbuf.0 + l * 64) == self.line_channel(dbuf.0 + l * 64))
    }

    /// A phase-matched bounce region for a cross-channel offload: same
    /// length as the caller's buffer and the same position within the
    /// channel-interleave period as `sbuf`, so every source line and its
    /// bounce line decode to the same channel. Regions are pooled and
    /// reused per `(phase, pages)`.
    fn acquire_bounce(&mut self, sbuf: PhysAddr, size: usize) -> PhysAddr {
        let pages = size.div_ceil(PAGE) as u64;
        let period = (self.channels * self.interleave_lines * 64) as u64;
        let phase = sbuf.0 % period;
        if let Some(list) = self.bounce_pool.get_mut(&(phase, pages)) {
            if let Some(addr) = list.pop() {
                return addr;
            }
        }
        // Carve a fresh phase-matched region from the driver pool.
        // `alloc_next` and `sbuf` are both page aligned, so page-sized
        // steps cycle `alloc_next % period` through every page-aligned
        // phase and this terminates within `period / gcd(period, 4096)`
        // iterations. With multiple DIMMs per channel the region must
        // also decode entirely to the DSA-bearing slot: a staged line
        // on a capacity DIMM would keep the memcpy's raw bytes instead
        // of the device-substituted output.
        let addr = loop {
            while self.alloc_next % period != phase {
                self.alloc_next += PAGE as u64;
            }
            let cand = PhysAddr(self.alloc_next);
            if self.dsa_resident(cand, (pages as usize) * PAGE) {
                break cand;
            }
            self.alloc_next += PAGE as u64;
            assert!(
                self.alloc_next <= self.config_base.0,
                "driver bounce pool collides with MMIO space"
            );
        };
        self.alloc_next = addr.0 + pages * PAGE as u64;
        assert!(
            self.alloc_next <= self.config_base.0,
            "driver bounce pool collides with MMIO space"
        );
        addr
    }

    /// Returns a bounce region to the pool for reuse.
    fn release_bounce(&mut self, bounce: PhysAddr, size: usize) {
        let pages = size.div_ceil(PAGE) as u64;
        let period = (self.channels * self.interleave_lines * 64) as u64;
        let phase = bounce.0 % period;
        self.bounce_pool
            .entry((phase, pages))
            .or_default()
            .push(bounce);
    }

    /// Whether every covered line of `[base, base+size)` decodes to the
    /// DSA-bearing DIMM slot of its channel — the condition for the
    /// buffer devices to see the range's CAS traffic at all. Trivially
    /// true with one DIMM per channel.
    fn dsa_resident(&self, base: PhysAddr, size: usize) -> bool {
        let topo = *self.mapper.topology();
        if topo.dimms_per_channel == 1 {
            return true;
        }
        (0..size.div_ceil(64) as u64).all(|l| {
            let loc = self.mapper.decode(PhysAddr(base.0 + l * 64));
            // `new` installs every buffer device in slot 0.
            topo.dimm_slot_of_rank(loc.rank) == 0
        })
    }

    /// Samples every shard's placement inputs — the same scratchpad and
    /// translation-table signals [`CompCpyHost::queue_pressure`]
    /// reports, per channel, plus socket locality. Callers settle the
    /// shards first (the pressure fields are compute-derived).
    fn shard_snapshots(&mut self) -> Vec<sched::ShardSnapshot> {
        let topo = *self.mapper.topology();
        let home_socket = self.home_socket;
        (0..self.channels)
            .map(|ch| {
                let dev = self.device_on(ch);
                let cap = dev.config().scratchpad_pages.max(1);
                let free = dev.free_pages() as f64 / cap as f64;
                let occ = dev.xlat().occupancy();
                sched::ShardSnapshot {
                    channel: ch,
                    pressure: (1.0 - free).max(occ),
                    remote: topo.socket_of_channel(ch) != home_socket,
                }
            })
            .collect()
    }

    /// The score of an offload's current (static) placement: the worst
    /// [`sched::score`] over the channels its source lines touch.
    fn placement_score(&self, base: PhysAddr, size: usize, snaps: &[sched::ShardSnapshot]) -> f64 {
        let mut worst = f64::MIN;
        for l in 0..size.div_ceil(64) as u64 {
            let ch = self.line_channel(base.0 + l * 64);
            worst = worst.max(sched::score(&self.sched, &snaps[ch]));
        }
        worst
    }

    /// Counts the offload as remote or local: remote when any effective
    /// source line decodes to a channel on a non-home socket.
    fn note_locality(&mut self, base: PhysAddr, size: usize) {
        let topo = *self.mapper.topology();
        let remote = (0..size.div_ceil(64) as u64).any(|l| {
            topo.socket_of_channel(self.line_channel(base.0 + l * 64)) != self.home_socket
        });
        if remote {
            self.sched_stats.remote_placements += 1;
        } else {
            self.sched_stats.local_placements += 1;
        }
    }

    /// Chooses the effective source buffer for an offload: `sbuf`
    /// itself when the static decode already works, or a device-visible
    /// staging ("home") region the source is copied into first.
    ///
    /// Re-homing is *mandatory* when any source line decodes to a
    /// DSA-less DIMM slot — those CAS never reach a buffer device, so
    /// the offload would starve. Migration is *optional* and only under
    /// [`PlacementPolicy::OccupancyLocality`]: a pinnable offload (one
    /// that fits a single channel's contiguous interleave window) moves
    /// to the best-scoring shard when that beats its current placement
    /// by more than [`sched::SchedConfig::migrate_margin`].
    ///
    /// The staging copy runs *before* registration, so the devices see
    /// it as plain (unregistered) write traffic.
    fn place_source(&mut self, sbuf: PhysAddr, size: usize, class: usize) -> PhysAddr {
        let resident = self.dsa_resident(sbuf, size);
        let pinnable = self.channels == 1 || size <= self.interleave_lines * 64;
        let policy = self.sched.policy;
        if resident {
            if policy == PlacementPolicy::OccupancyLocality && pinnable && self.channels > 1 {
                let snaps = self.shard_snapshots();
                let best = sched::pick(&self.sched, &snaps);
                let cur = self.placement_score(sbuf, size, &snaps);
                if sched::score(&self.sched, &best) + self.sched.migrate_margin < cur {
                    self.sched_stats.migrated_offloads += 1;
                    let home = self.acquire_home(sbuf, size, Some(best.channel));
                    self.mem
                        .memcpy(home, sbuf, size.div_ceil(64) * 64, class, false);
                    self.note_locality(home, size);
                    return home;
                }
            }
            self.sched_stats.static_placements += 1;
            self.note_locality(sbuf, size);
            return sbuf;
        }
        // Mandatory re-homing: part of the source sits on a capacity
        // DIMM the DSA cannot see.
        self.sched_stats.rehomed_offloads += 1;
        let target = if pinnable {
            Some(match policy {
                PlacementPolicy::Static => self.line_channel(sbuf.0),
                PlacementPolicy::OccupancyLocality => {
                    let snaps = self.shard_snapshots();
                    sched::pick(&self.sched, &snaps).channel
                }
            })
        } else {
            None
        };
        let home = self.acquire_home(sbuf, size, target);
        self.mem
            .memcpy(home, sbuf, size.div_ceil(64) * 64, class, false);
        self.note_locality(home, size);
        home
    }

    /// A device-visible staging region for a re-homed or migrated
    /// offload. With `Some(channel)` the region decodes entirely to
    /// that channel's DSA-bearing DIMM (single-shard placement); with
    /// `None` it is phase-matched to `sbuf` — preserving the per-line
    /// channel pattern — and merely slot-resident. Regions are pooled
    /// and reused per `(target, pages)`.
    ///
    /// Single-channel targets require the offload to fit one interleave
    /// window (`channel_interleave_lines * 64` bytes);
    /// [`CompCpyHost::place_source`] only requests them for such
    /// ("pinnable") offloads.
    fn acquire_home(&mut self, sbuf: PhysAddr, size: usize, target: Option<usize>) -> PhysAddr {
        let pages = size.div_ceil(PAGE) as u64;
        let key = (target.unwrap_or(usize::MAX), pages);
        if let Some(list) = self.home_pool.get_mut(&key) {
            if let Some(addr) = list.pop() {
                return addr;
            }
        }
        let period = (self.channels * self.interleave_lines * 64) as u64;
        let phase = sbuf.0 % period;
        let addr = loop {
            if target.is_none() {
                // Phase-match so every line keeps its channel.
                while self.alloc_next % period != phase {
                    self.alloc_next += PAGE as u64;
                }
            }
            let cand = PhysAddr(self.alloc_next);
            let sole_ok = match target {
                Some(ch) => self.sole_channel(cand, size) == Some(ch),
                None => true,
            };
            if sole_ok && self.dsa_resident(cand, (pages as usize) * PAGE) {
                break cand;
            }
            self.alloc_next += PAGE as u64;
            assert!(
                self.alloc_next <= self.config_base.0,
                "driver home pool collides with MMIO space"
            );
        };
        self.alloc_next = addr.0 + pages * PAGE as u64;
        assert!(
            self.alloc_next <= self.config_base.0,
            "driver home pool collides with MMIO space"
        );
        addr
    }

    /// Returns a home region to the pool for reuse.
    fn release_home(&mut self, home: PhysAddr, size: usize) {
        let pages = size.div_ceil(PAGE) as u64;
        let key = (self.sole_channel(home, size).unwrap_or(usize::MAX), pages);
        self.home_pool.entry(key).or_default().push(home);
    }

    /// Whether every input byte of `handle` has reached a terminal DSA
    /// state: a terminal status on any shard, or per-channel partial
    /// progress summing to the input size.
    fn offload_settled(&mut self, handle: &OffloadHandle) -> bool {
        let mut bytes = 0u64;
        for c in 0..self.channels {
            let r = self.read_result_on(handle, c);
            match r.status {
                OffloadStatus::Done | OffloadStatus::Incompressible | OffloadStatus::Error => {
                    return true;
                }
                OffloadStatus::Partial => bytes += r.out_len,
                _ => {}
            }
        }
        bytes as usize >= handle.size
    }

    /// Reads the result slot of `handle` on `channel`.
    pub fn read_result_on(&mut self, handle: &OffloadHandle, channel: usize) -> ResultSlot {
        self.sync_shards(); // result slots fill on finalize
        let slot = (handle.id as usize) % self.result_slots;
        let addr = self.mmio_alias(RESULT_BASE + (slot as u64) * 64, channel);
        let data = self.mem.mmio_read64(addr);
        ResultSlot::from_bytes(&data)
    }

    /// Reads the result slot of `handle` on the channel that owns it —
    /// the home shard recorded at issue time when the placement pinned
    /// one (flex-mode, re-homed or migrated offloads run entirely on
    /// that shard), channel 0 otherwise.
    pub fn read_result(&mut self, handle: &OffloadHandle) -> ResultSlot {
        let ch = handle
            .home
            .map(|c| c as usize)
            .or_else(|| self.sole_channel(handle.sbuf, handle.size))
            .unwrap_or(0);
        self.read_result_on(handle, ch)
    }

    /// The AES-GCM tag of a completed TLS offload.
    ///
    /// With a single channel the device computed the full tag. Under
    /// channel interleaving each DIMM holds a *partial* GHASH accumulator
    /// over its own cachelines; this combines them with the metadata
    /// contribution and `EIV` host-side (§V-D, the step the paper assigns
    /// to the CPU). Returns `None` until every byte has been processed.
    pub fn tag(&mut self, handle: &OffloadHandle) -> Option<[u8; 16]> {
        let home = handle
            .home
            .map(|c| c as usize)
            .or_else(|| self.sole_channel(handle.sbuf, handle.size));
        if let Some(ch) = home {
            // One shard saw every source line (single-channel mode, or a
            // flex/bounced placement): it absorbed the metadata and
            // computed the full tag itself.
            let r = self.read_result_on(handle, ch);
            return match r.status {
                OffloadStatus::Done => Some(r.tag),
                _ => None,
            };
        }
        let (key, iv) = match handle.op {
            OffloadOp::TlsEncrypt { key, iv } | OffloadOp::TlsDecrypt { key, iv } => (key, iv),
            _ => return None,
        };
        let mut partials = Vec::with_capacity(self.channels);
        let mut bytes = 0u64;
        for c in 0..self.channels {
            let r = self.read_result_on(handle, c);
            match r.status {
                OffloadStatus::Partial => {
                    partials.push(r.tag);
                    bytes += r.out_len;
                }
                // A channel that saw no cachelines contributes nothing.
                OffloadStatus::InProgress if r.out_len == 0 => {}
                _ => return None,
            }
        }
        if bytes as usize != handle.size {
            return None;
        }
        let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
        Some(ulp_crypto::gcm::combine_partial_tags(
            &gcm,
            &iv,
            handle.aad_bytes(),
            handle.size,
            &partials,
        ))
    }

    /// Algorithm 1: Force-Recycle. Reads the pending list and reclaims
    /// scratchpad pages until at least `required` are free.
    ///
    /// Two passes per pending page: a `clflush` over the destination
    /// range recycles lines whose dirty copies still sit in the LLC; a
    /// second look at the valid-line bitmap catches lines whose premature
    /// writebacks were ignored (S7) — those are recycled with explicit
    /// write-requests that the device substitutes.
    pub fn force_recycle(&mut self, required: usize) -> usize {
        self.sync_shards(); // the pending list is compute-derived
        self.force_recycles += 1;
        let mut freed = 0usize;
        for channel in 0..self.channels {
            let mut index = 0u64;
            loop {
                let addr = self.mmio_alias(PENDING_BASE + index * 64, channel);
                let line = self.mem.mmio_read64(addr);
                let records = unpack_pending(&line);
                if records.is_empty() {
                    break;
                }
                for rec in &records {
                    let page = PhysAddr(rec.dst_page_addr);
                    // Pass 1: flush cached dirty lines (Algorithm 1 line 4).
                    self.mem.flush(page, PAGE);
                    // Pass 2: explicit write-requests for lines still staged.
                    let addr = self.mmio_alias(PENDING_BASE + index * 64, channel);
                    let line = self.mem.mmio_read64(addr);
                    let again = unpack_pending(&line);
                    if let Some(rec2) = again.iter().find(|r| r.dst_page_addr == rec.dst_page_addr)
                    {
                        for bit in 0..LINES_PER_PAGE {
                            if rec2.valid_bitmap & (1 << bit) != 0 {
                                let addr = PhysAddr(rec.dst_page_addr + (bit as u64) * 64);
                                // The device substitutes the staged data.
                                self.mem.dram_mut().write64(addr, &[0u8; 64]);
                            }
                        }
                    }
                    freed += 1;
                    if freed >= required {
                        return freed;
                    }
                }
                index += 1;
            }
        }
        freed
    }

    /// Algorithm 2: CompCpy. Transforms `size` bytes from `sbuf` into
    /// `dbuf` using the near-memory DSA while copying.
    ///
    /// `class` is the LLC allocation class of the calling core (CAT).
    ///
    /// # Errors
    ///
    /// See [`CompCpyError`]. On success the offload has already consumed
    /// the source data; call [`CompCpyHost::use_buffer`] to obtain the
    /// transformed bytes.
    pub fn comp_cpy(
        &mut self,
        dbuf: PhysAddr,
        sbuf: PhysAddr,
        size: usize,
        op: OffloadOp,
        ordered: bool,
        class: usize,
    ) -> Result<OffloadHandle, CompCpyError> {
        self.comp_cpy_with_aad(dbuf, sbuf, size, op, b"", ordered, class)
    }

    /// [`CompCpyHost::comp_cpy`] with AEAD additional data (the 5-byte
    /// TLS record header).
    #[allow(clippy::too_many_arguments)]
    pub fn comp_cpy_with_aad(
        &mut self,
        dbuf: PhysAddr,
        sbuf: PhysAddr,
        size: usize,
        op: OffloadOp,
        aad: &[u8],
        ordered: bool,
        class: usize,
    ) -> Result<OffloadHandle, CompCpyError> {
        // Lines 3-6: alignment.
        if !dbuf.is_page_aligned() || !sbuf.is_page_aligned() {
            return Err(CompCpyError::NotAligned);
        }
        if size == 0 {
            return Err(CompCpyError::BadSize);
        }
        if !op.size_preserving() && size > PAGE {
            // §V-C: (de)compression offloads are page granular; callers
            // split larger messages into per-page CompCpy calls.
            return Err(CompCpyError::BadSize);
        }
        if !op.size_preserving() && self.channels > 1 && self.sole_channel(sbuf, size).is_none() {
            // §V-D: non-size-preserving transforms need their *source* on
            // a single channel so one shard's engine sees the whole
            // message (single-channel mode, flex mode, or a coarse
            // interleave that keeps whole pages on one channel). The
            // destination may live anywhere: a mismatched dbuf is routed
            // through a phase-matched bounce buffer below.
            return Err(CompCpyError::SingleChannelOnly);
        }
        if aad.len() > 7 {
            return Err(CompCpyError::BadSize);
        }
        // Channel-sync point: settle whatever the previous offload left
        // pending — in parallel — before this offload's registration
        // MMIO traffic would force each shard to drain serially.
        self.sync_shards();
        self.apply_armed_faults();
        let pages_needed = 1 + size / PAGE; // line 16's reservation
                                            // Lines 7-17: reserve scratchpad space under the lock. The
                                            // cached count is read and written through the simkit::par
                                            // doorway; the MMIO refresh happens between lock scopes because
                                            // it needs the memory system.
        let cached = self.free_pages.with(|f| *f);
        if cached > pages_needed as i64 {
            self.free_pages.with(|f| *f -= pages_needed as i64);
        } else {
            // Lazy refresh from SmartDIMMConfig[0] (line 9).
            let status = {
                let data = self.mem.mmio_read64(self.mmio(STATUS_OFFSET));
                StatusReg::from_bytes(&data)
            };
            let mut refreshed = status.free_pages as i64;
            if refreshed <= pages_needed as i64 {
                // Unlikely path (lines 10-13).
                self.force_recycle(pages_needed);
                refreshed = self.read_status().free_pages as i64;
                if refreshed < pages_needed as i64 {
                    return Err(CompCpyError::OutOfScratchpad);
                }
            }
            self.free_pages
                .with(|f| *f = refreshed - pages_needed as i64);
        }

        let id = self.next_id;
        self.next_id += 1;

        // Placement: pick the shard(s) that serve this offload. The
        // static decode keeps a source wherever its lines map; sources
        // touching a DSA-less DIMM slot are staged into a
        // device-visible home region, and the occupancy+locality
        // policy may migrate pinnable offloads to a better shard.
        let eff_sbuf = self.place_source(sbuf, size, class);

        // §V-D routing: a shard can only serve page pairs whose source
        // and destination lines decode to its own channel and its own
        // DIMM slot. When the caller's dbuf sits at a different phase
        // of the interleave period than the effective source (possible
        // under coarse interleave) or touches a capacity DIMM, stage
        // the offload into a phase-matched bounce buffer and copy out
        // after the device completes.
        let src_sole = self.sole_channel(eff_sbuf, size);
        let direct = self.channel_maps_match(eff_sbuf, dbuf, size) && self.dsa_resident(dbuf, size);
        let stage_dbuf = if direct {
            dbuf
        } else {
            self.bounced_offloads += 1;
            self.acquire_bounce(eff_sbuf, size)
        };

        // Line 19: flush the (effective) source to DRAM so the DIMM
        // sees the data.
        self.mem.flush(eff_sbuf, size);

        // Lines 21-23: registration — context first, then the page pairs,
        // replicated to every channel's SmartDIMM (§V-D). When one shard
        // sees every source line it absorbs the AAD/length metadata and
        // computes the full tag; otherwise each DIMM runs a *partial*
        // TLS engine and the host contributes the metadata combining.
        let ctx = ContextChunk {
            offload_id: id,
            payload: op.encode_context_with_policy(size, aad, src_sole.is_some()),
        };
        self.mmio_broadcast(CONTEXT_OFFSET, &ctx.to_bytes());
        let num_pages = size.div_ceil(PAGE);
        for p in 0..num_pages {
            let reg = Registration {
                offload_id: id,
                src_page_addr: eff_sbuf.0 + (p * PAGE) as u64,
                dst_page_addr: stage_dbuf.0 + (p * PAGE) as u64,
                msg_offset: (p * PAGE) as u64,
            };
            self.mmio_broadcast(REGISTER_OFFSET, &reg.to_bytes());
        }

        // Lines 24-31: the copy. Ordered mode fences between lines.
        let ordered = ordered || op.requires_ordered();
        self.mem
            .memcpy(stage_dbuf, eff_sbuf, size.div_ceil(64) * 64, class, ordered);
        // The copy loop enqueued S6 feeds on every covered shard; this
        // is the main parallel section — all channels settle at once.
        self.sync_shards();

        let mut aad_buf = [0u8; 7];
        aad_buf[..aad.len()].copy_from_slice(aad);
        let handle = OffloadHandle {
            id,
            dbuf,
            sbuf,
            size,
            op,
            aad: aad_buf,
            aad_len: aad.len() as u8,
            home: src_sole.map(|c| c as u16),
        };
        if !direct {
            self.finish_bounce(&handle, eff_sbuf, stage_dbuf, class);
        }
        if eff_sbuf != sbuf {
            self.release_home(eff_sbuf, size);
        }
        Ok(handle)
    }

    /// Completes a bounced offload: settles injected faults, self-
    /// recycles the staged bounce lines (S9), and copies the transformed
    /// bytes into the caller's real destination buffer. `src` is the
    /// *effective* source the offload registered — the caller's sbuf or
    /// the scheduler's home region.
    fn finish_bounce(
        &mut self,
        handle: &OffloadHandle,
        src: PhysAddr,
        bounce: PhysAddr,
        class: usize,
    ) {
        self.sync_shards(); // staged bounce lines must be visible
        let covered = handle.size.div_ceil(64) * 64;
        if self.fault.is_some() {
            // Injected faults may have starved the DSA (dropped S6
            // feeds) or deferred writebacks; recover like a fault-aware
            // driver before touching the staged output: drain, re-flush,
            // re-feed the source range.
            for _ in 0..5 {
                if self.offload_settled(handle) {
                    break;
                }
                self.mem.drain_writebacks();
                self.mem.flush(src, covered);
                for l in (0..covered).step_by(64) {
                    let mut buf = [0u8; 64];
                    self.mem.load(PhysAddr(src.0 + l as u64), &mut buf, 0);
                }
            }
        }
        // Write the memcpy-dirtied bounce lines back so the device
        // substitutes the staged transformed data (S9), then copy the
        // result into the caller's dbuf — any line whose writeback was
        // deferred is served from the scratchpad on the read (S10).
        self.mem.flush(bounce, covered);
        let out_bytes = if handle.op.size_preserving() {
            covered
        } else {
            let r = self.read_result(handle);
            match r.status {
                OffloadStatus::Done | OffloadStatus::Incompressible => {
                    (r.out_len as usize).div_ceil(64) * 64
                }
                _ => covered,
            }
        };
        if out_bytes > 0 {
            self.mem
                .memcpy(handle.dbuf, bounce, out_bytes, class, false);
        }
        self.release_bounce(bounce, handle.size);
    }

    /// Registers a *Compute DMA* offload (§IV-E): the transformation runs
    /// as an I/O device DMAs the source data into memory, with no CPU
    /// copy at all. After this call, deliver the data with
    /// [`memsys::MemSystem::dma_write_through`] on `sbuf`; the buffer
    /// device feeds each arriving cacheline to the DSA. Read the result
    /// with [`CompCpyHost::read_dma_buffer`].
    ///
    /// Only size-preserving (TLS) operations are supported, and — like
    /// CompCpy itself on the prototype — a single channel.
    ///
    /// # Errors
    ///
    /// See [`CompCpyError`].
    pub fn compute_dma(
        &mut self,
        dbuf: PhysAddr,
        sbuf: PhysAddr,
        size: usize,
        op: OffloadOp,
        aad: &[u8],
    ) -> Result<OffloadHandle, CompCpyError> {
        if !dbuf.is_page_aligned() || !sbuf.is_page_aligned() {
            return Err(CompCpyError::NotAligned);
        }
        if size == 0 || aad.len() > 7 {
            return Err(CompCpyError::BadSize);
        }
        if !op.size_preserving() || self.channels > 1 {
            return Err(CompCpyError::SingleChannelOnly);
        }
        if !self.dsa_resident(sbuf, size) || !self.dsa_resident(dbuf, size) {
            // Compute DMA has no copy loop to stage through: the I/O
            // device's writes land where they land, so both buffers
            // must already be visible to the DSA-bearing DIMM slot.
            return Err(CompCpyError::SingleChannelOnly);
        }
        self.sync_shards();
        self.apply_armed_faults();
        // Reserve scratchpad space exactly as CompCpy does.
        let pages_needed = 1 + size / PAGE;
        let cached = self.free_pages.with(|f| *f);
        if cached <= pages_needed as i64 {
            let status = self.read_status();
            let mut refreshed = status.free_pages as i64;
            if refreshed <= pages_needed as i64 {
                self.force_recycle(pages_needed);
                refreshed = self.read_status().free_pages as i64;
                if refreshed < pages_needed as i64 {
                    return Err(CompCpyError::OutOfScratchpad);
                }
            }
            self.free_pages
                .with(|f| *f = refreshed - pages_needed as i64);
        } else {
            self.free_pages.with(|f| *f = cached - pages_needed as i64);
        }
        let id = self.next_id;
        self.next_id += 1;
        let ctx = ContextChunk {
            offload_id: id,
            payload: op.encode_context_full(size, aad, true, true),
        };
        self.mmio_broadcast(CONTEXT_OFFSET, &ctx.to_bytes());
        for p in 0..size.div_ceil(PAGE) {
            let reg = Registration {
                offload_id: id,
                src_page_addr: sbuf.0 + (p * PAGE) as u64,
                dst_page_addr: dbuf.0 + (p * PAGE) as u64,
                msg_offset: (p * PAGE) as u64,
            };
            self.mmio_broadcast(REGISTER_OFFSET, &reg.to_bytes());
        }
        let mut aad_buf = [0u8; 7];
        aad_buf[..aad.len()].copy_from_slice(aad);
        Ok(OffloadHandle {
            id,
            dbuf,
            sbuf,
            size,
            op,
            aad: aad_buf,
            aad_len: aad.len() as u8,
            home: Some(0),
        })
    }

    /// Reads a Compute-DMA result and recycles its Scratchpad pages.
    ///
    /// Unlike CompCpy, no CPU copy dirtied `dbuf`, so there are no LLC
    /// writebacks to self-recycle the staged lines; reads are served from
    /// the Scratchpad (S10) and the host then issues explicit
    /// write-requests (as Force-Recycle's second pass does) to drain the
    /// staging.
    pub fn read_dma_buffer(&mut self, handle: &OffloadHandle) -> Vec<u8> {
        self.sync_shards(); // DMA feeds settle before the staged read
        let mut out = vec![0u8; handle.size];
        self.mem.load(handle.dbuf, &mut out, 0);
        // Drop the clean cached copies and recycle the staged lines with
        // explicit write-requests (the device substitutes staged data).
        self.mem.flush(handle.dbuf, handle.size.div_ceil(64) * 64);
        for line in (0..handle.size.div_ceil(64) * 64).step_by(64) {
            let addr = PhysAddr(handle.dbuf.0 + line as u64);
            self.mem.dram_mut().write64(addr, &[0u8; 64]);
        }
        out
    }

    /// The `USE` step (Algorithm 2 lines 32-34): flushes `dbuf` so dirty
    /// plaintext copies write back (self-recycling the scratchpad) and
    /// reads the transformed result.
    ///
    /// For TLS the returned length equals the input; for compression it
    /// is the compressed size from the result slot (raw input if the page
    /// was incompressible).
    pub fn use_buffer(&mut self, handle: &OffloadHandle) -> Vec<u8> {
        // Channel-sync point: flushing dbuf triggers S9 self-recycles,
        // which need every staged line in place.
        self.sync_shards();
        self.mem.flush(handle.dbuf, handle.size.div_ceil(64) * 64);
        let result = self.read_result(handle);
        let len = match result.status {
            OffloadStatus::Done | OffloadStatus::Incompressible => result.out_len as usize,
            _ => handle.size,
        };
        let mut out = vec![0u8; len];
        self.mem.load(handle.dbuf, &mut out, 0);
        out
    }

    /// Executes the same transformation on the CPU (the paper's `CPU`
    /// baseline): no registration, no DSA — pure software, same memory
    /// system. Returns the transformed bytes.
    pub fn cpu_transform(
        &mut self,
        dbuf: PhysAddr,
        sbuf: PhysAddr,
        size: usize,
        op: OffloadOp,
        aad: &[u8],
        class: usize,
    ) -> Vec<u8> {
        let mut input = vec![0u8; size];
        self.mem.load(sbuf, &mut input, class);
        let out = match op {
            OffloadOp::TlsEncrypt { key, iv } => {
                let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
                let (ct, _tag) = gcm.seal(&iv, aad, &input);
                ct
            }
            OffloadOp::TlsDecrypt { key, iv } => {
                let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
                let mut pt = input.clone();
                gcm.xor_keystream(&iv, 0, &mut pt);
                pt
            }
            OffloadOp::Compress => ulp_compress::deflate::compress(&input),
            OffloadOp::Decompress => ulp_compress::inflate::decompress(&input).unwrap_or_default(),
        };
        self.mem.store(dbuf, &out, class);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache::CacheConfig;

    fn host() -> CompCpyHost {
        CompCpyHost::new(HostConfig::default())
    }

    fn contended_host() -> CompCpyHost {
        // A tiny LLC so writebacks (and thus self-recycles) happen fast.
        let mut cfg = HostConfig::default();
        cfg.mem.llc = Some(CacheConfig::kb(64, 8));
        CompCpyHost::new(cfg)
    }

    #[test]
    fn tls_encrypt_end_to_end() {
        let mut h = host();
        let src = h.alloc_pages(1);
        let dst = h.alloc_pages(1);
        let msg: Vec<u8> = (0..4096u32).map(|i| (i * 7) as u8).collect();
        h.mem_mut().store(src, &msg, 0);
        let key = [0xAA; 16];
        let iv = [0xBB; 12];
        let handle = h
            .comp_cpy(
                dst,
                src,
                msg.len(),
                OffloadOp::TlsEncrypt { key, iv },
                false,
                0,
            )
            .unwrap();
        let ct = h.use_buffer(&handle);
        let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
        let (want, tag) = gcm.seal(&iv, b"", &msg);
        assert_eq!(ct, want);
        assert_eq!(h.tag(&handle), Some(tag));
    }

    #[test]
    fn tls_multi_page_message() {
        let mut h = host();
        let pages = 4; // 16 KB TLS record
        let src = h.alloc_pages(pages);
        let dst = h.alloc_pages(pages);
        let msg = ulp_compress::corpus::html(pages * 4096, 1);
        h.mem_mut().store(src, &msg, 0);
        let key = [1u8; 16];
        let iv = [2u8; 12];
        let handle = h
            .comp_cpy_with_aad(
                dst,
                src,
                msg.len(),
                OffloadOp::TlsEncrypt { key, iv },
                b"hdr#1",
                false,
                0,
            )
            .unwrap();
        let ct = h.use_buffer(&handle);
        let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
        let (want, tag) = gcm.seal(&iv, b"hdr#1", &msg);
        assert_eq!(ct, want);
        assert_eq!(h.tag(&handle), Some(tag));
    }

    #[test]
    fn tls_decrypt_round_trip() {
        let mut h = host();
        let key = [3u8; 16];
        let iv = [4u8; 12];
        let msg = ulp_compress::corpus::text(5000, 2);
        let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
        let (ct, _) = gcm.seal(&iv, b"", &msg);

        let src = h.alloc_pages(2);
        let dst = h.alloc_pages(2);
        h.mem_mut().store(src, &ct, 0);
        let handle = h
            .comp_cpy(
                dst,
                src,
                ct.len(),
                OffloadOp::TlsDecrypt { key, iv },
                false,
                0,
            )
            .unwrap();
        let pt = h.use_buffer(&handle);
        assert_eq!(pt, msg);
    }

    #[test]
    fn compress_page_end_to_end() {
        let mut h = host();
        let src = h.alloc_pages(1);
        let dst = h.alloc_pages(1);
        let page = ulp_compress::corpus::json(4096, 3);
        h.mem_mut().store(src, &page, 0);
        let handle = h
            .comp_cpy(dst, src, page.len(), OffloadOp::Compress, true, 0)
            .unwrap();
        let compressed = h.use_buffer(&handle);
        assert!(compressed.len() < page.len());
        assert_eq!(
            ulp_compress::inflate::decompress(&compressed).unwrap(),
            page
        );
        let r = h.read_result(&handle);
        assert_eq!(r.status, OffloadStatus::Done);
        assert_eq!(r.out_len as usize, compressed.len());
    }

    #[test]
    fn compress_incompressible_returns_raw() {
        let mut h = host();
        let src = h.alloc_pages(1);
        let dst = h.alloc_pages(1);
        let page = ulp_compress::corpus::random(4096, 4);
        h.mem_mut().store(src, &page, 0);
        let handle = h
            .comp_cpy(dst, src, page.len(), OffloadOp::Compress, true, 0)
            .unwrap();
        let out = h.use_buffer(&handle);
        assert_eq!(h.read_result(&handle).status, OffloadStatus::Incompressible);
        assert_eq!(out, page);
    }

    #[test]
    fn decompress_page_end_to_end() {
        let mut h = host();
        let page = ulp_compress::corpus::html(4096, 5);
        let compressed = ulp_compress::deflate::compress(&page);
        assert!(compressed.len() <= 4096);
        let src = h.alloc_pages(1);
        let dst = h.alloc_pages(1);
        h.mem_mut().store(src, &compressed, 0);
        let handle = h
            .comp_cpy(dst, src, compressed.len(), OffloadOp::Decompress, true, 0)
            .unwrap();
        let out = h.use_buffer(&handle);
        assert_eq!(out, page);
    }

    #[test]
    fn alignment_and_size_validation() {
        let mut h = host();
        let src = h.alloc_pages(1);
        let dst = h.alloc_pages(1);
        assert_eq!(
            h.comp_cpy(PhysAddr(dst.0 + 64), src, 64, OffloadOp::Compress, true, 0),
            Err(CompCpyError::NotAligned)
        );
        assert_eq!(
            h.comp_cpy(dst, src, 0, OffloadOp::Compress, true, 0),
            Err(CompCpyError::BadSize)
        );
        assert_eq!(
            h.comp_cpy(dst, src, 8192, OffloadOp::Compress, true, 0),
            Err(CompCpyError::BadSize)
        );
    }

    #[test]
    fn many_offloads_self_recycle_without_force() {
        // Back-to-back offloads under LLC pressure: self-recycling via
        // USE-step writebacks must keep the scratchpad from filling.
        let mut h = contended_host();
        let key = [9u8; 16];
        for i in 0..32u64 {
            let src = h.alloc_pages(1);
            let dst = h.alloc_pages(1);
            let msg = ulp_compress::corpus::text(4096, i);
            h.mem_mut().store(src, &msg, 0);
            let iv = [i as u8; 12];
            let handle = h
                .comp_cpy(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    false,
                    0,
                )
                .unwrap();
            let ct = h.use_buffer(&handle);
            let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
            let (want, _) = gcm.seal(&iv, b"", &msg);
            assert_eq!(ct, want, "offload {i}");
        }
        assert_eq!(h.force_recycle_count(), 0);
        let stats = h.device_stats();
        assert_eq!(stats.offloads_completed, 32);
        assert!(stats.self_recycles > 0);
    }

    #[test]
    fn force_recycle_reclaims_tiny_scratchpad() {
        // A 3-page scratchpad with a huge LLC: writebacks never happen on
        // their own, so CompCpy must invoke Force-Recycle.
        let mut cfg = HostConfig::default();
        cfg.dimm.scratchpad_pages = 3;
        cfg.mem.llc = Some(CacheConfig::mb(8, 16));
        let mut h = CompCpyHost::new(cfg);
        let key = [5u8; 16];
        for i in 0..6u64 {
            let src = h.alloc_pages(1);
            let dst = h.alloc_pages(1);
            let msg = ulp_compress::corpus::text(4096, 100 + i);
            h.mem_mut().store(src, &msg, 0);
            let iv = [i as u8; 12];
            let handle = h
                .comp_cpy(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    false,
                    0,
                )
                .expect("force-recycle must make room");
            // Deliberately do NOT call use_buffer (no flush-driven
            // recycling) so the scratchpad stays occupied.
            let _ = handle;
        }
        assert!(h.force_recycle_count() > 0);
    }

    #[test]
    fn force_recycled_data_is_correct() {
        let mut cfg = HostConfig::default();
        cfg.dimm.scratchpad_pages = 2;
        cfg.mem.llc = Some(CacheConfig::mb(8, 16));
        let mut h = CompCpyHost::new(cfg);
        let key = [6u8; 16];
        let mut handles = Vec::new();
        let mut messages = Vec::new();
        for i in 0..4u64 {
            let src = h.alloc_pages(1);
            let dst = h.alloc_pages(1);
            let msg = ulp_compress::corpus::json(4096, 200 + i);
            h.mem_mut().store(src, &msg, 0);
            let iv = [(i + 1) as u8; 12];
            let handle = h
                .comp_cpy(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    false,
                    0,
                )
                .unwrap();
            handles.push((handle, iv));
            messages.push(msg);
        }
        // Every offload — including the force-recycled ones — must read
        // back the right ciphertext.
        for ((handle, iv), msg) in handles.iter().zip(messages.iter()) {
            let ct = h.use_buffer(handle);
            let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
            let (want, _) = gcm.seal(iv, b"", msg);
            assert_eq!(&ct, &want);
        }
    }

    #[test]
    fn buffer_reuse_supersedes_stale_offloads() {
        // Persistent connections reuse the same sbuf/dbuf for every
        // response. Back-to-back offloads on the same pages — without
        // consuming the first — must supersede cleanly and the last
        // result must be correct (regression: stale source translations
        // once survived the supersede and starved the DSA).
        let mut cfg = HostConfig::default();
        cfg.mem.llc = Some(cache::CacheConfig::kb(256, 8));
        let mut h = CompCpyHost::new(cfg);
        let src = h.alloc_pages(4);
        let dst = h.alloc_pages(4);
        let key = [7u8; 16];
        let mut last = None;
        for i in 0..6u64 {
            let msg = ulp_compress::corpus::text(16384, 300 + i);
            h.mem_mut().store(src, &msg, 0);
            let iv = [(i + 1) as u8; 12];
            let handle = h
                .comp_cpy(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    false,
                    0,
                )
                .unwrap();
            last = Some((handle, iv, msg));
        }
        let (handle, iv, msg) = last.unwrap();
        let ct = h.use_buffer(&handle);
        let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
        let (want, tag) = gcm.seal(&iv, b"", &msg);
        assert_eq!(ct, want);
        assert_eq!(h.tag(&handle), Some(tag));
    }

    #[test]
    fn cpu_baseline_matches_offload() {
        let mut h = host();
        let src = h.alloc_pages(1);
        let dst = h.alloc_pages(1);
        let msg = ulp_compress::corpus::text(4096, 7);
        h.mem_mut().store(src, &msg, 0);
        let key = [8u8; 16];
        let iv = [9u8; 12];
        let cpu_out = h.cpu_transform(
            dst,
            src,
            msg.len(),
            OffloadOp::TlsEncrypt { key, iv },
            b"",
            0,
        );

        let mut h2 = host();
        let src2 = h2.alloc_pages(1);
        let dst2 = h2.alloc_pages(1);
        h2.mem_mut().store(src2, &msg, 0);
        let handle = h2
            .comp_cpy(
                dst2,
                src2,
                msg.len(),
                OffloadOp::TlsEncrypt { key, iv },
                false,
                0,
            )
            .unwrap();
        assert_eq!(h2.use_buffer(&handle), cpu_out);
    }

    /// First page-aligned address at or above `from` whose opening line
    /// decodes to DIMM slot 1 (rank blocks are much larger than a page,
    /// so the whole page sits on the capacity DIMM).
    fn slot1_page(topo: &dram::DramTopology, from: u64) -> PhysAddr {
        let m = AddressMapper::new(*topo);
        let mut a = from;
        loop {
            let loc = m.decode(PhysAddr(a));
            if topo.dimm_slot_of_rank(loc.rank) == 1 {
                return PhysAddr(a);
            }
            a += PAGE as u64;
        }
    }

    #[test]
    fn multi_dimm_rehomes_capacity_slot_source() {
        // A source page on the DSA-less DIMM slot must be transparently
        // staged into a device-visible home region — the shard never
        // sees slot-1 CAS, so without re-homing the offload starves.
        let mut cfg = HostConfig::default();
        cfg.mem.dram.topology.dimms_per_channel = 2;
        let topo = cfg.mem.dram.topology;
        let mut h = CompCpyHost::new(cfg);
        // Far above the driver pool so home-region carving can't collide.
        let src = slot1_page(&topo, 0x0100_0000);
        let dst = h.alloc_pages(1);
        let msg = ulp_compress::corpus::text(4096, 11);
        h.mem_mut().store(src, &msg, 0);
        let key = [0x33u8; 16];
        let iv = [0x44u8; 12];
        let handle = h
            .comp_cpy(
                dst,
                src,
                msg.len(),
                OffloadOp::TlsEncrypt { key, iv },
                false,
                0,
            )
            .expect("re-homed offload accepted");
        let ct = h.use_buffer(&handle);
        let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
        let (want, tag) = gcm.seal(&iv, b"", &msg);
        assert_eq!(ct, want);
        assert_eq!(h.tag(&handle), Some(tag));
        assert_eq!(h.sched_stats().rehomed_offloads, 1);
        assert_eq!(h.sched_stats().static_placements, 0);
    }

    #[test]
    fn rehomed_offloads_reuse_pooled_home_regions() {
        let mut cfg = HostConfig::default();
        cfg.mem.dram.topology.dimms_per_channel = 2;
        let topo = cfg.mem.dram.topology;
        let mut h = CompCpyHost::new(cfg);
        let src = slot1_page(&topo, 0x0100_0000);
        let dst = h.alloc_pages(1);
        let key = [0x55u8; 16];
        for i in 0..4u64 {
            let msg = ulp_compress::corpus::json(4096, 40 + i);
            h.mem_mut().store(src, &msg, 0);
            let iv = [(i + 1) as u8; 12];
            let handle = h
                .comp_cpy(
                    dst,
                    src,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    false,
                    0,
                )
                .unwrap();
            let ct = h.use_buffer(&handle);
            let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
            let (want, _) = gcm.seal(&iv, b"", &msg);
            assert_eq!(ct, want, "round {i}");
        }
        assert_eq!(h.sched_stats().rehomed_offloads, 4);
    }

    #[test]
    fn occupancy_locality_migrates_remote_source_home() {
        // Two channels split across two sockets, page-granular
        // interleave: a source page on the remote socket's channel
        // stays put under the static decode but migrates to the local
        // shard under occupancy+locality scheduling.
        let mk = |policy| {
            let mut cfg = HostConfig::default();
            cfg.mem.dram.topology.channels = 2;
            cfg.mem.dram.topology.sockets = 2;
            cfg.mem.dram.topology.channel_interleave_lines = 64;
            cfg.mem.dram.interconnect_penalty_cycles = 200;
            cfg.sched.policy = policy;
            CompCpyHost::new(cfg)
        };
        let src = PhysAddr(0x0100_1000); // decodes to channel 1 (remote socket)
        let dst = PhysAddr(0x0100_0000); // decodes to channel 0 (home socket)
        let msg = ulp_compress::corpus::html(4096, 9);
        let key = [0x66u8; 16];
        let iv = [0x77u8; 12];
        let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
        let (want, want_tag) = gcm.seal(&iv, b"", &msg);

        let mut h = mk(sched::PlacementPolicy::Static);
        h.mem_mut().store(src, &msg, 0);
        let handle = h
            .comp_cpy(
                dst,
                src,
                msg.len(),
                OffloadOp::TlsEncrypt { key, iv },
                false,
                0,
            )
            .unwrap();
        assert_eq!(h.use_buffer(&handle), want);
        assert_eq!(h.tag(&handle), Some(want_tag));
        let s = h.sched_stats();
        assert_eq!(s.migrated_offloads, 0, "static decode never migrates");
        assert_eq!(s.remote_placements, 1, "source stayed on the remote shard");

        let mut h = mk(sched::PlacementPolicy::OccupancyLocality);
        h.mem_mut().store(src, &msg, 0);
        let handle = h
            .comp_cpy(
                dst,
                src,
                msg.len(),
                OffloadOp::TlsEncrypt { key, iv },
                false,
                0,
            )
            .unwrap();
        assert_eq!(h.use_buffer(&handle), want);
        assert_eq!(h.tag(&handle), Some(want_tag));
        let s = h.sched_stats();
        assert_eq!(s.migrated_offloads, 1, "locality pulled the offload home");
        assert_eq!(s.local_placements, 1);
        assert_eq!(s.remote_placements, 0);
    }

    #[test]
    fn status_register_reflects_activity() {
        let mut h = host();
        let s0 = h.read_status();
        assert_eq!(s0.free_pages, 2048);
        let src = h.alloc_pages(1);
        let dst = h.alloc_pages(1);
        h.mem_mut().store(src, &[1u8; 4096], 0);
        let _ = h
            .comp_cpy(
                dst,
                src,
                4096,
                OffloadOp::TlsEncrypt {
                    key: [0; 16],
                    iv: [0; 12],
                },
                false,
                0,
            )
            .unwrap();
        let s1 = h.read_status();
        assert_eq!(s1.free_pages, 2047);
        assert_eq!(s1.pending_pages, 1);
    }
}

#[cfg(test)]
mod compute_dma_tests {
    use super::*;
    use crate::dsa::OffloadOp;

    #[test]
    fn dma_decrypt_end_to_end() {
        // §IV-E: a NIC DMAs a TLS ciphertext payload into SmartDIMM; the
        // DSA decrypts it as the writes stream in; the CPU reads
        // plaintext without ever running the cipher.
        let mut h = CompCpyHost::new(HostConfig::default());
        let key = [0x21u8; 16];
        let iv = [0x42u8; 12];
        let msg = ulp_compress::corpus::json(8192, 77);
        let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
        let (ct, tag) = gcm.seal(&iv, b"", &msg);

        let sbuf = h.alloc_pages(2);
        let dbuf = h.alloc_pages(2);
        let handle = h
            .compute_dma(dbuf, sbuf, ct.len(), OffloadOp::TlsDecrypt { key, iv }, b"")
            .expect("registered");
        // The device DMAs the ciphertext straight through the LLC.
        h.mem_mut().dma_write_through(sbuf, &ct);
        let pt = h.read_dma_buffer(&handle);
        assert_eq!(pt, msg);
        assert_eq!(h.tag(&handle), Some(tag), "tag verified over DMA input");
        // The source range in DRAM holds the raw ciphertext (normal write).
        let mut raw = vec![0u8; 64];
        h.mem_mut().load(sbuf, &mut raw, 0);
        assert_eq!(&raw[..], &ct[..64]);
    }

    #[test]
    fn dma_encrypt_end_to_end() {
        let mut h = CompCpyHost::new(HostConfig::default());
        let key = [0x09u8; 16];
        let iv = [0x01u8; 12];
        let msg = ulp_compress::corpus::text(4096, 5);
        let sbuf = h.alloc_pages(1);
        let dbuf = h.alloc_pages(1);
        let handle = h
            .compute_dma(
                dbuf,
                sbuf,
                msg.len(),
                OffloadOp::TlsEncrypt { key, iv },
                b"",
            )
            .expect("registered");
        h.mem_mut().dma_write_through(sbuf, &msg);
        let ct = h.read_dma_buffer(&handle);
        let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
        let (want, want_tag) = gcm.seal(&iv, b"", &msg);
        assert_eq!(ct, want);
        assert_eq!(h.tag(&handle), Some(want_tag));
        // The scratchpad fully drained after the explicit recycle pass.
        assert_eq!(h.read_status().free_pages, 2048);
    }

    #[test]
    fn dma_rejects_compression_and_misalignment() {
        let mut h = CompCpyHost::new(HostConfig::default());
        let sbuf = h.alloc_pages(1);
        let dbuf = h.alloc_pages(1);
        assert_eq!(
            h.compute_dma(dbuf, sbuf, 4096, OffloadOp::Compress, b""),
            Err(CompCpyError::SingleChannelOnly)
        );
        assert_eq!(
            h.compute_dma(
                PhysAddr(dbuf.0 + 64),
                sbuf,
                64,
                OffloadOp::TlsEncrypt {
                    key: [0; 16],
                    iv: [0; 12]
                },
                b""
            ),
            Err(CompCpyError::NotAligned)
        );
    }

    #[test]
    fn repeated_dma_offloads_reuse_buffers() {
        let mut h = CompCpyHost::new(HostConfig::default());
        let key = [0x44u8; 16];
        let sbuf = h.alloc_pages(1);
        let dbuf = h.alloc_pages(1);
        for i in 0..5u64 {
            let msg = ulp_compress::corpus::html(4096, i);
            let iv = [(i + 1) as u8; 12];
            let handle = h
                .compute_dma(
                    dbuf,
                    sbuf,
                    msg.len(),
                    OffloadOp::TlsEncrypt { key, iv },
                    b"",
                )
                .expect("registered");
            h.mem_mut().dma_write_through(sbuf, &msg);
            let ct = h.read_dma_buffer(&handle);
            let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
            let (want, _) = gcm.seal(&iv, b"", &msg);
            assert_eq!(ct, want, "round {i}");
        }
    }
}
