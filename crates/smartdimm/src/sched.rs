//! Host-side offload placement scheduling (ROADMAP item 5).
//!
//! With one DIMM per channel, placement is a non-problem: the per-line
//! channel decode fixes which shard serves every cacheline and each
//! channel's DIMM carries a buffer device. Scale-out topologies break
//! both assumptions — only one DIMM slot per channel carries the DSA,
//! and a two-socket system makes some shards *remote* (every CAS pays
//! the interconnect). Placement becomes a real decision, which the PIM
//! adoption literature (Ghose et al.) calls out as the central obstacle
//! to near-memory processing.
//!
//! This module holds the policy side of that decision: pure functions
//! over per-shard snapshots, no simulator state. [`crate::CompCpyHost`]
//! samples its shards (the same scratchpad/xlat inputs that
//! [`crate::QueuePressure`] reports), asks [`pick`] for a target, and
//! implements the placement mechanically (home-region staging). Keeping
//! the scoring pure keeps the decision deterministic: identical
//! simulated state yields identical placements at any thread count.

/// How CompCpy places offloads onto channel shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The per-line channel decode is the only placement mechanism: an
    /// offload runs wherever its source buffer's lines happen to map.
    /// Sources that touch a DSA-less DIMM slot are re-homed to the
    /// statically decoded channel — never migrated for load or locality.
    #[default]
    Static,
    /// Occupancy + locality scheduling: pinnable offloads go to the
    /// shard with the lowest combined pressure/remoteness [`score`];
    /// already-resident offloads migrate when the best shard beats their
    /// current placement by more than
    /// [`SchedConfig::migrate_margin`].
    OccupancyLocality,
}

/// Scheduler tuning knobs, carried in
/// [`crate::HostConfig`](crate::compcpy::HostConfig).
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// The placement policy.
    pub policy: PlacementPolicy,
    /// Score penalty for a shard on a remote socket, in the same unit
    /// as the pressure scalar (`0.0`–`1.0` occupancy). `0.5` means a
    /// remote shard must be half a scratchpad emptier than a local one
    /// before it wins.
    pub remote_weight: f64,
    /// Minimum score improvement before a resident offload is migrated
    /// off its statically decoded placement. Guards against churning
    /// the staging pools for marginal wins.
    pub migrate_margin: f64,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            policy: PlacementPolicy::Static,
            remote_weight: 0.5,
            migrate_margin: 0.25,
        }
    }
}

/// One shard's inputs to a placement decision, sampled at a settle
/// point (the fields are compute-derived).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSnapshot {
    /// The channel this shard serves.
    pub channel: usize,
    /// Combined occupancy scalar in `[0, 1]`: the worst of scratchpad
    /// usage and translation-table occupancy
    /// (see [`crate::QueuePressure::scalar`]).
    pub pressure: f64,
    /// Whether the shard's channel is on a different socket than the
    /// issuing host (every CAS pays the interconnect penalty).
    pub remote: bool,
}

/// The placement score of one shard — lower is better. Occupancy plus
/// the locality penalty for remote-socket shards.
pub fn score(cfg: &SchedConfig, shard: &ShardSnapshot) -> f64 {
    shard.pressure + if shard.remote { cfg.remote_weight } else { 0.0 }
}

/// Picks the best-scoring shard; ties break to the lowest channel so
/// the decision is deterministic.
///
/// # Panics
///
/// Panics on an empty snapshot slice.
pub fn pick(cfg: &SchedConfig, shards: &[ShardSnapshot]) -> ShardSnapshot {
    assert!(!shards.is_empty(), "no shards to place onto");
    let mut best = shards[0];
    for s in &shards[1..] {
        if score(cfg, s) < score(cfg, &best) {
            best = *s;
        }
    }
    best
}

/// Placement-decision counters, exported under the host's `sched`
/// telemetry scope. Deterministic: decisions depend only on simulated
/// state, never on thread count or wall clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedStats {
    /// Offloads placed by the static per-line decode (resident source,
    /// no migration).
    pub static_placements: u64,
    /// Offloads whose source touched a DSA-less DIMM slot and was
    /// staged into a device-visible home region (mandatory re-homing —
    /// both policies must do this for correctness).
    pub rehomed_offloads: u64,
    /// Resident offloads the occupancy+locality policy moved off their
    /// statically decoded shard (policy-driven,
    /// [`PlacementPolicy::OccupancyLocality`] only).
    pub migrated_offloads: u64,
    /// Offloads whose effective source touched at least one
    /// remote-socket channel.
    pub remote_placements: u64,
    /// Offloads served entirely by home-socket shards.
    pub local_placements: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(channel: usize, pressure: f64, remote: bool) -> ShardSnapshot {
        ShardSnapshot {
            channel,
            pressure,
            remote,
        }
    }

    #[test]
    fn pick_prefers_low_pressure() {
        let cfg = SchedConfig::default();
        let shards = [snap(0, 0.8, false), snap(1, 0.2, false)];
        assert_eq!(pick(&cfg, &shards).channel, 1);
    }

    #[test]
    fn locality_outweighs_small_pressure_gap() {
        // A remote shard must be more than `remote_weight` emptier to
        // win; a 0.3 pressure gap does not clear the 0.5 penalty.
        let cfg = SchedConfig::default();
        let shards = [snap(0, 0.4, false), snap(1, 0.1, true)];
        assert_eq!(pick(&cfg, &shards).channel, 0);
        // A large enough gap does.
        let shards = [snap(0, 0.9, false), snap(1, 0.1, true)];
        assert_eq!(pick(&cfg, &shards).channel, 1);
    }

    #[test]
    fn ties_break_to_lowest_channel() {
        let cfg = SchedConfig::default();
        let shards = [
            snap(0, 0.5, false),
            snap(1, 0.5, false),
            snap(2, 0.5, false),
        ];
        assert_eq!(pick(&cfg, &shards).channel, 0);
    }

    #[test]
    fn zero_remote_weight_ignores_locality() {
        let cfg = SchedConfig {
            remote_weight: 0.0,
            ..SchedConfig::default()
        };
        let shards = [snap(0, 0.4, false), snap(1, 0.3, true)];
        assert_eq!(pick(&cfg, &shards).channel, 1);
    }
}
