//! The Scratchpad (§IV-B, §IV-C): on-buffer-device SRAM that stages DSA
//! results until they are recycled into DRAM.
//!
//! The CPU memory controller owns SmartDIMM's DRAM, so the DSA can never
//! write DRAM directly; results wait in the Scratchpad. Each 4 KB page is
//! allocated to one destination page of an offload; individual 64-byte
//! lines become *valid* as the DSA computes them and are *invalidated*
//! when a wrCAS to the corresponding DRAM address is intercepted and the
//! staged line substituted (Self-Recycle). When every valid line of a
//! page has been recycled, the page frees itself.

use simkit::{Cycle, TimeSeries};

use crate::LINES_PER_PAGE;

/// Per-line state within an allocated Scratchpad page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// The DSA has not produced this line yet (read → ALERT_N retry,
    /// writeback → ignored).
    Pending,
    /// The DSA result is staged and waiting to be recycled.
    Valid,
    /// The line was recycled to DRAM (or was never part of the output).
    Done,
}

#[derive(Debug, Clone)]
struct Page {
    /// Destination physical page this allocation serves.
    dst_page: u64,
    lines: [LineState; LINES_PER_PAGE],
    data: Vec<[u8; 64]>,
    /// Bitmask of lines that must eventually be produced and recycled.
    /// Under memory-channel interleaving this is a strided subset of the
    /// page — each DIMM stages only its own channel's cachelines (§V-D).
    expected_mask: u64,
    recycled: usize,
}

impl Page {
    fn expected_count(&self) -> usize {
        self.expected_mask.count_ones() as usize
    }

    fn expects(&self, line: usize) -> bool {
        self.expected_mask & (1u64 << line) != 0
    }
}

/// Bitmask covering the first `n` lines of a page.
pub fn prefix_mask(n: usize) -> u64 {
    assert!(n <= LINES_PER_PAGE);
    if n == LINES_PER_PAGE {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Scratchpad statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchpadStats {
    /// Pages allocated over the lifetime.
    pub allocs: u64,
    /// Pages freed after full recycling.
    pub frees: u64,
    /// Lines recycled by LLC writebacks (Self-Recycle).
    pub self_recycled_lines: u64,
    /// Peak occupancy in bytes.
    pub peak_bytes: usize,
}

/// The Scratchpad SRAM.
pub struct Scratchpad {
    pages: Vec<Option<Page>>,
    free_list: Vec<usize>,
    stats: ScratchpadStats,
    occupancy: TimeSeries,
    in_use_lines: usize,
}

impl std::fmt::Debug for Scratchpad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scratchpad")
            .field("pages", &self.pages.len())
            .field("free", &self.free_list.len())
            .finish()
    }
}

impl Scratchpad {
    /// Creates a scratchpad of `pages` 4 KB pages (paper: 2048 = 8 MB).
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(pages: usize) -> Scratchpad {
        assert!(pages > 0, "scratchpad needs at least one page");
        Scratchpad {
            pages: (0..pages).map(|_| None).collect(),
            free_list: (0..pages).rev().collect(),
            stats: ScratchpadStats::default(),
            occupancy: TimeSeries::new("scratchpad.bytes"),
            in_use_lines: 0,
        }
    }

    /// Total page capacity.
    pub fn capacity_pages(&self) -> usize {
        self.pages.len()
    }

    /// Currently free pages — the value `SmartDIMMConfig[0]` reports to
    /// CompCpy's lazy `freePages` refresh.
    pub fn free_pages(&self) -> usize {
        self.free_list.len()
    }

    /// Pages currently allocated (pending recycling) with their
    /// destination physical pages — Algorithm 1's pending list.
    pub fn pending_pages(&self) -> Vec<(usize, u64)> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i, p.dst_page)))
            .collect()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ScratchpadStats {
        self.stats
    }

    /// Occupancy time series (bytes in use), for Fig. 10.
    pub fn occupancy_series(&self) -> &TimeSeries {
        &self.occupancy
    }

    /// Current occupancy in bytes (valid + pending lines).
    pub fn occupied_bytes(&self) -> usize {
        self.in_use_lines * 64
    }

    fn sample(&mut self, at: Cycle) {
        let bytes = self.occupied_bytes();
        if bytes > self.stats.peak_bytes {
            self.stats.peak_bytes = bytes;
        }
        // Time may not advance between consecutive events; TimeSeries
        // requires monotonic stamps, which Cycle equality satisfies.
        if self.occupancy.last().map(|(t, _)| t <= at).unwrap_or(true) {
            self.occupancy.record(at, bytes as f64);
        }
    }

    /// Allocates a page for destination physical page `dst_page`,
    /// expecting the lines set in `expected_mask` to eventually be
    /// produced and recycled. Returns the scratchpad page index, or
    /// `None` if full (the condition that triggers Force-Recycle).
    pub fn alloc(&mut self, at: Cycle, dst_page: u64, expected_mask: u64) -> Option<usize> {
        assert!(expected_mask != 0, "allocation with no expected lines");
        let idx = self.free_list.pop()?;
        let mut lines = [LineState::Done; LINES_PER_PAGE];
        for (i, l) in lines.iter_mut().enumerate() {
            if expected_mask & (1u64 << i) != 0 {
                *l = LineState::Pending;
            }
        }
        self.pages[idx] = Some(Page {
            dst_page,
            lines,
            data: vec![[0u8; 64]; LINES_PER_PAGE],
            expected_mask,
            recycled: 0,
        });
        self.in_use_lines += expected_mask.count_ones() as usize;
        self.stats.allocs += 1;
        self.sample(at);
        Some(idx)
    }

    /// Shrinks the set of lines an allocation will produce — used by the
    /// Deflate DSA once the compressed size is known (it registered the
    /// full page because the output size was not predetermined, §V-C).
    /// Lines leaving the mask become `Done` immediately.
    ///
    /// # Panics
    ///
    /// Panics if the page is unallocated, `new_mask` is not a subset of
    /// the current mask, or a trimmed line is already valid.
    pub fn set_expected(&mut self, at: Cycle, page: usize, new_mask: u64) {
        // simlint: allow(PANIC-HOT): documented "# Panics" contract, handles only come from alloc()
        let p = self.pages[page].as_mut().expect("allocated page");
        assert_eq!(
            new_mask & !p.expected_mask,
            0,
            "expected lines can only shrink"
        );
        let trimmed_mask = p.expected_mask & !new_mask;
        for i in 0..LINES_PER_PAGE {
            if trimmed_mask & (1u64 << i) != 0 {
                assert_ne!(p.lines[i], LineState::Valid, "trimming a valid line");
                p.lines[i] = LineState::Done;
            }
        }
        p.expected_mask = new_mask;
        self.in_use_lines -= trimmed_mask.count_ones() as usize;
        self.sample(at);
        if self.maybe_free(page) {
            self.sample(at);
        }
    }

    /// Stores a DSA result line, marking it valid.
    ///
    /// # Panics
    ///
    /// Panics if the page is unallocated, the line is out of the expected
    /// range, or the line was already produced.
    pub fn produce(&mut self, page: usize, line: usize, data: [u8; 64]) {
        // simlint: allow(PANIC-HOT): documented "# Panics" contract, handles only come from alloc()
        let p = self.pages[page].as_mut().expect("allocated page");
        assert!(p.expects(line), "line beyond expected output");
        assert_eq!(p.lines[line], LineState::Pending, "line already produced");
        p.lines[line] = LineState::Valid;
        p.data[line] = data;
    }

    /// State of a line in an allocated page.
    pub fn line_state(&self, page: usize, line: usize) -> LineState {
        match &self.pages[page] {
            Some(p) => p.lines[line],
            None => LineState::Done,
        }
    }

    /// Reads a valid line (S10 in Fig. 6: serving a dbuf read from the
    /// Scratchpad).
    ///
    /// # Panics
    ///
    /// Panics if the line is not valid.
    pub fn read(&self, page: usize, line: usize) -> [u8; 64] {
        // simlint: allow(PANIC-HOT): documented "# Panics" contract, handles only come from alloc()
        let p = self.pages[page].as_ref().expect("allocated page");
        assert_eq!(p.lines[line], LineState::Valid, "reading a non-valid line");
        p.data[line]
    }

    /// Recycles a valid line: returns the staged data (to substitute into
    /// the wrCAS) and marks the line done. Returns the page's destination
    /// page and whether the whole page was freed.
    ///
    /// # Panics
    ///
    /// Panics if the line is not valid.
    pub fn recycle(&mut self, at: Cycle, page: usize, line: usize) -> ([u8; 64], bool) {
        // simlint: allow(PANIC-HOT): documented "# Panics" contract, handles only come from alloc()
        let p = self.pages[page].as_mut().expect("allocated page");
        assert_eq!(p.lines[line], LineState::Valid, "recycling non-valid line");
        let data = p.data[line];
        p.lines[line] = LineState::Done;
        p.recycled += 1;
        self.in_use_lines -= 1;
        self.stats.self_recycled_lines += 1;
        let freed = self.maybe_free(page);
        self.sample(at);
        (data, freed)
    }

    fn maybe_free(&mut self, page: usize) -> bool {
        let done = {
            // simlint: allow(PANIC-HOT): documented "# Panics" contract, handles only come from alloc()
            let p = self.pages[page].as_ref().expect("allocated page");
            p.recycled >= p.expected_count()
        };
        if done {
            self.pages[page] = None;
            self.free_list.push(page);
            self.stats.frees += 1;
        }
        done
    }

    /// Unconditionally frees an allocated page, discarding any staged
    /// lines. Used when a destination page is re-registered by a newer
    /// offload before the old one fully recycled (the old staging is
    /// superseded).
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn force_free(&mut self, at: Cycle, page: usize) {
        // simlint: allow(PANIC-HOT): documented "# Panics" contract, handles only come from alloc()
        let p = self.pages[page].take().expect("allocated page");
        let live = (0..LINES_PER_PAGE)
            .filter(|&i| p.expects(i) && p.lines[i] != LineState::Done)
            .count();
        self.in_use_lines -= live;
        self.free_list.push(page);
        self.stats.frees += 1;
        self.sample(at);
    }

    /// Lines of `page` that are still valid (produced but not recycled) —
    /// the addresses Force-Recycle must issue write-requests for.
    pub fn valid_lines(&self, page: usize) -> Vec<usize> {
        match &self.pages[page] {
            Some(p) => (0..LINES_PER_PAGE)
                .filter(|&i| p.lines[i] == LineState::Valid)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Lines of `page` still pending DSA output.
    pub fn pending_lines(&self, page: usize) -> usize {
        match &self.pages[page] {
            Some(p) => (0..LINES_PER_PAGE)
                .filter(|&i| p.lines[i] == LineState::Pending)
                .count(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_produce_recycle_frees_page() {
        let mut sp = Scratchpad::new(4);
        let at = Cycle(0);
        let page = sp.alloc(at, 0x1000, prefix_mask(2)).unwrap();
        assert_eq!(sp.free_pages(), 3);
        sp.produce(page, 0, [1u8; 64]);
        sp.produce(page, 1, [2u8; 64]);
        let (d0, freed) = sp.recycle(Cycle(10), page, 0);
        assert_eq!(d0, [1u8; 64]);
        assert!(!freed);
        let (d1, freed) = sp.recycle(Cycle(20), page, 1);
        assert_eq!(d1, [2u8; 64]);
        assert!(freed);
        assert_eq!(sp.free_pages(), 4);
        assert_eq!(sp.stats().frees, 1);
        assert_eq!(sp.stats().self_recycled_lines, 2);
    }

    #[test]
    fn alloc_exhaustion_returns_none() {
        let mut sp = Scratchpad::new(2);
        assert!(sp.alloc(Cycle(0), 1, prefix_mask(64)).is_some());
        assert!(sp.alloc(Cycle(0), 2, prefix_mask(64)).is_some());
        assert!(sp.alloc(Cycle(0), 3, prefix_mask(64)).is_none());
    }

    #[test]
    fn line_states_progress() {
        let mut sp = Scratchpad::new(1);
        let page = sp.alloc(Cycle(0), 7, prefix_mask(3)).unwrap();
        assert_eq!(sp.line_state(page, 0), LineState::Pending);
        sp.produce(page, 0, [9u8; 64]);
        assert_eq!(sp.line_state(page, 0), LineState::Valid);
        assert_eq!(sp.read(page, 0), [9u8; 64]);
        let _ = sp.recycle(Cycle(1), page, 0);
        assert_eq!(sp.line_state(page, 0), LineState::Done);
    }

    #[test]
    fn set_expected_trims_and_frees() {
        let mut sp = Scratchpad::new(1);
        let page = sp.alloc(Cycle(0), 7, prefix_mask(64)).unwrap();
        sp.produce(page, 0, [1u8; 64]);
        sp.produce(page, 1, [2u8; 64]);
        // Compression finished: only 2 output lines.
        sp.set_expected(Cycle(5), page, prefix_mask(2));
        assert_eq!(sp.occupied_bytes(), 2 * 64);
        let _ = sp.recycle(Cycle(6), page, 0);
        let (_, freed) = sp.recycle(Cycle(7), page, 1);
        assert!(freed);
    }

    #[test]
    fn pending_and_valid_tracking() {
        let mut sp = Scratchpad::new(1);
        let page = sp.alloc(Cycle(0), 7, prefix_mask(4)).unwrap();
        assert_eq!(sp.pending_lines(page), 4);
        sp.produce(page, 2, [0u8; 64]);
        assert_eq!(sp.pending_lines(page), 3);
        assert_eq!(sp.valid_lines(page), vec![2]);
        assert_eq!(sp.pending_pages(), vec![(page, 7)]);
    }

    #[test]
    fn occupancy_series_records_dynamics() {
        let mut sp = Scratchpad::new(8);
        let p = sp.alloc(Cycle(0), 1, prefix_mask(64)).unwrap();
        assert_eq!(sp.occupied_bytes(), 4096);
        for i in 0..64 {
            sp.produce(p, i, [0u8; 64]);
        }
        for i in 0..64 {
            let _ = sp.recycle(Cycle(100 + i as u64), p, i);
        }
        assert_eq!(sp.occupied_bytes(), 0);
        assert!(sp.occupancy_series().len() >= 2);
        assert_eq!(sp.stats().peak_bytes, 4096);
        assert_eq!(sp.occupancy_series().last().unwrap().1, 0.0);
    }

    #[test]
    #[should_panic(expected = "already produced")]
    fn double_produce_rejected() {
        let mut sp = Scratchpad::new(1);
        let page = sp.alloc(Cycle(0), 7, prefix_mask(2)).unwrap();
        sp.produce(page, 0, [0u8; 64]);
        sp.produce(page, 0, [0u8; 64]);
    }

    #[test]
    #[should_panic(expected = "non-valid")]
    fn recycle_pending_rejected() {
        let mut sp = Scratchpad::new(1);
        let page = sp.alloc(Cycle(0), 7, prefix_mask(2)).unwrap();
        let _ = sp.recycle(Cycle(0), page, 0);
    }
}
