//! `smartdimm` implements the paper's contribution: a near-memory
//! processing architecture on the buffer device of a DIMM, plus the
//! CompCpy software API that drives it.
//!
//! The hardware side ([`SmartDimmDevice`]) plugs into a simulated DIMM
//! (`dram::BufferDevice`) and implements the arbiter flowchart of Fig. 6:
//!
//! * a **Bank Table** tracking the active row per bank (updated by
//!   RAS/PRE commands),
//! * an **Addr Remap** step reconstructing physical addresses from
//!   `(row, BG, BA, col)`,
//! * a **Translation Table** — a 3-ary cuckoo hash sized 3× (12 K
//!   entries, < 33 % occupancy) with an 8-entry CAM stash — mapping
//!   physical pages to Scratchpad / Config Memory state,
//! * a **Scratchpad** (8 MB, 2048 × 4 KB pages) holding DSA results until
//!   LLC writebacks recycle them (**Self-Recycle**) or software forces
//!   them out (**Force-Recycle**),
//! * **Config Memory** holding per-offload contexts and result slots,
//! * two **DSAs**: AES-GCM TLS (out-of-order cachelines via precomputed
//!   powers of H) and Deflate compression (the `ulp-compress` hardware
//!   model).
//!
//! The software side ([`CompCpyHost`]) implements Algorithm 2: scratchpad
//! space tracking under a lock, lazy `freePages` refresh over MMIO,
//! Force-Recycle (Algorithm 1), source-buffer flush, page registration,
//! the ordered/unordered copy loop, and the `USE` step.
//!
//! # Example
//!
//! ```
//! use smartdimm::{CompCpyHost, HostConfig, OffloadOp};
//!
//! let mut host = CompCpyHost::new(HostConfig::default());
//! let src = host.alloc_pages(1);
//! let dst = host.alloc_pages(1);
//!
//! // Put a plaintext page in memory.
//! let msg = vec![0x5A; 4096];
//! host.mem_mut().store(src, &msg, 0);
//!
//! // Offload TLS encryption to the DIMM.
//! let key = [7u8; 16];
//! let iv = [9u8; 12];
//! let handle = host
//!     .comp_cpy(dst, src, msg.len(), OffloadOp::TlsEncrypt { key, iv }, false, 0)
//!     .expect("offload accepted");
//! let ciphertext = host.use_buffer(&handle);
//!
//! // The DIMM produced exactly what software AES-GCM would.
//! let gcm = ulp_crypto::gcm::AesGcm::new_128(&key);
//! let (want, tag) = gcm.seal(&iv, b"", &msg);
//! assert_eq!(ciphertext, want);
//! assert_eq!(host.tag(&handle), Some(tag));
//! ```

pub mod areapower;
pub mod banktable;
pub mod compcpy;
pub mod configmem;
pub mod device;
pub mod dsa;
pub mod oracle;
pub mod policy;
pub mod sched;
pub mod scratchpad;
pub mod xlat;

pub use compcpy::{CompCpyError, CompCpyHost, HostConfig, OffloadHandle, QueuePressure};
pub use device::{DeviceStats, SmartDimmConfig, SmartDimmDevice};
pub use dsa::OffloadOp;
pub use oracle::{FaultOracle, Recovery, ScenarioOutcome};
pub use policy::{AdaptivePolicy, Placement};
pub use sched::{PlacementPolicy, SchedConfig, SchedStats};

/// OS page size — the registration granularity (§IV-A).
pub const PAGE: usize = 4096;
/// Cachelines per page.
pub const LINES_PER_PAGE: usize = PAGE / 64;
