//! Config Memory and the MMIO register map (§IV-C).
//!
//! SmartDIMM is configured entirely through 64-byte MMIO accesses to a
//! reserved physical range that the buffer device intercepts (writes are
//! consumed, never reaching the DRAM chips):
//!
//! | offset | dir | contents |
//! |--------|-----|----------|
//! | [`STATUS_OFFSET`] | read | free scratchpad pages, pending-page count, recycle counters |
//! | [`REGISTER_OFFSET`] | write | a [`Registration`] descriptor (one per 4 KB page pair) |
//! | [`CONTEXT_OFFSET`] | write | a [`ContextChunk`] carrying the per-offload context (key, IV, lengths) |
//! | [`RESULT_BASE`]`+ slot*64` | read | a [`ResultSlot`]: status, output length, authentication tag |
//! | [`PENDING_BASE`]`+ i*64` | read | Algorithm 1's pending list: 4 × (dst page addr, valid-line bitmap) |
//!
//! The context for one TLS offload (key, IV, AAD, length) fits one MMIO
//! write, matching the paper's single-64-byte-registration claim; the
//! precomputed powers of H that the paper also stores in Config Memory
//! are generated device-side by the GF multiplier as soon as the
//! registration lands (see `ulp_crypto::ghash::HPowers`).

/// Read-only status register offset.
pub const STATUS_OFFSET: u64 = 0x000;
/// Registration descriptor write offset.
pub const REGISTER_OFFSET: u64 = 0x040;
/// Context chunk write offset.
pub const CONTEXT_OFFSET: u64 = 0x080;
/// Base of the result-slot array (read-only).
pub const RESULT_BASE: u64 = 0x10000;
/// Base of the pending-pages list (read-only).
pub const PENDING_BASE: u64 = 0x20000;
/// Total size of the MMIO config space in bytes.
pub const CONFIG_SPACE_SIZE: u64 = 0x40000;

/// Offload status codes stored in result slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadStatus {
    /// DSA still consuming input.
    InProgress,
    /// Completed successfully.
    Done,
    /// Completed, but the page did not compress below its original size;
    /// the "output" is the raw input (software sends it uncompressed).
    Incompressible,
    /// The DSA hit an error (e.g. a corrupt stream fed to the inflater).
    Error,
    /// A per-channel partial result under memory-channel interleaving
    /// (§V-D): `out_len` is the bytes this DIMM processed and `tag` its
    /// raw GHASH accumulator, to be XOR-combined host-side.
    Partial,
}

impl OffloadStatus {
    fn to_byte(self) -> u8 {
        match self {
            OffloadStatus::InProgress => 0,
            OffloadStatus::Done => 1,
            OffloadStatus::Incompressible => 2,
            OffloadStatus::Error => 3,
            OffloadStatus::Partial => 4,
        }
    }

    fn from_byte(b: u8) -> OffloadStatus {
        match b {
            1 => OffloadStatus::Done,
            2 => OffloadStatus::Incompressible,
            3 => OffloadStatus::Error,
            4 => OffloadStatus::Partial,
            _ => OffloadStatus::InProgress,
        }
    }
}

/// A decoded result slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultSlot {
    /// Completion status.
    pub status: OffloadStatus,
    /// Output length in bytes (for TLS: the message length; for
    /// compression: the compressed size).
    pub out_len: u64,
    /// AES-GCM authentication tag (TLS offloads only; zero otherwise).
    pub tag: [u8; 16],
}

impl ResultSlot {
    /// An empty in-progress slot.
    pub fn empty() -> ResultSlot {
        ResultSlot {
            status: OffloadStatus::InProgress,
            out_len: 0,
            tag: [0u8; 16],
        }
    }

    /// Serializes to the 64-byte MMIO view.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[0] = self.status.to_byte();
        b[8..16].copy_from_slice(&self.out_len.to_le_bytes());
        b[16..32].copy_from_slice(&self.tag);
        b
    }

    /// Parses the 64-byte MMIO view.
    pub fn from_bytes(b: &[u8; 64]) -> ResultSlot {
        ResultSlot {
            status: OffloadStatus::from_byte(b[0]),
            out_len: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            tag: b[16..32].try_into().expect("16 bytes"),
        }
    }
}

/// A page-pair registration descriptor (one 64-byte MMIO write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registration {
    /// Software-assigned offload id (also selects the result slot).
    pub offload_id: u64,
    /// Page-aligned physical address of the source page.
    pub src_page_addr: u64,
    /// Page-aligned physical address of the destination page.
    pub dst_page_addr: u64,
    /// Byte offset of this page within the offload's message.
    pub msg_offset: u64,
}

impl Registration {
    /// Serializes to the 64-byte MMIO payload.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[0..8].copy_from_slice(&self.offload_id.to_le_bytes());
        b[8..16].copy_from_slice(&self.src_page_addr.to_le_bytes());
        b[16..24].copy_from_slice(&self.dst_page_addr.to_le_bytes());
        b[24..32].copy_from_slice(&self.msg_offset.to_le_bytes());
        b
    }

    /// Parses the 64-byte MMIO payload.
    pub fn from_bytes(b: &[u8; 64]) -> Registration {
        Registration {
            offload_id: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            src_page_addr: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            dst_page_addr: u64::from_le_bytes(b[16..24].try_into().expect("8 bytes")),
            msg_offset: u64::from_le_bytes(b[24..32].try_into().expect("8 bytes")),
        }
    }
}

/// A per-offload context chunk (one 64-byte MMIO write).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextChunk {
    /// Offload this context belongs to.
    pub offload_id: u64,
    /// Opaque context payload (the DSA layer defines the encoding).
    pub payload: [u8; 48],
}

impl ContextChunk {
    /// Serializes to the 64-byte MMIO payload.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[0..8].copy_from_slice(&self.offload_id.to_le_bytes());
        b[16..64].copy_from_slice(&self.payload);
        b
    }

    /// Parses the 64-byte MMIO payload.
    pub fn from_bytes(b: &[u8; 64]) -> ContextChunk {
        ContextChunk {
            offload_id: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            payload: b[16..64].try_into().expect("48 bytes"),
        }
    }
}

/// One pending-list record: a destination page still holding valid
/// Scratchpad lines, with the bitmap of those lines. Four records fit one
/// 64-byte MMIO read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRecord {
    /// Page-aligned physical address of the destination page.
    pub dst_page_addr: u64,
    /// Bit `i` set = line `i` is valid (produced, awaiting recycle).
    pub valid_bitmap: u64,
}

/// Packs up to four pending records into one MMIO line.
pub fn pack_pending(records: &[PendingRecord]) -> [u8; 64] {
    assert!(records.len() <= 4, "four records per MMIO line");
    let mut b = [0u8; 64];
    for (i, r) in records.iter().enumerate() {
        b[i * 16..i * 16 + 8].copy_from_slice(&r.dst_page_addr.to_le_bytes());
        b[i * 16 + 8..i * 16 + 16].copy_from_slice(&r.valid_bitmap.to_le_bytes());
    }
    b
}

/// Unpacks the records of one MMIO line (addresses of 0 terminate).
pub fn unpack_pending(b: &[u8; 64]) -> Vec<PendingRecord> {
    let mut out = Vec::new();
    for i in 0..4 {
        let addr = u64::from_le_bytes(b[i * 16..i * 16 + 8].try_into().expect("8 bytes"));
        if addr == 0 {
            break;
        }
        let bitmap = u64::from_le_bytes(b[i * 16 + 8..i * 16 + 16].try_into().expect("8 bytes"));
        out.push(PendingRecord {
            dst_page_addr: addr,
            valid_bitmap: bitmap,
        });
    }
    out
}

/// Decoded status register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatusReg {
    /// Free scratchpad pages (`SmartDIMMConfig[0]` in Algorithm 2).
    pub free_pages: u64,
    /// Allocated (pending) scratchpad pages.
    pub pending_pages: u64,
    /// Total lines self-recycled so far.
    pub self_recycled: u64,
    /// Total premature writebacks ignored (S7 events).
    pub ignored_writebacks: u64,
}

impl StatusReg {
    /// Serializes to the 64-byte MMIO view.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[0..8].copy_from_slice(&self.free_pages.to_le_bytes());
        b[8..16].copy_from_slice(&self.pending_pages.to_le_bytes());
        b[16..24].copy_from_slice(&self.self_recycled.to_le_bytes());
        b[24..32].copy_from_slice(&self.ignored_writebacks.to_le_bytes());
        b
    }

    /// Parses the 64-byte MMIO view.
    pub fn from_bytes(b: &[u8; 64]) -> StatusReg {
        StatusReg {
            free_pages: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            pending_pages: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            self_recycled: u64::from_le_bytes(b[16..24].try_into().expect("8 bytes")),
            ignored_writebacks: u64::from_le_bytes(b[24..32].try_into().expect("8 bytes")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_round_trip() {
        let r = Registration {
            offload_id: 77,
            src_page_addr: 0x1000,
            dst_page_addr: 0x5000,
            msg_offset: 8192,
        };
        assert_eq!(Registration::from_bytes(&r.to_bytes()), r);
    }

    #[test]
    fn context_round_trip() {
        let c = ContextChunk {
            offload_id: 3,
            payload: [0xAB; 48],
        };
        assert_eq!(ContextChunk::from_bytes(&c.to_bytes()), c);
    }

    #[test]
    fn result_round_trip() {
        let r = ResultSlot {
            status: OffloadStatus::Incompressible,
            out_len: 4096,
            tag: [5u8; 16],
        };
        assert_eq!(ResultSlot::from_bytes(&r.to_bytes()), r);
        assert_eq!(ResultSlot::empty().status, OffloadStatus::InProgress);
    }

    #[test]
    fn status_reg_round_trip() {
        let s = StatusReg {
            free_pages: 2048,
            pending_pages: 3,
            self_recycled: 999,
            ignored_writebacks: 7,
        };
        assert_eq!(StatusReg::from_bytes(&s.to_bytes()), s);
    }

    #[test]
    fn pending_pack_unpack() {
        let records = vec![
            PendingRecord {
                dst_page_addr: 0x4000,
                valid_bitmap: 0b1011,
            },
            PendingRecord {
                dst_page_addr: 0x9000,
                valid_bitmap: u64::MAX,
            },
        ];
        let packed = pack_pending(&records);
        assert_eq!(unpack_pending(&packed), records);
        assert!(unpack_pending(&[0u8; 64]).is_empty());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn mmio_regions_do_not_overlap() {
        assert!(REGISTER_OFFSET >= STATUS_OFFSET + 64);
        assert!(CONTEXT_OFFSET >= REGISTER_OFFSET + 64);
        assert!(RESULT_BASE >= CONTEXT_OFFSET + 64);
        assert!(PENDING_BASE >= RESULT_BASE + 64 * 1024);
        assert!(CONFIG_SPACE_SIZE >= PENDING_BASE + 64 * 512);
    }
}
