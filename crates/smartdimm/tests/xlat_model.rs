//! Model-based tests for the Translation Table: a `HashMap` plays the
//! reference model while random insert/remove/lookup sequences run
//! against the 3-ary cuckoo table — including a deliberately tiny table
//! where the CAM stash overflows and insertions fail with `TableFull`.
//!
//! The atomicity property matters to the fault-injection suite: a failed
//! insert must leave the table exactly as it was, or the CompCpy
//! registration rollback leaks entries whose offload never existed
//! (observed as a `stage_outputs` panic under translation pressure).

use proptest::prelude::*;
use smartdimm::xlat::{Mapping, TranslationTable};

fn src(offload: u64) -> Mapping {
    Mapping::Source {
        offload,
        msg_offset: 0,
    }
}

fn dst(offload: u64, scratch_page: usize) -> Mapping {
    Mapping::Dest {
        offload,
        msg_offset: 0,
        scratch_page,
    }
}

/// Sorted snapshot of every page resident in the table.
fn snapshot(t: &TranslationTable) -> Vec<u64> {
    let mut pages = t.pages();
    pages.sort_unstable();
    pages
}

proptest! {
    #[test]
    fn prop_small_table_matches_model_through_failures(
        ops in proptest::collection::vec((0u64..64, 0u64..4), 1..300),
    ) {
        // 12 slots + 2-entry stash: dense enough that TableFull really
        // happens. The model only records inserts the table accepted.
        use std::collections::HashMap;
        let mut t = TranslationTable::new(12, 2);
        let mut model: HashMap<u64, Mapping> = HashMap::new();
        for (page, op) in ops {
            match op {
                0 => {
                    let m = src(page + 1000);
                    let before = snapshot(&t);
                    match t.insert(page, m) {
                        Ok(()) => { model.insert(page, m); }
                        Err(_) => {
                            // Atomicity: a failed insert changes nothing.
                            prop_assert_eq!(snapshot(&t), before);
                        }
                    }
                }
                1 => {
                    let m = dst(page + 2000, (page % 8) as usize);
                    let before = snapshot(&t);
                    match t.insert(page, m) {
                        Ok(()) => { model.insert(page, m); }
                        Err(_) => {
                            prop_assert_eq!(snapshot(&t), before);
                        }
                    }
                }
                2 => {
                    prop_assert_eq!(t.remove(page), model.remove(&page));
                }
                _ => {
                    prop_assert_eq!(t.lookup(page), model.get(&page).copied());
                }
            }
            prop_assert_eq!(t.len(), model.len());
        }
        // Every model entry is still findable without mutation.
        for (page, mapping) in &model {
            prop_assert_eq!(t.peek(*page), Some(*mapping));
        }
    }

    #[test]
    fn prop_below_third_occupancy_inserts_never_fail(
        seed_pages in proptest::collection::vec(any::<u64>(), 1..96),
    ) {
        // The paper sizes the table 3x so sub-33% occupancy effectively
        // never fails; with the 8-entry stash that is a hard guarantee
        // at this scale.
        let mut t = TranslationTable::new(300, 8);
        let mut unique = seed_pages;
        unique.sort_unstable();
        unique.dedup();
        for &page in &unique {
            prop_assert!(t.insert(page, src(page)).is_ok(), "insert of {page} failed below bound");
        }
        prop_assert!(t.occupancy() < 0.33);
        for &page in &unique {
            prop_assert_eq!(t.peek(page), Some(src(page)));
        }
    }
}

#[test]
fn stash_overflow_reports_table_full() {
    // 3 slots + 2-entry stash = at most 5 resident entries; the 6th
    // insert (of distinct pages) must fail with TableFull.
    let mut t = TranslationTable::new(3, 2);
    let mut inserted = Vec::new();
    let mut failed_at = None;
    for page in 0..32u64 {
        match t.insert(page, src(page)) {
            Ok(()) => inserted.push(page),
            Err(e) => {
                assert_eq!(e.to_string(), "translation table and CAM stash are full");
                failed_at = Some(page);
                break;
            }
        }
    }
    let failed_at = failed_at.expect("a 5-entry structure cannot hold 32 pages");
    assert!(
        inserted.len() <= 5,
        "{} entries in 5 places",
        inserted.len()
    );
    assert!(t.stats().failures >= 1);
    assert!(t.stats().stash_spills >= 1, "the stash was never exercised");
    // The failed insert left every prior entry intact and findable.
    for &page in &inserted {
        assert_eq!(t.peek(page), Some(src(page)), "page {page} lost on failure");
    }
    assert_eq!(t.peek(failed_at), None, "failed insert left a residue");
    assert_eq!(t.len(), inserted.len());
}

#[test]
fn failed_insert_unwinds_displacement_chain() {
    // Regression for the cuckoo unwind: fill a stash-less table until an
    // insert fails, then verify no resident entry was swapped out by the
    // abandoned displacement chain.
    let mut t = TranslationTable::new(9, 0);
    let mut resident = Vec::new();
    let mut probe = 0u64;
    while t.insert(probe, src(probe)).is_ok() {
        resident.push(probe);
        probe += 1;
        assert!(probe < 10_000, "table never filled");
    }
    for &page in &resident {
        assert_eq!(
            t.peek(page),
            Some(src(page)),
            "page {page} evicted by a failed insert's displacement chain"
        );
    }
    assert_eq!(t.peek(probe), None);
    assert_eq!(t.len(), resident.len());
}
