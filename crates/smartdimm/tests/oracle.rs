//! Randomized oracle testing: arbitrary interleaved sequences of
//! offloads — TLS encrypt/decrypt, compress, decompress, mixed sizes,
//! buffer reuse, tiny scratchpads — must always produce exactly what the
//! software implementations produce.

use proptest::prelude::*;
use smartdimm::{CompCpyHost, HostConfig, OffloadOp};
use ulp_crypto::gcm::AesGcm;

#[derive(Debug, Clone)]
enum Op {
    TlsEncrypt { size: usize, seed: u64 },
    TlsDecrypt { size: usize, seed: u64 },
    Compress { size: usize, seed: u64, kind: u8 },
    Decompress { seed: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (64usize..12_000, any::<u64>()).prop_map(|(size, seed)| Op::TlsEncrypt { size, seed }),
        (64usize..12_000, any::<u64>()).prop_map(|(size, seed)| Op::TlsDecrypt { size, seed }),
        (64usize..4096, any::<u64>(), 0u8..3).prop_map(|(size, seed, kind)| Op::Compress {
            size,
            seed,
            kind
        }),
        any::<u64>().prop_map(|seed| Op::Decompress { seed }),
    ]
}

fn content(kind: u8, size: usize, seed: u64) -> Vec<u8> {
    match kind {
        0 => ulp_compress::corpus::text(size, seed),
        1 => ulp_compress::corpus::html(size, seed),
        _ => ulp_compress::corpus::random(size, seed),
    }
}

fn run_sequence(host: &mut CompCpyHost, ops: &[Op]) {
    let key = [0xC3u8; 16];
    for (i, op) in ops.iter().enumerate() {
        let iv = {
            let mut iv = [0u8; 12];
            iv[..8].copy_from_slice(&(i as u64 + 1).to_le_bytes());
            iv
        };
        match op {
            Op::TlsEncrypt { size, seed } => {
                let msg = content(0, *size, *seed);
                let pages = size.div_ceil(4096);
                let src = host.alloc_pages(pages);
                let dst = host.alloc_pages(pages);
                host.mem_mut().store(src, &msg, 0);
                let handle = host
                    .comp_cpy(dst, src, *size, OffloadOp::TlsEncrypt { key, iv }, false, 0)
                    .expect("accepted");
                let ct = host.use_buffer(&handle);
                let (want, want_tag) = AesGcm::new_128(&key).seal(&iv, b"", &msg);
                assert_eq!(ct, want, "op {i}: {op:?}");
                assert_eq!(host.tag(&handle), Some(want_tag), "op {i} tag");
            }
            Op::TlsDecrypt { size, seed } => {
                let msg = content(1, *size, *seed);
                let (ct, _) = AesGcm::new_128(&key).seal(&iv, b"", &msg);
                let pages = size.div_ceil(4096);
                let src = host.alloc_pages(pages);
                let dst = host.alloc_pages(pages);
                host.mem_mut().store(src, &ct, 0);
                let handle = host
                    .comp_cpy(
                        dst,
                        src,
                        ct.len(),
                        OffloadOp::TlsDecrypt { key, iv },
                        false,
                        0,
                    )
                    .expect("accepted");
                assert_eq!(host.use_buffer(&handle), msg, "op {i}: {op:?}");
            }
            Op::Compress { size, seed, kind } => {
                let page = content(*kind, *size, *seed);
                let src = host.alloc_pages(1);
                let dst = host.alloc_pages(1);
                host.mem_mut().store(src, &page, 0);
                let handle = host
                    .comp_cpy(dst, src, page.len(), OffloadOp::Compress, true, 0)
                    .expect("accepted");
                let out = host.use_buffer(&handle);
                // Either a valid deflate stream or the raw fallback.
                if out.len() == page.len() {
                    let roundtrip = ulp_compress::inflate::decompress(&out)
                        .map(|d| d == page)
                        .unwrap_or(false);
                    assert!(roundtrip || out == page, "op {i}: {op:?}");
                } else {
                    assert_eq!(
                        ulp_compress::inflate::decompress(&out).expect("deflate"),
                        page,
                        "op {i}: {op:?}"
                    );
                }
            }
            Op::Decompress { seed } => {
                let page = content(1, 4096, *seed);
                let compressed = ulp_compress::deflate::compress(&page);
                if compressed.len() > 4096 {
                    continue;
                }
                let src = host.alloc_pages(1);
                let dst = host.alloc_pages(1);
                host.mem_mut().store(src, &compressed, 0);
                let handle = host
                    .comp_cpy(dst, src, compressed.len(), OffloadOp::Decompress, true, 0)
                    .expect("accepted");
                assert_eq!(host.use_buffer(&handle), page, "op {i}: {op:?}");
            }
        }
    }
}

/// Differential oracle for the batched CompCpy fast path: the same
/// offload sequence through a batching host and a per-line host must
/// feed the DSAs identically and produce software-identical bytes
/// (`run_sequence` asserts every output against the software oracles).
#[test]
fn batched_page_feeds_match_per_line_feeds() {
    let ops = vec![
        Op::TlsEncrypt {
            size: 8192,
            seed: 1,
        },
        Op::TlsDecrypt {
            size: 12_000,
            seed: 2,
        },
        Op::Compress {
            size: 4096,
            seed: 3,
            kind: 0,
        },
        Op::Decompress { seed: 4 },
        Op::TlsEncrypt {
            size: 4096,
            seed: 5,
        },
    ];
    let mut batched = CompCpyHost::new(HostConfig::default());
    let mut cfg = HostConfig::default();
    cfg.mem.batch_page_copy = false;
    let mut per_line = CompCpyHost::new(cfg);
    run_sequence(&mut batched, &ops);
    run_sequence(&mut per_line, &ops);

    let bs = batched.device_stats();
    let ps = per_line.device_stats();
    assert!(bs.page_feeds > 0, "batched page protocol engaged");
    assert_eq!(ps.page_feeds, 0, "per-line host must not batch");
    // The exact same source lines reach the DSAs either way.
    assert_eq!(bs.dsa_lines, ps.dsa_lines);
    assert_eq!(bs.offloads_completed, ps.offloads_completed);
    assert_eq!(bs.orphan_lines, ps.orphan_lines);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_offload_sequences_match_software(
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let mut host = CompCpyHost::new(HostConfig::default());
        run_sequence(&mut host, &ops);
    }

    #[test]
    fn random_sequences_survive_tiny_scratchpad(
        ops in proptest::collection::vec(op_strategy(), 1..8),
        scratch_pages in 6usize..32,
    ) {
        // A starved scratchpad exercises Force-Recycle mid-sequence.
        let mut cfg = HostConfig::default();
        cfg.dimm.scratchpad_pages = scratch_pages;
        let mut host = CompCpyHost::new(cfg);
        run_sequence(&mut host, &ops);
    }

    #[test]
    fn random_sequences_under_contended_llc(
        ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let mut cfg = HostConfig::default();
        cfg.mem.llc = Some(cache::CacheConfig::kb(128, 8));
        let mut host = CompCpyHost::new(cfg);
        run_sequence(&mut host, &ops);
    }
}
