//! Hierarchical metrics registry and deterministic JSON snapshots.
//!
//! Every figure in the paper's evaluation is a story told through
//! counters — RPS, CPU utilization, memory bandwidth, slack histograms,
//! scratchpad occupancy (Figs. 10–12, Table I). Before this module those
//! counters were ad-hoc struct fields scattered across eight crates with
//! no single way to snapshot, diff or export them. [`Registry`] is that
//! single way: a tree of [`Scope`]s, each holding named metrics, rendered
//! by [`Registry::snapshot`] into a stable-ordered JSON document
//! (schema [`SCHEMA`] = `telemetry/v1`).
//!
//! Handles are live and shared: [`CounterHandle`] / [`GaugeHandle`] can
//! be registered once and bumped from the hot path without re-walking
//! the tree, while components that already aggregate their own
//! statistics (e.g. `DramStats`, `CacheStats`, `DeviceStats`) export
//! them with the `set_*` methods at snapshot time. Both styles meet in
//! the same tree. The cells behind the handles are
//! [`crate::par::Shared`] — the `THREAD-DET` doorway wrapper — so a
//! whole [`Scope`] is `Send` and a parallel sweep (`simkit::par`) can
//! build per-entry scopes on worker threads and mount them into one
//! registry in deterministic input order.
//!
//! Determinism contract: two runs with the same seeds must produce
//! **byte-identical** snapshots. Everything that renders is ordered by
//! `BTreeMap`, floats use Rust's shortest-roundtrip formatting, and
//! non-finite values render as `null` (a degenerate rate must never
//! poison a report).
//!
//! # Example
//!
//! ```
//! use simkit::telemetry::Registry;
//!
//! let mut reg = Registry::new();
//! let reqs = reg.scope("server").counter("requests");
//! reqs.add(3);
//! reg.scope("server.llc").set_gauge("miss_rate", 0.25);
//! let doc = reg.snapshot();
//! assert!(doc.starts_with("{\n  \"schema\": \"telemetry/v1\""));
//! assert!(doc.contains("\"requests\""));
//! ```

use std::collections::BTreeMap;

use crate::par::Shared;
use crate::stats::{Histogram, TimeSeries};

/// Schema identifier stamped into every snapshot document.
pub const SCHEMA: &str = "telemetry/v1";

/// A live, shared handle to a registered counter.
///
/// Cloning is cheap (reference-counted); all clones observe the same
/// value, and [`Registry::snapshot`] reads through the shared cell.
#[derive(Debug, Clone)]
pub struct CounterHandle(Shared<u64>);

impl CounterHandle {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.with(|v| *v += 1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.with(|v| *v += n);
    }

    /// Overwrites the value (used when mirroring an externally
    /// maintained counter into the tree).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.with(|c| *c = v);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.with(|v| *v)
    }
}

/// A live, shared handle to a registered gauge (an instantaneous `f64`).
#[derive(Debug, Clone)]
pub struct GaugeHandle(Shared<f64>);

impl GaugeHandle {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.with(|c| *c = v);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.0.with(|v| *v)
    }
}

/// A rendered-at-registration summary of a [`Histogram`]: count, moments
/// and the quantiles the paper's figures actually report.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Sample count.
    pub count: u64,
    /// Exact mean.
    pub mean: f64,
    /// Smallest sample, if any.
    pub min: Option<u64>,
    /// Largest sample, if any.
    pub max: Option<u64>,
    /// Samples beyond the last bucket.
    pub overflow: u64,
    /// Median (bucket-resolved), if non-empty.
    pub p50: Option<u64>,
    /// 99th percentile (bucket-resolved), if non-empty.
    pub p99: Option<u64>,
    /// 99.9th percentile (bucket-resolved), if non-empty.
    pub p999: Option<u64>,
    /// Whether the sample count is large enough for `p999` to be
    /// distinguishable from `max` (`count ≥ 1000`); a small-sample p999
    /// silently aliases the maximum and must not be read as a measured
    /// tail (see [`crate::stats::QuantileEstimate`]).
    pub p999_resolvable: bool,
}

impl HistogramSnapshot {
    /// Summarizes a histogram.
    pub fn of(h: &Histogram) -> HistogramSnapshot {
        let p999 = h.quantile_est(0.999);
        HistogramSnapshot {
            count: h.count(),
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            overflow: h.overflow(),
            p50: h.quantile(0.5),
            p99: h.quantile(0.99),
            p999: p999.map(|e| e.value),
            p999_resolvable: p999.is_some_and(|e| e.resolvable),
        }
    }
}

/// A rendered-at-registration summary of a [`TimeSeries`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesSnapshot {
    /// Number of points.
    pub len: u64,
    /// Last recorded `(time, value)` point, if any.
    pub last: Option<(u64, f64)>,
    /// Maximum value seen, if any.
    pub max_value: Option<f64>,
    /// Mean over the final quarter of points (steady state), 0.0 if empty.
    pub tail_mean: f64,
}

impl TimeSeriesSnapshot {
    /// Summarizes a time series.
    pub fn of(ts: &TimeSeries) -> TimeSeriesSnapshot {
        TimeSeriesSnapshot {
            len: ts.len() as u64,
            last: ts.last().map(|(t, v)| (t.raw(), v)),
            max_value: ts.max_value(),
            tail_mean: if ts.is_empty() {
                0.0
            } else {
                ts.tail_mean(0.25)
            },
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Shared<u64>),
    Gauge(Shared<f64>),
    Histogram(HistogramSnapshot),
    TimeSeries(TimeSeriesSnapshot),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::TimeSeries(_) => "time_series",
        }
    }
}

/// One node in the registry tree: named metrics plus named child scopes.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    metrics: BTreeMap<String, Metric>,
    children: BTreeMap<String, Scope>,
}

impl Scope {
    /// Returns (creating on first use) the child scope `name`. Dots are
    /// path separators, so `scope("a.b")` is `scope("a").scope("b")`.
    pub fn scope(&mut self, name: &str) -> &mut Scope {
        let mut cur = self;
        for seg in name.split('.') {
            assert!(!seg.is_empty(), "empty scope segment in {name:?}");
            cur = cur.children.entry(seg.to_string()).or_default();
        }
        cur
    }

    /// Registers (or retrieves) the counter `name` and returns a live
    /// handle to it.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> CounterHandle {
        let metric = self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Shared::new(0)));
        match metric {
            Metric::Counter(cell) => CounterHandle(cell.clone()),
            // simlint: allow(PANIC-REACH): documented "# Panics" contract; a kind mismatch is a registration bug the suite must surface loudly
            other => panic!("{name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Registers (or retrieves) the gauge `name` and returns a live
    /// handle to it.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &str) -> GaugeHandle {
        let metric = self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Shared::new(0.0)));
        match metric {
            Metric::Gauge(cell) => GaugeHandle(cell.clone()),
            other => panic!("{name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Sets counter `name` to `v` (registering it if needed) — the
    /// export-time mirror of an externally maintained stat field.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counter(name).set(v);
    }

    /// Sets gauge `name` to `v` (registering it if needed).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Registers (or replaces) a histogram summary under `name`.
    pub fn set_histogram(&mut self, name: &str, h: &Histogram) {
        self.metrics.insert(
            name.to_string(),
            Metric::Histogram(HistogramSnapshot::of(h)),
        );
    }

    /// Registers (or replaces) a time-series summary under `name`.
    pub fn set_time_series(&mut self, name: &str, ts: &TimeSeries) {
        self.metrics.insert(
            name.to_string(),
            Metric::TimeSeries(TimeSeriesSnapshot::of(ts)),
        );
    }

    /// Number of metrics registered directly in this scope.
    pub fn metric_count(&self) -> usize {
        self.metrics.len()
    }

    /// Total metrics in this scope and every descendant.
    pub fn metric_count_recursive(&self) -> usize {
        self.metrics.len()
            + self
                .children
                .values()
                .map(Scope::metric_count_recursive)
                .sum::<usize>()
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        out.push_str("{\n");
        let mut first = true;
        if !self.metrics.is_empty() {
            out.push_str(&inner);
            out.push_str("\"metrics\": ");
            render_metric_map(out, &self.metrics, indent + 1);
            first = false;
        }
        if !self.children.is_empty() {
            if !first {
                out.push_str(",\n");
            }
            out.push_str(&inner);
            out.push_str("\"scopes\": ");
            render_scope_map(out, &self.children, indent + 1);
            first = false;
        }
        if !first {
            out.push('\n');
            out.push_str(&pad);
        }
        out.push('}');
    }
}

/// The root of the telemetry tree.
///
/// See the [module docs](self) for the design; see
/// [`Registry::snapshot`] for the output format.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    root: Scope,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns (creating on first use) the scope at dot-separated `path`,
    /// e.g. `"server.https_smartdimm.dram"`.
    pub fn scope(&mut self, path: &str) -> &mut Scope {
        self.root.scope(path)
    }

    /// The root scope itself.
    pub fn root(&mut self) -> &mut Scope {
        &mut self.root
    }

    /// Total metrics registered across the whole tree.
    pub fn metric_count(&self) -> usize {
        self.root.metric_count_recursive()
    }

    /// Renders the whole tree as a stable-ordered JSON document:
    ///
    /// ```json
    /// {
    ///   "schema": "telemetry/v1",
    ///   "scopes": {
    ///     "dram": { "metrics": { "rd_cas": { "kind": "counter", "value": 7 } } }
    ///   }
    /// }
    /// ```
    ///
    /// Scopes and metrics render in lexicographic order; same-seed runs
    /// produce byte-identical documents.
    pub fn snapshot(&self) -> String {
        let mut out = String::from("{\n  \"schema\": ");
        push_json_string(&mut out, SCHEMA);
        if !self.root.metrics.is_empty() {
            // Metrics registered directly on the root (rare).
            out.push_str(",\n  \"metrics\": ");
            render_metric_map(&mut out, &self.root.metrics, 1);
        }
        out.push_str(",\n  \"scopes\": ");
        // Top-level scopes render directly at `scopes.<name>` — the root
        // scope itself has no name and adds no nesting level.
        render_scope_map(&mut out, &self.root.children, 1);
        out.push_str("\n}");
        out
    }
}

fn render_metric_map(out: &mut String, metrics: &BTreeMap<String, Metric>, indent: usize) {
    if metrics.is_empty() {
        out.push_str("{}");
        return;
    }
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    out.push_str("{\n");
    for (i, (name, metric)) in metrics.iter().enumerate() {
        out.push_str(&inner);
        push_json_string(out, name);
        out.push_str(": ");
        render_metric(out, metric, indent + 1);
        if i + 1 < metrics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&pad);
    out.push('}');
}

fn render_scope_map(out: &mut String, scopes: &BTreeMap<String, Scope>, indent: usize) {
    if scopes.is_empty() {
        out.push_str("{}");
        return;
    }
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    out.push_str("{\n");
    for (i, (name, child)) in scopes.iter().enumerate() {
        out.push_str(&inner);
        push_json_string(out, name);
        out.push_str(": ");
        child.render_into(out, indent + 1);
        if i + 1 < scopes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&pad);
    out.push('}');
}

fn render_metric(out: &mut String, metric: &Metric, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match metric {
        Metric::Counter(cell) => {
            out.push_str(&format!(
                "{{ \"kind\": \"counter\", \"value\": {} }}",
                cell.with(|v| *v)
            ));
        }
        Metric::Gauge(cell) => {
            out.push_str("{ \"kind\": \"gauge\", \"value\": ");
            push_f64(out, cell.with(|v| *v));
            out.push_str(" }");
        }
        Metric::Histogram(h) => {
            out.push_str("{\n");
            out.push_str(&inner);
            out.push_str(&format!(
                "\"kind\": \"histogram\", \"count\": {},\n",
                h.count
            ));
            out.push_str(&inner);
            out.push_str("\"mean\": ");
            push_f64(out, h.mean);
            out.push_str(", \"min\": ");
            push_opt_u64(out, h.min);
            out.push_str(", \"max\": ");
            push_opt_u64(out, h.max);
            out.push_str(",\n");
            out.push_str(&inner);
            out.push_str(&format!("\"overflow\": {}, \"p50\": ", h.overflow));
            push_opt_u64(out, h.p50);
            out.push_str(", \"p99\": ");
            push_opt_u64(out, h.p99);
            out.push_str(", \"p999\": ");
            push_opt_u64(out, h.p999);
            out.push_str(&format!(", \"p999_resolvable\": {}", h.p999_resolvable));
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        Metric::TimeSeries(ts) => {
            out.push_str("{\n");
            out.push_str(&inner);
            out.push_str(&format!(
                "\"kind\": \"time_series\", \"len\": {},\n",
                ts.len
            ));
            out.push_str(&inner);
            out.push_str("\"last_t\": ");
            match ts.last {
                Some((t, _)) => out.push_str(&t.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(", \"last_value\": ");
            match ts.last {
                Some((_, v)) => push_f64(out, v),
                None => out.push_str("null"),
            }
            out.push_str(", \"max_value\": ");
            match ts.max_value {
                Some(v) => push_f64(out, v),
                None => out.push_str("null"),
            }
            out.push_str(", \"tail_mean\": ");
            push_f64(out, ts.tail_mean);
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => out.push_str(&v.to_string()),
        None => out.push_str("null"),
    }
}

/// Deterministic float rendering: shortest roundtrip for finite values,
/// `null` for NaN/infinities (JSON has no spelling for them, and a
/// degenerate rate must not make the whole document unparseable).
fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cycle;

    #[test]
    fn counter_handles_are_shared() {
        let mut reg = Registry::new();
        let a = reg.scope("x").counter("hits");
        let b = reg.scope("x").counter("hits");
        a.inc();
        b.add(4);
        assert_eq!(a.value(), 5);
        assert!(reg.snapshot().contains("\"value\": 5"));
    }

    #[test]
    fn set_counter_mirrors_external_values() {
        let mut reg = Registry::new();
        reg.scope("dram").set_counter("rd_cas", 42);
        reg.scope("dram").set_counter("rd_cas", 43); // overwrite
        assert!(reg.snapshot().contains("\"value\": 43"));
    }

    #[test]
    fn gauge_non_finite_renders_null() {
        let mut reg = Registry::new();
        reg.scope("x").set_gauge("rate", f64::NAN);
        reg.scope("x").set_gauge("inf", f64::INFINITY);
        let doc = reg.snapshot();
        assert!(doc.contains("\"rate\": { \"kind\": \"gauge\", \"value\": null }"));
        assert!(doc.contains("\"inf\": { \"kind\": \"gauge\", \"value\": null }"));
    }

    #[test]
    fn histogram_and_time_series_summaries() {
        let mut reg = Registry::new();
        let mut h = Histogram::new("lat", 10, 10);
        for v in [1, 5, 25, 99] {
            h.record(v);
        }
        let mut ts = TimeSeries::new("occ");
        ts.record(Cycle(0), 1.0);
        ts.record(Cycle(10), 3.0);
        reg.scope("dev").set_histogram("slack", &h);
        reg.scope("dev").set_time_series("occupancy", &ts);
        let doc = reg.snapshot();
        assert!(doc.contains("\"kind\": \"histogram\", \"count\": 4"));
        assert!(doc.contains("\"kind\": \"time_series\", \"len\": 2"));
        assert!(doc.contains("\"last_t\": 10, \"last_value\": 3"));
        // 4 samples: p999 renders but is flagged as unresolvable.
        assert!(doc.contains("\"p999\": 99, \"p999_resolvable\": false"));
    }

    #[test]
    fn histogram_p999_resolvable_with_enough_samples() {
        let mut reg = Registry::new();
        let mut h = Histogram::new("lat", 1, 2000);
        for v in 0..1000 {
            h.record(v);
        }
        reg.scope("dev").set_histogram("slack", &h);
        let doc = reg.snapshot();
        assert!(doc.contains("\"p999\": 999, \"p999_resolvable\": true"));
    }

    #[test]
    fn scopes_nest_and_paths_split_on_dots() {
        let mut reg = Registry::new();
        reg.scope("a.b.c").set_counter("n", 1);
        reg.scope("a").scope("b").scope("c").set_counter("m", 2);
        assert_eq!(reg.metric_count(), 2);
        let doc = reg.snapshot();
        let a = doc.find("\"a\"").expect("scope a");
        let b = doc[a..].find("\"b\"").expect("scope b nested");
        assert!(doc[a + b..].contains("\"c\""));
    }

    #[test]
    fn snapshot_is_stable_ordered_and_deterministic() {
        let build = || {
            let mut reg = Registry::new();
            // Insert in non-lexicographic order on purpose.
            reg.scope("zeta").set_counter("z", 1);
            reg.scope("alpha").set_counter("a", 2);
            reg.scope("alpha").set_gauge("ratio", 0.125);
            reg.scope("middle.inner").set_counter("m", 3);
            reg.snapshot()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same construction, byte-identical snapshots");
        let alpha = a.find("\"alpha\"").expect("alpha");
        let middle = a.find("\"middle\"").expect("middle");
        let zeta = a.find("\"zeta\"").expect("zeta");
        assert!(alpha < middle && middle < zeta, "lexicographic scope order");
    }

    #[test]
    fn empty_registry_renders_minimal_document() {
        let reg = Registry::new();
        assert_eq!(
            reg.snapshot(),
            "{\n  \"schema\": \"telemetry/v1\",\n  \"scopes\": {}\n}"
        );
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let mut reg = Registry::new();
        reg.scope("x").set_gauge("v", 1.0);
        let _ = reg.scope("x").counter("v");
    }
}
