//! The sanctioned threading doorway (`THREAD-DET`).
//!
//! Live sim code must not name `std::thread`/`Mutex`/`Atomic*`/channel
//! primitives directly — scheduler-dependent event order breaks the
//! byte-determinism every differential suite relies on. This module is
//! the one place allowed to own such primitives (mirroring the
//! `simkit::timer` wall-clock doorway for `DET-NOW`), so that when the
//! per-channel shards go parallel (ROADMAP item 3) every cross-thread
//! interaction is funneled through wrappers this crate can keep
//! deterministic.
//!
//! Two invariants the wrappers enforce today:
//!
//! * **no poison panics** — a panicking holder must not take the whole
//!   simulation down with a `lock().unwrap()` cascade: state behind a
//!   [`DetMutex`]/[`Shared`] is plain data whose consistency the sim's
//!   own invariant checks guard, so locks recover the inner value from
//!   a [`PoisonError`] instead of propagating it;
//! * **closure-scoped access** — guards never escape ([`DetMutex::with`]
//!   takes a closure), so lock scopes are lexical and a future
//!   deterministic scheduler can reason about (and instrument) every
//!   critical section.

use std::sync::{Arc, Mutex, PoisonError};

/// A mutex whose lock never fails: poison is recovered, not propagated.
///
/// Used for host-local state that Algorithm 2 describes as "under the
/// lock" (e.g. the free-page reservation count) — single-threaded
/// today, lock-shaped so the parallel-shard scheduler can adopt it
/// without another API change.
#[derive(Debug, Default)]
pub struct DetMutex<T> {
    inner: Mutex<T>,
}

impl<T> DetMutex<T> {
    pub fn new(value: T) -> DetMutex<T> {
        DetMutex {
            inner: Mutex::new(value),
        }
    }

    /// Runs `f` with the locked value. Recovers from poison: if a
    /// previous holder panicked, the inner value is used as-is.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }
}

/// Shared, cloneable, poison-recovering access to one value — the
/// `Arc<Mutex<T>>` idiom behind the doorway. Every component of a
/// simulated stack can hold a clone (the fault injector does).
#[derive(Debug, Default)]
pub struct Shared<T> {
    inner: Arc<Mutex<T>>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Shared<T> {
        Shared {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Shared<T> {
    pub fn new(value: T) -> Shared<T> {
        Shared {
            inner: Arc::new(Mutex::new(value)),
        }
    }

    /// Runs `f` with the locked value, recovering from poison.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_mutex_round_trips() {
        let m = DetMutex::new(1u64);
        m.with(|v| *v += 41);
        assert_eq!(m.with(|v| *v), 42);
    }

    #[test]
    fn shared_clones_see_one_value() {
        let a = Shared::new(Vec::<u32>::new());
        let b = a.clone();
        a.with(|v| v.push(7));
        assert_eq!(b.with(|v| v.clone()), vec![7]);
    }

    /// The regression the doorway exists for: before the `simkit::par`
    /// migration, a panicking lock holder poisoned the mutex and every
    /// later `lock().unwrap()` aborted the whole simulation. Recovery
    /// must hand back the inner value instead.
    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        let s = Shared::new(5u64);
        let s2 = s.clone();
        let t = std::thread::spawn(move || {
            s2.with(|v| {
                *v = 6;
                panic!("holder dies mid-update");
            })
        });
        assert!(t.join().is_err(), "the holder thread panicked");
        // Pre-fix equivalent: this would panic on PoisonError.
        assert_eq!(s.with(|v| *v), 6);
        s.with(|v| *v += 1);
        assert_eq!(s.with(|v| *v), 7);
    }
}
