//! The sanctioned threading doorway (`THREAD-DET`) and the deterministic
//! parallel runtime built behind it.
//!
//! Live sim code must not name `std::thread`/`Mutex`/`Atomic*`/channel
//! primitives directly — scheduler-dependent event order breaks the
//! byte-determinism every differential suite relies on. This module is
//! the one place allowed to own such primitives (mirroring the
//! `simkit::timer` wall-clock doorway for `DET-NOW`), so that every
//! cross-thread interaction of the parallel channel shards (ROADMAP
//! item 3) is funneled through wrappers this crate keeps deterministic.
//!
//! # Shared-state wrappers
//!
//! Two invariants the wrappers enforce:
//!
//! * **no poison panics** — a panicking holder must not take the whole
//!   simulation down with a `lock().unwrap()` cascade: state behind a
//!   [`DetMutex`]/[`Shared`] is plain data whose consistency the sim's
//!   own invariant checks guard, so locks recover the inner value from
//!   a [`PoisonError`] instead of propagating it;
//! * **closure-scoped access** — guards never escape ([`DetMutex::with`]
//!   takes a closure), so lock scopes are lexical and the deterministic
//!   scheduler can reason about (and instrument) every critical section.
//!
//! # The parallel runtime
//!
//! [`run_indexed`] executes a batch of independent tasks on a small
//! work-stealing pool and returns the results **in input order**,
//! regardless of which worker ran what. Determinism is preserved by
//! construction, not by prayer:
//!
//! * tasks must be *disjoint* (each owns its input — e.g. one channel
//!   shard, one sweep configuration); the type system enforces this by
//!   moving each item into exactly one task invocation;
//! * result order is the input index order, so downstream merging and
//!   telemetry mounting never observe scheduler order;
//! * scheduler-dependent observables (which worker ran a task, how many
//!   steals happened) are quarantined in [`ParStats`] and must never be
//!   folded into a `telemetry/v1` snapshot — they may only be reported
//!   in non-deterministic wrapper metadata (the same quarantine as
//!   `run_report/v1`'s `generated_at_unix`).
//!
//! Cross-channel event streams are re-serialized with [`merge_ordered`],
//! which orders events by the `(cycle, channel, seq)` key — the one
//! total order every thread count agrees on.
#![deny(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A mutex whose lock never fails: poison is recovered, not propagated.
///
/// Used for host-local state that Algorithm 2 describes as "under the
/// lock" (e.g. the free-page reservation count) — lock-shaped so the
/// parallel-shard scheduler can adopt it without another API change.
///
/// ```
/// use simkit::par::DetMutex;
///
/// let reserved = DetMutex::new(0i64);
/// reserved.with(|r| *r += 3);
/// assert_eq!(reserved.with(|r| *r), 3);
/// ```
#[derive(Debug, Default)]
pub struct DetMutex<T> {
    inner: Mutex<T>,
}

impl<T> DetMutex<T> {
    /// Wraps `value` in a poison-recovering mutex.
    pub fn new(value: T) -> DetMutex<T> {
        DetMutex {
            inner: Mutex::new(value),
        }
    }

    /// Runs `f` with the locked value. Recovers from poison: if a
    /// previous holder panicked, the inner value is used as-is.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }
}

/// Shared, cloneable, poison-recovering access to one value — the
/// `Arc<Mutex<T>>` idiom behind the doorway. Every component of a
/// simulated stack can hold a clone (the fault injector and every
/// telemetry counter handle do).
///
/// ```
/// use simkit::par::Shared;
///
/// let log = Shared::new(Vec::<&str>::new());
/// let writer = log.clone();
/// writer.with(|l| l.push("offload 7 settled"));
/// assert_eq!(log.with(|l| l.len()), 1);
/// ```
#[derive(Debug, Default)]
pub struct Shared<T> {
    inner: Arc<Mutex<T>>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Shared<T> {
        Shared {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Shared<T> {
    /// Wraps `value` in a shared, poison-recovering cell.
    pub fn new(value: T) -> Shared<T> {
        Shared {
            inner: Arc::new(Mutex::new(value)),
        }
    }

    /// Runs `f` with the locked value, recovering from poison.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }
}

/// Environment knob naming the worker count for parallel sections
/// (`SMARTDIMM_THREADS=4 cargo test ...`). Read only through
/// [`configured_threads`].
pub const THREADS_ENV: &str = "SMARTDIMM_THREADS";

/// Resolves the effective worker count for a parallel section.
///
/// `requested > 0` wins; `requested == 0` means "configured": the
/// [`THREADS_ENV`] environment variable if set to a positive integer,
/// else `1` (fully sequential). The resolved count never influences
/// simulated state — only wall-clock — so reading the environment here
/// does not breach determinism.
pub fn configured_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    match std::env::var(THREADS_ENV) {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or(1),
        Err(_) => 1,
    }
}

/// Scheduler-dependent observables of one [`run_indexed`] call.
///
/// These numbers vary with thread count and OS scheduling; they exist
/// for wall-clock reporting (the `run_report/v1` wrapper) and must never
/// be written into a deterministic telemetry snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Workers that participated (1 for the inline sequential path).
    pub workers: usize,
    /// Tasks executed.
    pub tasks: u64,
    /// Tasks a worker stole from another worker's deque.
    pub steals: u64,
}

impl ParStats {
    /// Folds another run's stats into this accumulator.
    pub fn absorb(&mut self, other: ParStats) {
        self.workers = self.workers.max(other.workers);
        self.tasks += other.tasks;
        self.steals += other.steals;
    }
}

/// One worker's end of the work-stealing deque set: the owner pops from
/// the bottom (LIFO, cache-warm), thieves steal from the top (FIFO,
/// oldest task first). Mutex-backed — task bodies here are whole shard
/// drains or whole simulations, so deque overhead is noise.
struct WsDeque<T> {
    jobs: Mutex<VecDeque<(usize, T)>>,
}

impl<T> WsDeque<T> {
    fn new() -> WsDeque<T> {
        WsDeque {
            jobs: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, job: (usize, T)) {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(job);
    }

    /// Owner pop: newest task first.
    fn pop(&self) -> Option<(usize, T)> {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
    }

    /// Thief pop: oldest task first.
    fn steal(&self) -> Option<(usize, T)> {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }
}

/// Runs `f(index, item)` for every item on a work-stealing worker pool
/// and returns the results **in input order** plus the (non-
/// deterministic) scheduler stats.
///
/// With `threads <= 1` or fewer than two items the call degrades to a
/// plain inline loop on the caller's thread — byte-for-byte the
/// sequential behavior, no threads spawned. Tasks must be independent:
/// each item is moved into exactly one `f` invocation and nothing else
/// of the caller's state is reachable (enforce with `Fn` + `Sync`).
///
/// Panic containment: a panicking task poisons nothing (results and
/// deques recover from poison) and the panic is re-raised on the caller
/// thread after the scope joins, so a worker never dies silently.
pub fn run_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> (Vec<R>, ParStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let tasks = items.len() as u64;
    if threads <= 1 || items.len() < 2 {
        let results = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
        return (
            results,
            ParStats {
                workers: 1,
                tasks,
                steals: 0,
            },
        );
    }

    let workers = threads.min(items.len());
    let deques: Vec<WsDeque<T>> = (0..workers).map(|_| WsDeque::new()).collect();
    // Round-robin seeding spreads the initial load; stealing fixes any
    // imbalance that develops from uneven task costs.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].push((i, item));
        slots.push(None);
    }
    let results = Shared::new(slots);
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let f = &f;
                let results = results.clone();
                let steals = &steals;
                scope.spawn(move || {
                    loop {
                        let job = deques[w].pop().or_else(|| {
                            // Scan siblings round-robin from our right
                            // neighbor; count successful steals.
                            (1..workers).find_map(|d| {
                                let job = deques[(w + d) % workers].steal();
                                if job.is_some() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                }
                                job
                            })
                        });
                        let Some((i, item)) = job else { break };
                        let r = f(i, item);
                        results.with(|slots| slots[i] = Some(r));
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let collected = results.with(|slots| {
        slots
            .iter_mut()
            .map(|s| s.take().expect("every task index produced a result"))
            .collect()
    });
    (
        collected,
        ParStats {
            workers,
            tasks,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

/// The total order every cross-channel event merge uses:
/// `(cycle, channel, seq)`. Cycle breaks first (simulated time), the
/// channel index second (a stable tie-break no scheduler can perturb),
/// per-channel sequence number last (FIFO within a shard's own stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MergeKey {
    /// Simulated cycle the event occurred at.
    pub cycle: u64,
    /// Originating channel shard.
    pub channel: usize,
    /// Per-channel monotonic sequence number.
    pub seq: u64,
}

/// Deterministically interleaves per-channel event streams into one
/// sequence ordered by [`MergeKey`] — the serialization point where
/// independently-advancing shards rejoin a single timeline. Each inner
/// vector must already be sorted by `(cycle, seq)` (shards emit their
/// own streams in order); the channel index is taken from the outer
/// position.
///
/// The output is identical for every thread count because the key never
/// mentions a worker, a thread, or arrival order — only simulated state.
pub fn merge_ordered<T>(per_channel: Vec<Vec<(u64, u64, T)>>) -> Vec<(MergeKey, T)> {
    let mut merged: Vec<(MergeKey, T)> = Vec::new();
    for (channel, stream) in per_channel.into_iter().enumerate() {
        for (cycle, seq, ev) in stream {
            merged.push((
                MergeKey {
                    cycle,
                    channel,
                    seq,
                },
                ev,
            ));
        }
    }
    merged.sort_by_key(|(k, _)| *k);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_mutex_round_trips() {
        let m = DetMutex::new(1u64);
        m.with(|v| *v += 41);
        assert_eq!(m.with(|v| *v), 42);
    }

    #[test]
    fn shared_clones_see_one_value() {
        let a = Shared::new(Vec::<u32>::new());
        let b = a.clone();
        a.with(|v| v.push(7));
        assert_eq!(b.with(|v| v.clone()), vec![7]);
    }

    /// The regression the doorway exists for: before the `simkit::par`
    /// migration, a panicking lock holder poisoned the mutex and every
    /// later `lock().unwrap()` aborted the whole simulation. Recovery
    /// must hand back the inner value instead.
    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        let s = Shared::new(5u64);
        let s2 = s.clone();
        let t = std::thread::spawn(move || {
            s2.with(|v| {
                *v = 6;
                panic!("holder dies mid-update");
            })
        });
        assert!(t.join().is_err(), "the holder thread panicked");
        // Pre-fix equivalent: this would panic on PoisonError.
        assert_eq!(s.with(|v| *v), 6);
        s.with(|v| *v += 1);
        assert_eq!(s.with(|v| *v), 7);
    }

    #[test]
    fn run_indexed_sequential_matches_parallel() {
        let items: Vec<u64> = (0..37).collect();
        let (seq, s1) = run_indexed(1, items.clone(), |i, v| (i as u64) * 1000 + v * v);
        let (par, s4) = run_indexed(4, items, |i, v| (i as u64) * 1000 + v * v);
        assert_eq!(seq, par, "results are input-ordered, not worker-ordered");
        assert_eq!(s1.workers, 1);
        assert_eq!(s4.workers, 4);
        assert_eq!(s1.tasks, 37);
        assert_eq!(s4.tasks, 37);
    }

    #[test]
    fn run_indexed_moves_each_item_exactly_once() {
        // Non-Clone items prove each is consumed by one task only.
        struct Once(u64);
        let items: Vec<Once> = (0..8).map(Once).collect();
        let (out, _) = run_indexed(3, items, |_, Once(v)| v + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn run_indexed_handles_more_workers_than_items() {
        let (out, stats) = run_indexed(16, vec![5u64, 6], |_, v| v * 2);
        assert_eq!(out, vec![10, 12]);
        assert!(stats.workers <= 2, "workers capped at the task count");
    }

    #[test]
    fn run_indexed_propagates_task_panics() {
        let r = std::panic::catch_unwind(|| {
            run_indexed(2, vec![0u64, 1, 2, 3], |_, v| {
                assert!(v != 2, "task 2 fails");
                v
            })
        });
        assert!(r.is_err(), "worker panic re-raised on the caller");
    }

    #[test]
    fn configured_threads_prefers_explicit_request() {
        assert_eq!(configured_threads(3), 3);
        // requested == 0 falls back to env-or-1; without the variable
        // this is 1. (The env-set path is covered by ci.sh's
        // SMARTDIMM_THREADS=4 tier-1 run.)
        if std::env::var(THREADS_ENV).is_err() {
            assert_eq!(configured_threads(0), 1);
        }
    }

    #[test]
    fn merge_ordered_is_schedule_independent() {
        // Two shards' streams, each sorted by (cycle, seq); the merge
        // interleaves by cycle and breaks ties by channel then seq.
        let ch0 = vec![(10, 0, "a"), (30, 1, "c")];
        let ch1 = vec![(10, 0, "b"), (20, 1, "d")];
        let merged: Vec<&str> = merge_ordered(vec![ch0, ch1])
            .into_iter()
            .map(|(_, ev)| ev)
            .collect();
        assert_eq!(merged, vec!["a", "b", "d", "c"]);
    }

    #[test]
    fn par_stats_absorb_accumulates() {
        let mut acc = ParStats::default();
        acc.absorb(ParStats {
            workers: 4,
            tasks: 10,
            steals: 2,
        });
        acc.absorb(ParStats {
            workers: 2,
            tasks: 5,
            steals: 1,
        });
        assert_eq!(acc.workers, 4);
        assert_eq!(acc.tasks, 15);
        assert_eq!(acc.steals, 3);
    }
}
