//! Simulated time base.
//!
//! All simulators in the workspace express time in [`Cycle`]s of some
//! reference clock. A [`Freq`] attaches a physical frequency to a cycle
//! count so that results can be reported in nanoseconds or seconds, and a
//! [`SimClock`] is the mutable "now" owned by a simulation loop.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in cycles of a reference clock.
///
/// `Cycle` is an ordered, copyable newtype over `u64` ([C-NEWTYPE]): it
/// cannot be confused with byte counts or identifiers.
///
/// # Example
///
/// ```
/// use simkit::Cycle;
/// let t = Cycle(100) + 20;
/// assert_eq!(t, Cycle(120));
/// assert_eq!(t - Cycle(100), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; returns the number of cycles between `self`
    /// and an earlier time, or 0 if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Number of cycles elapsed between two points in time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle interval");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

/// A clock frequency, used to convert between cycles and wall-clock time.
///
/// # Example
///
/// ```
/// use simkit::{Cycle, Freq};
/// let ddr = Freq::mhz(1600); // DDR4-3200 command clock
/// assert_eq!(ddr.hz(), 1_600_000_000);
/// // 1600 cycles at 1.6 GHz is exactly 1 microsecond:
/// assert!((ddr.cycles_to_ns(1600) - 1000.0).abs() < 1e-9);
/// assert_eq!(ddr.ns_to_cycles(1000.0), 1600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Freq {
    hz: u64,
}

impl Freq {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn hz_new(hz: u64) -> Freq {
        assert!(hz > 0, "frequency must be non-zero");
        Freq { hz }
    }

    /// Creates a frequency from megahertz.
    pub fn mhz(mhz: u64) -> Freq {
        Freq::hz_new(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz.
    pub fn ghz(ghz: u64) -> Freq {
        Freq::hz_new(ghz * 1_000_000_000)
    }

    /// Returns the frequency in hertz.
    #[inline]
    pub fn hz(self) -> u64 {
        self.hz
    }

    /// Converts a cycle count at this frequency to nanoseconds.
    #[inline]
    pub fn cycles_to_ns(self, cycles: u64) -> f64 {
        cycles as f64 * 1e9 / self.hz as f64
    }

    /// Converts a duration in nanoseconds to a cycle count (rounded up).
    #[inline]
    pub fn ns_to_cycles(self, ns: f64) -> u64 {
        (ns * self.hz as f64 / 1e9).ceil() as u64
    }

    /// Converts a cycle count at this frequency to seconds.
    #[inline]
    pub fn cycles_to_secs(self, cycles: u64) -> f64 {
        cycles as f64 / self.hz as f64
    }
}

/// The mutable "now" of a simulation loop.
///
/// A `SimClock` can only move forward; [`SimClock::advance_to`] enforces
/// monotonicity, which catches event-ordering bugs early.
///
/// # Example
///
/// ```
/// use simkit::{Cycle, Freq, SimClock};
/// let mut clk = SimClock::new(Freq::ghz(2));
/// clk.advance_to(Cycle(2_000));
/// assert_eq!(clk.now(), Cycle(2_000));
/// assert!((clk.elapsed_ns() - 1000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct SimClock {
    now: Cycle,
    freq: Freq,
}

impl SimClock {
    /// Creates a clock at time zero with the given frequency.
    pub fn new(freq: Freq) -> SimClock {
        SimClock {
            now: Cycle::ZERO,
            freq,
        }
    }

    /// Returns the current simulated time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Returns the reference frequency of this clock.
    #[inline]
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// Advances time to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time: simulated time never
    /// flows backwards.
    pub fn advance_to(&mut self, t: Cycle) {
        assert!(
            t >= self.now,
            "clock moved backwards: now={} target={}",
            self.now,
            t
        );
        self.now = t;
    }

    /// Advances time by `cycles`.
    pub fn advance_by(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Elapsed simulated time in nanoseconds since time zero.
    pub fn elapsed_ns(&self) -> f64 {
        self.freq.cycles_to_ns(self.now.0)
    }

    /// Elapsed simulated time in seconds since time zero.
    pub fn elapsed_secs(&self) -> f64 {
        self.freq.cycles_to_secs(self.now.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle(10);
        assert_eq!(a + 5, Cycle(15));
        assert_eq!(Cycle(15) - a, 5);
        assert_eq!(a.saturating_since(Cycle(20)), 0);
        assert_eq!(Cycle(20).saturating_since(a), 10);
    }

    #[test]
    fn cycle_ordering_and_display() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(7).to_string(), "7cyc");
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)] // the check is a debug_assert
    #[should_panic(expected = "negative cycle interval")]
    fn cycle_negative_interval_panics() {
        let _ = Cycle(1) - Cycle(2);
    }

    #[test]
    fn freq_conversions_round_trip() {
        let f = Freq::mhz(1600);
        for cycles in [0u64, 1, 17, 1600, 123_456] {
            let ns = f.cycles_to_ns(cycles);
            assert_eq!(f.ns_to_cycles(ns), cycles);
        }
    }

    #[test]
    fn freq_ghz_and_secs() {
        let f = Freq::ghz(3);
        assert_eq!(f.hz(), 3_000_000_000);
        assert!((f.cycles_to_secs(3_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn freq_zero_rejected() {
        let _ = Freq::hz_new(0);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clk = SimClock::new(Freq::ghz(1));
        clk.advance_by(10);
        clk.advance_to(Cycle(10)); // advancing to "now" is allowed
        clk.advance_to(Cycle(25));
        assert_eq!(clk.now(), Cycle(25));
        assert!((clk.elapsed_ns() - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_rejects_time_travel() {
        let mut clk = SimClock::new(Freq::ghz(1));
        clk.advance_to(Cycle(10));
        clk.advance_to(Cycle(9));
    }
}
