//! `simkit` is the deterministic discrete-event simulation kernel used by the
//! SmartDIMM reproduction.
//!
//! Every simulator in this workspace (the DDR4 model, the LLC model, the
//! network model, the server harness) is built on four primitives provided
//! here:
//!
//! * [`Cycle`] / [`SimClock`] — a monotonically increasing simulated time
//!   base with nanosecond conversion helpers,
//! * [`EventQueue`] — a priority queue of timestamped events with a
//!   deterministic FIFO tie-break,
//! * [`DetRng`] — a seedable, reproducible pseudo-random number generator
//!   (SplitMix64 seeded xoshiro256++),
//! * the [`stats`] module — counters, histograms and time series used to
//!   produce every number reported in `EXPERIMENTS.md`,
//! * the [`telemetry`] module — a hierarchical registry that gathers every
//!   component's stats into one deterministic `telemetry/v1` JSON snapshot.
//!
//! # Example
//!
//! ```
//! use simkit::{EventQueue, Cycle};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(Cycle(30), "late");
//! q.push(Cycle(10), "early");
//! q.push(Cycle(10), "early-second"); // same cycle: FIFO order preserved
//!
//! assert_eq!(q.pop(), Some((Cycle(10), "early")));
//! assert_eq!(q.pop(), Some((Cycle(10), "early-second")));
//! assert_eq!(q.pop(), Some((Cycle(30), "late")));
//! assert_eq!(q.pop(), None);
//! ```

pub mod clock;
pub mod events;
pub mod fault;
pub mod par;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod timer;
pub mod trace;

pub use clock::{Cycle, Freq, SimClock};
pub use events::EventQueue;
pub use fault::{FaultEvent, FaultHandle, FaultKind, FaultPlan, FiredFault};
pub use rng::DetRng;
pub use stats::{Counter, Histogram, QuantileEstimate, Summary, TimeSeries};
pub use telemetry::{CounterHandle, GaugeHandle, Registry, Scope};
pub use trace::{TraceRecord, TraceSink};
