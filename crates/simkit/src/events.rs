//! Deterministic event queue.
//!
//! [`EventQueue`] is a min-heap keyed by [`Cycle`] with a sequence-number
//! tie-break: events scheduled for the same cycle are delivered in the
//! order they were pushed. Determinism of the whole simulation hinges on
//! this property, so it is tested both directly and by property tests.
#![deny(missing_docs)]

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::Cycle;

struct Entry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // cycle, the first-pushed) entry is the "largest".
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use simkit::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(5), 'b');
/// q.push(Cycle(1), 'a');
/// assert_eq!(q.peek_time(), Some(Cycle(1)));
/// assert_eq!(q.pop(), Some((Cycle(1), 'a')));
/// assert_eq!(q.len(), 1);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` for delivery at cycle `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Returns the delivery time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), 'a');
        q.push(Cycle(20), 'b');
        assert_eq!(q.pop_due(Cycle(5)), None);
        assert_eq!(q.pop_due(Cycle(10)), Some((Cycle(10), 'a')));
        assert_eq!(q.pop_due(Cycle(15)), None);
        assert_eq!(q.pop_due(Cycle(25)), Some((Cycle(20), 'b')));
    }

    #[test]
    fn len_empty_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(1), ());
        q.push(Cycle(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }

    proptest! {
        /// Popping must yield events in nondecreasing time order, and events
        /// pushed at equal times must come out in push order.
        #[test]
        fn prop_stable_time_order(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Cycle(t), i);
            }
            let mut prev: Option<(Cycle, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((pt, pidx)) = prev {
                    prop_assert!(t >= pt);
                    if t == pt {
                        prop_assert!(idx > pidx, "FIFO violated within cycle {t}");
                    }
                }
                prev = Some((t, idx));
            }
        }
    }
}
