//! Statistics collection: counters, histograms, summaries and time series.
//!
//! Every number in `EXPERIMENTS.md` is produced by one of these types, so
//! they favour exactness and introspectability over speed.

/// A named monotonic event counter.
///
/// # Example
///
/// ```
/// use simkit::Counter;
/// let mut c = Counter::new("dram.rd_cas");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with the given name.
    pub fn new(name: impl Into<String>) -> Counter {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Returns the counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// A histogram with fixed-width linear buckets plus an overflow bucket.
///
/// Also maintains exact count/sum/min/max so means are not quantized.
///
/// # Example
///
/// ```
/// use simkit::Histogram;
/// let mut h = Histogram::new("latency", 10, 10); // 10 buckets of width 10
/// for v in [3, 14, 97, 205] { h.record(v); }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Some(205));
/// assert!(h.mean() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    name: String,
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl Histogram {
    /// Creates a histogram with `nbuckets` linear buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `nbuckets` is zero.
    pub fn new(name: impl Into<String>, bucket_width: u64, nbuckets: usize) -> Histogram {
        assert!(bucket_width > 0, "bucket width must be non-zero");
        assert!(nbuckets > 0, "histogram needs at least one bucket");
        Histogram {
            name: name.into(),
            bucket_width,
            buckets: vec![0; nbuckets],
            overflow: 0,
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, v: u64) {
        let idx = (v / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += v as u128;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Returns the histogram's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of all recorded samples; 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Number of samples that fell beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile `q` in `[0, 1]`, resolved to bucket upper
    /// bounds and clamped to the exact recorded maximum (so a sparse
    /// histogram never reports a quantile above any observed sample).
    /// Samples that landed in the overflow bucket resolve to the maximum.
    /// Returns `None` if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        // count > 0 implies a recorded max; `?` keeps this panic-free
        // on the export path either way.
        let max = self.max?;
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(((i as u64 + 1) * self.bucket_width).min(max));
            }
        }
        self.max
    }

    /// Per-bucket counts (not including overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// [`Histogram::quantile`] plus the sample-size context needed to
    /// judge it: the recorded sample count and whether that count is
    /// large enough for quantile `q` to be *resolvable* — i.e. whether
    /// at least one sample is expected above the quantile, so the
    /// estimate is not just an alias for [`Histogram::max`].
    ///
    /// A p999 over 50 samples silently equals the maximum; callers that
    /// report extreme quantiles (tail-latency sweeps) must carry this
    /// flag so a small-sample tail is never mistaken for a measured one.
    ///
    /// Returns `None` if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_est(&self, q: f64) -> Option<QuantileEstimate> {
        let value = self.quantile(q)?;
        // Resolvable iff the expected number of samples strictly above
        // the q-quantile, (1-q)·count, is at least one. q=1 is by
        // definition the maximum and always "resolved".
        let resolvable = q >= 1.0 || (1.0 - q) * self.count as f64 >= 1.0;
        Some(QuantileEstimate {
            value,
            samples: self.count,
            resolvable,
        })
    }
}

/// A quantile estimate qualified by its sample size
/// ([`Histogram::quantile_est`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantileEstimate {
    /// The bucket-resolved quantile value (see [`Histogram::quantile`]).
    pub value: u64,
    /// Number of samples the estimate was computed over.
    pub samples: u64,
    /// Whether `samples` is large enough that the quantile is
    /// distinguishable from the recorded maximum (`(1-q)·samples ≥ 1`).
    /// When `false` the value is an alias for [`Histogram::max`] and
    /// must not be reported as a measured tail.
    pub resolvable: bool,
}

/// A compact numeric summary of a sequence of `f64` samples.
///
/// Unlike [`Histogram`], `Summary` stores every sample, so quantiles are
/// exact. Used for experiment outputs where sample counts are modest.
///
/// # Example
///
/// ```
/// use simkit::Summary;
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] { s.record(v); }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.percentile(50.0), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Records one sample.
    ///
    /// Non-finite samples (NaN, infinities) indicate a degenerate rate
    /// computation upstream; they are caught here in debug builds rather
    /// than at report time deep inside an experiment run.
    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite summary sample: {v}");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean; 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Sample standard deviation; 0.0 with fewer than two samples.
    pub fn stddev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }

    /// Exact percentile (nearest-rank). `p` is in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or the summary is empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        assert!(!self.samples.is_empty(), "empty summary has no percentile");
        if !self.sorted {
            // total_cmp gives NaN a defined order (after +inf) instead of
            // panicking mid-report; record() already flags non-finite
            // samples in debug builds.
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil().max(1.0) as usize;
        self.samples[rank - 1]
    }

    /// Smallest sample; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }
}

/// A `(time, value)` series sampled during a simulation, e.g. scratchpad
/// occupancy over time (Fig. 10).
///
/// # Example
///
/// ```
/// use simkit::{Cycle, TimeSeries};
/// let mut ts = TimeSeries::new("scratchpad.bytes");
/// ts.record(Cycle(0), 0.0);
/// ts.record(Cycle(100), 4096.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last(), Some((Cycle(100), 4096.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    points: Vec<(u64, f64)>,
}

use crate::clock::Cycle;

impl TimeSeries {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point. Time must be nondecreasing.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the previous point.
    pub fn record(&mut self, t: Cycle, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t.raw() >= last, "time series must be monotonic");
        }
        self.points.push((t.raw(), v));
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last recorded point.
    pub fn last(&self) -> Option<(Cycle, f64)> {
        self.points.last().map(|&(t, v)| (Cycle(t), v))
    }

    /// Iterates over `(time, value)` points.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, f64)> + '_ {
        self.points.iter().map(|&(t, v)| (Cycle(t), v))
    }

    /// Maximum value in the series; `None` if empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).reduce(f64::max)
    }

    /// Mean of values over the *tail* fraction of points — used to measure
    /// equilibrium values after warmup (e.g. Fig. 10's steady state).
    ///
    /// # Panics
    ///
    /// Panics if `tail_fraction` is not within `(0, 1]`.
    pub fn tail_mean(&self, tail_fraction: f64) -> f64 {
        assert!(
            tail_fraction > 0.0 && tail_fraction <= 1.0,
            "tail fraction out of range"
        );
        if self.points.is_empty() {
            return 0.0;
        }
        let skip = ((1.0 - tail_fraction) * self.points.len() as f64) as usize;
        let tail = &self.points[skip..];
        tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.name(), "x");
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new("h", 10, 5);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(49);
        h.record(50); // overflow
        assert_eq!(h.buckets(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(50));
        assert!((h.mean() - 23.6).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new("h", 1, 100);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new("h", 1, 4);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn histogram_quantile_clamps_to_recorded_max() {
        // A single sample of 0 lands in bucket [0, 10); the bucket's upper
        // bound is 10, but no sample that large was ever seen.
        let mut h = Histogram::new("h", 10, 4);
        h.record(0);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(1.0), Some(0));
    }

    #[test]
    fn histogram_quantile_single_bucket() {
        let mut h = Histogram::new("h", 100, 1);
        for v in [3, 7, 42] {
            h.record(v);
        }
        // Everything is in one bucket; the best resolution is its upper
        // bound, clamped to the true max.
        assert_eq!(h.quantile(0.0), Some(42));
        assert_eq!(h.quantile(1.0), Some(42));
    }

    #[test]
    fn histogram_quantile_extremes() {
        let mut h = Histogram::new("h", 1, 100);
        for v in 10..20 {
            h.record(v);
        }
        // q=0 resolves to the first occupied bucket, q=1 to the last.
        assert_eq!(h.quantile(0.0), Some(11));
        assert_eq!(h.quantile(1.0), Some(19));
    }

    #[test]
    fn histogram_quantile_overflow_bucket() {
        let mut h = Histogram::new("h", 10, 2); // covers [0, 20)
        h.record(5);
        h.record(1000); // overflow
        h.record(2000); // overflow
                        // The upper quantiles live in the overflow bucket, which has no
                        // upper bound; they resolve to the exact recorded max.
        assert_eq!(h.quantile(0.1), Some(10)); // bucket [0, 10) upper bound
        assert_eq!(h.quantile(0.9), Some(2000));
        assert_eq!(h.quantile(1.0), Some(2000));
    }

    #[test]
    fn quantile_est_empty_is_none() {
        let h = Histogram::new("h", 1, 4);
        assert_eq!(h.quantile_est(0.999), None);
        assert_eq!(h.quantile_est(0.5), None);
    }

    #[test]
    fn quantile_est_flags_small_samples() {
        // 1 sample: every quantile aliases the single value; p50 needs
        // (1-0.5)*1 = 0.5 < 1 samples above it, so it is flagged too.
        let mut h = Histogram::new("h", 1, 2000);
        h.record(7);
        let e = h.quantile_est(0.999).expect("non-empty");
        assert_eq!((e.value, e.samples, e.resolvable), (7, 1, false));
        assert!(!h.quantile_est(0.5).expect("non-empty").resolvable);

        // 2 samples: p50 becomes resolvable ((1-0.5)*2 = 1), p999 not.
        h.record(9);
        assert!(h.quantile_est(0.5).expect("non-empty").resolvable);
        let e = h.quantile_est(0.999).expect("non-empty");
        assert!(!e.resolvable, "p999 over 2 samples aliases max");
        assert_eq!(e.value, h.max().expect("max"));
    }

    #[test]
    fn quantile_est_p999_boundary_at_1000_samples() {
        let mut h = Histogram::new("h", 1, 2000);
        for v in 0..999 {
            h.record(v);
        }
        // 999 samples: (1-0.999)*999 = 0.999 < 1 — still flagged.
        let e = h.quantile_est(0.999).expect("non-empty");
        assert_eq!(e.samples, 999);
        assert!(!e.resolvable, "p999 on 999 samples must be flagged");
        // The 1000th sample tips it over: (1-0.999)*1000 = 1.0.
        h.record(999);
        let e = h.quantile_est(0.999).expect("non-empty");
        assert_eq!(e.samples, 1000);
        assert!(e.resolvable);
        assert_eq!(e.value, 999);
    }

    #[test]
    fn quantile_est_q1_is_always_resolved() {
        let mut h = Histogram::new("h", 1, 10);
        h.record(3);
        let e = h.quantile_est(1.0).expect("non-empty");
        assert!(e.resolvable, "q=1 is the max by definition");
        assert_eq!(e.value, 3);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn histogram_quantile_rejects_out_of_range() {
        let mut h = Histogram::new("h", 1, 4);
        h.record(1);
        let _ = h.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn histogram_zero_width_rejected() {
        let _ = Histogram::new("h", 0, 4);
    }

    #[test]
    fn summary_stats() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.percentile(50.0), 4.0);
        assert_eq!(s.percentile(100.0), 9.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_percentile_survives_nan_sample() {
        // Regression: percentile() used partial_cmp().expect("NaN sample")
        // and panicked at report time if a degenerate rate slipped in. The
        // struct literal bypasses record()'s debug_assert on purpose — we
        // are testing the report path, not the intake path.
        let mut s = Summary {
            samples: vec![3.0, f64::NAN, 1.0, 2.0],
            sorted: false,
        };
        // total_cmp orders NaN after +inf, so finite percentiles are sane.
        assert_eq!(s.percentile(50.0), 2.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite summary sample")]
    #[cfg(debug_assertions)]
    fn summary_record_rejects_non_finite_in_debug() {
        let mut s = Summary::new();
        s.record(f64::NAN);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn time_series_monotonic_and_tail() {
        let mut ts = TimeSeries::new("t");
        for i in 0..10 {
            ts.record(Cycle(i), i as f64);
        }
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.max_value(), Some(9.0));
        // Tail 50% = values 5..=9, mean 7.0.
        assert!((ts.tail_mean(0.5) - 7.0).abs() < 1e-12);
        assert_eq!(ts.iter().count(), 10);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn time_series_rejects_backwards() {
        let mut ts = TimeSeries::new("t");
        ts.record(Cycle(5), 1.0);
        ts.record(Cycle(4), 2.0);
    }
}
