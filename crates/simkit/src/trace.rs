//! Trace collection.
//!
//! The Fig. 9 experiment (rdCAS/wrCAS memory trace) and several ablations
//! need a structured record of simulator events. [`TraceSink`] collects
//! [`TraceRecord`]s in memory and renders them as CSV; the bench binaries
//! write them to `results/*.csv`.

use std::fmt::Write as _;

use crate::clock::Cycle;

/// One timestamped trace record: a kind tag, an address-like value and a
/// free-form field list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: Cycle,
    /// Event kind, e.g. `"rdCAS"` or `"wrCAS"`.
    pub kind: &'static str,
    /// Primary value, typically a physical address.
    pub value: u64,
    /// Secondary value (e.g. stream / core id).
    pub tag: u64,
}

/// An in-memory trace collector with an optional retention cap.
///
/// `TraceSink` can be disabled so instrumented simulators pay nothing when
/// no experiment needs the trace. With a capacity set (see
/// [`TraceSink::enabled_with_capacity`]), the sink behaves as a ring
/// buffer: only the most recent `cap` records are retained, older records
/// are evicted, and [`TraceSink::dropped_records`] counts the evictions —
/// so a long-running simulation cannot grow the trace without bound.
///
/// Internally the buffer is a `Vec` allowed to reach `2 × cap` before it
/// compacts (one `drain` every `cap` records), which keeps `record` O(1)
/// amortized while still letting [`TraceSink::records`] hand out a
/// contiguous slice. A record counts as dropped the moment it falls out
/// of the logical window, not when the compaction happens.
///
/// # Example
///
/// ```
/// use simkit::{Cycle, TraceSink};
/// let mut sink = TraceSink::enabled();
/// sink.record(Cycle(4), "rdCAS", 0x1000, 0);
/// sink.record(Cycle(9), "wrCAS", 0x2000, 1);
/// let csv = sink.to_csv();
/// assert!(csv.starts_with("cycle,kind,value,tag\n"));
/// assert_eq!(sink.records().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    records: Vec<TraceRecord>,
    enabled: bool,
    capacity: Option<usize>,
    dropped: u64,
}

impl TraceSink {
    /// Creates a disabled sink: `record` calls are dropped.
    pub fn disabled() -> TraceSink {
        TraceSink {
            records: Vec::new(),
            enabled: false,
            capacity: None,
            dropped: 0,
        }
    }

    /// Creates an enabled, unbounded sink.
    pub fn enabled() -> TraceSink {
        TraceSink {
            records: Vec::new(),
            enabled: true,
            capacity: None,
            dropped: 0,
        }
    }

    /// Creates an enabled sink retaining at most `cap` records (ring
    /// buffer semantics: oldest records are evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn enabled_with_capacity(cap: usize) -> TraceSink {
        assert!(cap > 0, "trace capacity must be non-zero");
        TraceSink {
            records: Vec::new(),
            enabled: true,
            capacity: Some(cap),
            dropped: 0,
        }
    }

    /// Whether records are currently being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns collection on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The retention cap, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Sets (or clears, with `None`) the retention cap. If the sink
    /// already holds more than the new cap, the oldest records are
    /// evicted immediately and counted as dropped.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is `Some(0)`.
    pub fn set_capacity(&mut self, cap: Option<usize>) {
        if let Some(c) = cap {
            assert!(c > 0, "trace capacity must be non-zero");
        }
        self.capacity = cap;
        if let Some(c) = self.capacity {
            if self.records.len() > c {
                let evict = self.records.len() - c;
                self.dropped += evict as u64;
                self.records.drain(..evict);
            }
        }
    }

    /// Number of records evicted by the retention cap since the last
    /// [`TraceSink::clear`].
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }

    /// Records an event if the sink is enabled, evicting the oldest
    /// record when the retention cap is exceeded.
    #[inline]
    pub fn record(&mut self, at: Cycle, kind: &'static str, value: u64, tag: u64) {
        if !self.enabled {
            return;
        }
        self.records.push(TraceRecord {
            at,
            kind,
            value,
            tag,
        });
        if let Some(cap) = self.capacity {
            if self.records.len() > cap {
                // The oldest record just left the logical window; physical
                // compaction is deferred until the buffer doubles.
                self.dropped += 1;
                if self.records.len() >= cap * 2 {
                    let evict = self.records.len() - cap;
                    self.records.drain(..evict);
                }
            }
        }
    }

    /// All retained records, in collection order. With a cap set this is
    /// the most recent `cap` records (or fewer, before the cap is hit).
    pub fn records(&self) -> &[TraceRecord] {
        match self.capacity {
            Some(cap) if self.records.len() > cap => &self.records[self.records.len() - cap..],
            _ => &self.records,
        }
    }

    /// Drops all collected records and resets the dropped-record count.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    /// Renders the retained trace as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle,kind,value,tag\n");
        for r in self.records() {
            // Writing to a String cannot fail.
            let _ = writeln!(out, "{},{},{},{}", r.at.raw(), r.kind, r.value, r.tag);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_drops_records() {
        let mut s = TraceSink::disabled();
        s.record(Cycle(1), "rdCAS", 0, 0);
        assert!(s.records().is_empty());
        assert!(!s.is_enabled());
    }

    #[test]
    fn enabled_sink_collects_in_order() {
        let mut s = TraceSink::enabled();
        s.record(Cycle(1), "a", 10, 0);
        s.record(Cycle(2), "b", 20, 1);
        assert_eq!(s.records().len(), 2);
        assert_eq!(s.records()[0].kind, "a");
        assert_eq!(s.records()[1].value, 20);
    }

    #[test]
    fn toggle_enable() {
        let mut s = TraceSink::disabled();
        s.set_enabled(true);
        s.record(Cycle(1), "x", 1, 0);
        s.set_enabled(false);
        s.record(Cycle(2), "y", 2, 0);
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn capped_sink_evicts_oldest_and_counts_drops() {
        let mut s = TraceSink::enabled_with_capacity(3);
        for i in 0..10u64 {
            s.record(Cycle(i), "e", i, 0);
        }
        // Only the newest 3 of 10 records survive; 7 were evicted.
        assert_eq!(s.records().len(), 3);
        let values: Vec<u64> = s.records().iter().map(|r| r.value).collect();
        assert_eq!(values, vec![7, 8, 9]);
        assert_eq!(s.dropped_records(), 7);
        assert_eq!(s.capacity(), Some(3));
        // CSV renders only the retained window.
        assert_eq!(s.to_csv().lines().count(), 4); // header + 3 rows
    }

    #[test]
    fn capped_sink_physical_buffer_stays_bounded() {
        let mut s = TraceSink::enabled_with_capacity(4);
        for i in 0..1000u64 {
            s.record(Cycle(i), "e", i, 0);
            // Amortized compaction may defer eviction, but never past 2×cap.
            assert!(s.records.len() < 8, "physical buffer exceeded 2x cap");
        }
        assert_eq!(s.records().len(), 4);
        assert_eq!(s.dropped_records(), 996);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut s = TraceSink::enabled();
        for i in 0..6u64 {
            s.record(Cycle(i), "e", i, 0);
        }
        s.set_capacity(Some(2));
        assert_eq!(s.records().len(), 2);
        assert_eq!(s.records()[0].value, 4);
        assert_eq!(s.dropped_records(), 4);
        // Clearing resets both the window and the drop count.
        s.clear();
        assert_eq!(s.dropped_records(), 0);
        assert!(s.records().is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = TraceSink::enabled_with_capacity(0);
    }

    #[test]
    fn csv_rendering() {
        let mut s = TraceSink::enabled();
        s.record(Cycle(5), "rdCAS", 4096, 2);
        let csv = s.to_csv();
        assert_eq!(csv, "cycle,kind,value,tag\n5,rdCAS,4096,2\n");
        s.clear();
        assert_eq!(s.to_csv(), "cycle,kind,value,tag\n");
    }
}
