//! Trace collection.
//!
//! The Fig. 9 experiment (rdCAS/wrCAS memory trace) and several ablations
//! need a structured record of simulator events. [`TraceSink`] collects
//! [`TraceRecord`]s in memory and renders them as CSV; the bench binaries
//! write them to `results/*.csv`.

use std::fmt::Write as _;

use crate::clock::Cycle;

/// One timestamped trace record: a kind tag, an address-like value and a
/// free-form field list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: Cycle,
    /// Event kind, e.g. `"rdCAS"` or `"wrCAS"`.
    pub kind: &'static str,
    /// Primary value, typically a physical address.
    pub value: u64,
    /// Secondary value (e.g. stream / core id).
    pub tag: u64,
}

/// An in-memory trace collector.
///
/// `TraceSink` can be disabled so instrumented simulators pay nothing when
/// no experiment needs the trace.
///
/// # Example
///
/// ```
/// use simkit::{Cycle, TraceSink};
/// let mut sink = TraceSink::enabled();
/// sink.record(Cycle(4), "rdCAS", 0x1000, 0);
/// sink.record(Cycle(9), "wrCAS", 0x2000, 1);
/// let csv = sink.to_csv();
/// assert!(csv.starts_with("cycle,kind,value,tag\n"));
/// assert_eq!(sink.records().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl TraceSink {
    /// Creates a disabled sink: `record` calls are dropped.
    pub fn disabled() -> TraceSink {
        TraceSink {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// Creates an enabled sink.
    pub fn enabled() -> TraceSink {
        TraceSink {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Whether records are currently being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns collection on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records an event if the sink is enabled.
    #[inline]
    pub fn record(&mut self, at: Cycle, kind: &'static str, value: u64, tag: u64) {
        if self.enabled {
            self.records.push(TraceRecord {
                at,
                kind,
                value,
                tag,
            });
        }
    }

    /// All collected records, in collection order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Drops all collected records.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Renders the trace as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle,kind,value,tag\n");
        for r in &self.records {
            // Writing to a String cannot fail.
            let _ = writeln!(out, "{},{},{},{}", r.at.raw(), r.kind, r.value, r.tag);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_drops_records() {
        let mut s = TraceSink::disabled();
        s.record(Cycle(1), "rdCAS", 0, 0);
        assert!(s.records().is_empty());
        assert!(!s.is_enabled());
    }

    #[test]
    fn enabled_sink_collects_in_order() {
        let mut s = TraceSink::enabled();
        s.record(Cycle(1), "a", 10, 0);
        s.record(Cycle(2), "b", 20, 1);
        assert_eq!(s.records().len(), 2);
        assert_eq!(s.records()[0].kind, "a");
        assert_eq!(s.records()[1].value, 20);
    }

    #[test]
    fn toggle_enable() {
        let mut s = TraceSink::disabled();
        s.set_enabled(true);
        s.record(Cycle(1), "x", 1, 0);
        s.set_enabled(false);
        s.record(Cycle(2), "y", 2, 0);
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn csv_rendering() {
        let mut s = TraceSink::enabled();
        s.record(Cycle(5), "rdCAS", 4096, 2);
        let csv = s.to_csv();
        assert_eq!(csv, "cycle,kind,value,tag\n5,rdCAS,4096,2\n");
        s.clear();
        assert_eq!(s.to_csv(), "cycle,kind,value,tag\n");
    }
}
