//! Deterministic pseudo-random number generation.
//!
//! Simulation results must be exactly reproducible from a seed, so the
//! workspace uses its own small generator rather than thread-local entropy:
//! [`DetRng`] is xoshiro256++ seeded through SplitMix64, the standard
//! seeding procedure recommended by the xoshiro authors.

/// A deterministic, seedable pseudo-random number generator
/// (xoshiro256++ with SplitMix64 seeding).
///
/// `DetRng` is deliberately *not* cryptographically secure; it drives
/// workload generation, loss injection and replacement decisions in the
/// simulators. All derived helpers (`gen_range`, `gen_bool`, ...) consume
/// a documented number of raw draws so streams stay stable across
/// refactorings.
///
/// # Example
///
/// ```
/// use simkit::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.gen_range(10..20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> DetRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits (one raw draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `range` (one raw draw).
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is
    /// negligible for the range sizes used in the simulators (< 2^40).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Returns `true` with probability `p` (one raw draw).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // Compare against the top 53 bits for full double precision.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)` (one raw draw).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns an exponentially distributed value with the given mean
    /// (one raw draw). Used for Poisson arrival processes.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = self.gen_f64();
        // Guard against ln(0).
        -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }

    /// Samples an index from a discrete distribution given by `weights`
    /// (one raw draw).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn gen_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fills `buf` with random bytes (`ceil(len/8)` raw draws).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Derives an independent child generator. Children with different
    /// `stream` values produce uncorrelated streams from the same parent.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        let base = self.next_u64();
        DetRng::new(base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Performs a Fisher–Yates shuffle of `slice` (one raw draw per element).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..(i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5..17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_range() {
        let mut r = DetRng::new(4);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        DetRng::new(0).gen_range(3..3);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = DetRng::new(5);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = DetRng::new(6);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p={p}");
    }

    #[test]
    fn gen_exp_mean() {
        let mut r = DetRng::new(8);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.gen_exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn gen_weighted_respects_weights() {
        let mut r = DetRng::new(9);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[r.gen_weighted(&[1.0, 2.0, 3.0])] += 1;
        }
        assert!(counts[0] < counts[1] && counts[1] < counts[2]);
        let p0 = counts[0] as f64 / 60_000.0;
        assert!((p0 - 1.0 / 6.0).abs() < 0.02, "p0={p0}");
    }

    #[test]
    fn fill_bytes_deterministic_and_full() {
        let mut a = DetRng::new(10);
        let mut b = DetRng::new(10);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }

    #[test]
    fn fork_streams_are_distinct() {
        let mut parent = DetRng::new(11);
        let mut c1 = parent.fork(1);
        let mut parent2 = DetRng::new(11);
        let mut c2 = parent2.fork(2);
        let v1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(12);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>()); // overwhelmingly likely
    }

    proptest! {
        #[test]
        fn prop_gen_range_in_bounds(seed: u64, lo in 0u64..1000, span in 1u64..1000) {
            let mut r = DetRng::new(seed);
            for _ in 0..32 {
                let v = r.gen_range(lo..lo + span);
                prop_assert!(v >= lo && v < lo + span);
            }
        }

        #[test]
        fn prop_gen_f64_unit_interval(seed: u64) {
            let mut r = DetRng::new(seed);
            for _ in 0..64 {
                let x = r.gen_f64();
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }
}
