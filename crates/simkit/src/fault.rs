//! Deterministic fault injection ("chaos") for the simulation stack.
//!
//! A [`FaultPlan`] is a seeded, reproducible list of fault events. Each
//! event arms at a specific offload index (or, for TCP faults, covers a
//! window of transmitted segments) and is consumed by injection hooks
//! threaded through the memory system, the SmartDIMM buffer device, the
//! CompCpy host and the TCP model:
//!
//! * [`FaultKind::XlatPressure`] — dummy translation-table registrations
//!   (competing tenants) inserted before an offload registers, driving
//!   cuckoo displacement chains, CAM-stash spills and `TableFull`.
//! * [`FaultKind::ScratchHog`] — scratchpad pages staged by phantom
//!   offloads that are never consumed, forcing the host into
//!   Force-Recycle (Algorithm 1) or clean `OutOfScratchpad` failure.
//! * [`FaultKind::DropSourceFeed`] — the buffer device misses one source
//!   cacheline interception (S6), leaving the DSA starved until the host
//!   re-feeds the source range.
//! * [`FaultKind::DelayWriteback`] — a `clflush` leaves the last N dirty
//!   lines stuck in a write buffer instead of reaching DRAM; they stay
//!   pending until [`drained explicitly`](FaultHandle::writeback_faults).
//! * [`FaultKind::ReorderWriteback`] — a flush delivers its writebacks in
//!   reverse address order (the device must tolerate out-of-order CAS).
//! * [`FaultKind::TcpLossBurst`] — a contiguous run of TCP segments is
//!   force-dropped regardless of the configured loss probability.
//!
//! All state lives behind a shared, cloneable [`FaultHandle`]; components
//! hold an `Option<FaultHandle>` so the un-faulted hot path pays nothing.
//! Every firing is appended to a log so tests can assert that the same
//! seed reproduces the identical fault sequence.

use crate::par::Shared;
use crate::rng::DetRng;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Insert `entries` dummy source registrations into every device's
    /// translation table before the offload registers.
    XlatPressure { entries: usize },
    /// Stage `pages` phantom scratchpad pages (fully valid, never
    /// consumed) on every device before the offload reserves space.
    ScratchHog { pages: usize },
    /// Drop the device-side DSA feed of source line `line` (0-based,
    /// message line index) — once.
    DropSourceFeed { line: usize },
    /// Defer the last `lines` dirty writebacks of the next flush.
    DelayWriteback { lines: usize },
    /// Deliver the next flush's writebacks in reverse address order.
    ReorderWriteback,
    /// Force-drop TCP segments `start..start + len` (by send index).
    TcpLossBurst { start: u64, len: u64 },
}

impl FaultKind {
    fn label(&self) -> String {
        match self {
            FaultKind::XlatPressure { entries } => format!("xlat_pressure({entries})"),
            FaultKind::ScratchHog { pages } => format!("scratch_hog({pages})"),
            FaultKind::DropSourceFeed { line } => format!("drop_source_feed({line})"),
            FaultKind::DelayWriteback { lines } => format!("delay_writeback({lines})"),
            FaultKind::ReorderWriteback => "reorder_writeback".to_string(),
            FaultKind::TcpLossBurst { start, len } => format!("tcp_loss_burst({start},{len})"),
        }
    }
}

/// A fault armed at a specific offload index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 0-based index of the offload (per [`FaultHandle::begin_offload`]
    /// call) at which the fault arms. Ignored for [`FaultKind::TcpLossBurst`],
    /// which is active for the whole run.
    pub at_offload: u64,
    pub kind: FaultKind,
}

/// A seeded, deterministic list of fault events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn empty() -> FaultPlan {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Generates a plan from `seed`: one to four events spread across the
    /// first `horizon` offloads. The same seed always yields the same
    /// plan.
    pub fn generate(seed: u64, horizon: u64) -> FaultPlan {
        assert!(horizon > 0, "horizon must cover at least one offload");
        let mut rng = DetRng::new(seed ^ 0xFA17_FA17_FA17_FA17);
        let n = 1 + rng.gen_range(0..4);
        let mut events = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let at_offload = rng.gen_range(0..horizon);
            let kind = match rng.gen_range(0..100) {
                0..=24 => FaultKind::XlatPressure {
                    entries: 24 + rng.gen_range(0..140) as usize,
                },
                25..=49 => FaultKind::ScratchHog {
                    pages: 1 + rng.gen_range(0..8) as usize,
                },
                50..=64 => FaultKind::DropSourceFeed {
                    line: rng.gen_range(0..64) as usize,
                },
                65..=79 => FaultKind::DelayWriteback {
                    lines: 1 + rng.gen_range(0..8) as usize,
                },
                80..=89 => FaultKind::ReorderWriteback,
                _ => FaultKind::TcpLossBurst {
                    start: rng.gen_range(0..96),
                    len: 1 + rng.gen_range(0..12),
                },
            };
            events.push(FaultEvent { at_offload, kind });
        }
        events.sort_by_key(|e| e.at_offload);
        FaultPlan { seed, events }
    }

    /// Events that arm at offload `index` (TCP bursts excluded — they are
    /// always active).
    fn armed_at(&self, index: u64) -> Vec<FaultKind> {
        self.events
            .iter()
            .filter(|e| e.at_offload == index && !matches!(e.kind, FaultKind::TcpLossBurst { .. }))
            .map(|e| e.kind)
            .collect()
    }
}

/// A fault that actually fired, for determinism assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// Offload index at which it fired (TCP bursts report the burst's
    /// first segment index instead).
    pub offload: u64,
    /// Human-readable label, e.g. `xlat_pressure(96)`.
    pub label: String,
}

#[derive(Debug)]
struct InjectorState {
    plan: FaultPlan,
    /// Offload index of the *current* offload (`begin_offload` count − 1).
    offload_index: Option<u64>,
    /// Faults armed for the current offload, consumed by hooks.
    armed: Vec<FaultKind>,
    /// TCP bursts that already reported a firing.
    bursts_fired: Vec<usize>,
    fired: Vec<FiredFault>,
}

/// Shared, cloneable access to one fault injector. All components in a
/// simulated stack hold clones of the same handle.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    state: Shared<InjectorState>,
}

impl FaultHandle {
    pub fn new(plan: FaultPlan) -> FaultHandle {
        FaultHandle {
            state: Shared::new(InjectorState {
                plan,
                offload_index: None,
                armed: Vec::new(),
                bursts_fired: Vec::new(),
                fired: Vec::new(),
            }),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> FaultPlan {
        self.state.with(|s| s.plan.clone())
    }

    /// Advances to the next offload and arms its faults. Returns the
    /// *preparation* faults ([`FaultKind::XlatPressure`] and
    /// [`FaultKind::ScratchHog`]) the caller must apply before the
    /// offload registers; those are recorded as fired here. The remaining
    /// armed faults are consumed (and recorded) by the device and memory
    /// hooks as they trigger.
    pub fn begin_offload(&self) -> Vec<FaultKind> {
        self.state.with(|s| {
            let index = s.offload_index.map_or(0, |i| i + 1);
            s.offload_index = Some(index);
            s.armed = s.plan.armed_at(index);
            let preps: Vec<FaultKind> = s
                .armed
                .iter()
                .copied()
                .filter(|k| {
                    matches!(
                        k,
                        FaultKind::XlatPressure { .. } | FaultKind::ScratchHog { .. }
                    )
                })
                .collect();
            for k in &preps {
                let label = k.label();
                s.fired.push(FiredFault {
                    offload: index,
                    label,
                });
            }
            s.armed.retain(|k| {
                !matches!(
                    k,
                    FaultKind::XlatPressure { .. } | FaultKind::ScratchHog { .. }
                )
            });
            preps
        })
    }

    /// Device hook (S6): should the DSA feed of message line `line` be
    /// dropped? Fires at most once per armed event.
    pub fn drop_source_feed(&self, line: usize) -> bool {
        self.state.with(|s| {
            let Some(pos) = s
                .armed
                .iter()
                .position(|k| matches!(k, FaultKind::DropSourceFeed { line: l } if *l == line))
            else {
                return false;
            };
            let kind = s.armed.remove(pos);
            let offload = s.offload_index.unwrap_or(0);
            let label = kind.label();
            s.fired.push(FiredFault { offload, label });
            true
        })
    }

    /// Memory-system hook: disturbance to apply to the current flush.
    /// Returns `(reorder, delayed_lines)` and consumes the armed events.
    pub fn writeback_faults(&self) -> (bool, usize) {
        self.state.with(|s| {
            let mut reorder = false;
            let mut delay = 0usize;
            let offload = s.offload_index.unwrap_or(0);
            let mut fired = Vec::new();
            s.armed.retain(|k| match *k {
                FaultKind::ReorderWriteback => {
                    reorder = true;
                    fired.push(k.label());
                    false
                }
                FaultKind::DelayWriteback { lines } => {
                    delay = lines;
                    fired.push(k.label());
                    false
                }
                _ => true,
            });
            for label in fired {
                s.fired.push(FiredFault { offload, label });
            }
            (reorder, delay)
        })
    }

    /// TCP hook: force-drop the segment with send index `seg`?
    pub fn tcp_force_drop(&self, seg: u64) -> bool {
        self.state.with(|s| {
            for (i, e) in s.plan.events.clone().iter().enumerate() {
                if let FaultKind::TcpLossBurst { start, len } = e.kind {
                    if seg >= start && seg < start + len {
                        if !s.bursts_fired.contains(&i) {
                            s.bursts_fired.push(i);
                            s.fired.push(FiredFault {
                                offload: start,
                                label: e.kind.label(),
                            });
                        }
                        return true;
                    }
                }
            }
            false
        })
    }

    /// Number of offloads seen so far.
    pub fn offloads_seen(&self) -> u64 {
        self.state.with(|s| s.offload_index.map_or(0, |i| i + 1))
    }

    /// Every fault that fired, in order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.state.with(|s| s.fired.clone())
    }

    /// Compact `offload:label` log of every firing, for determinism
    /// comparisons.
    pub fn fired_log(&self) -> Vec<String> {
        self.state.with(|s| {
            s.fired
                .iter()
                .map(|f| format!("{}:{}", f.offload, f.label))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        for seed in 0..50u64 {
            let a = FaultPlan::generate(seed, 4);
            let b = FaultPlan::generate(seed, 4);
            assert_eq!(a, b);
            assert!(!a.events.is_empty() && a.events.len() <= 4);
            assert!(a.events.iter().all(|e| e.at_offload < 4));
        }
        assert_ne!(FaultPlan::generate(1, 4), FaultPlan::generate(2, 4));
    }

    #[test]
    fn begin_offload_arms_and_records_prep_faults() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent {
                    at_offload: 0,
                    kind: FaultKind::XlatPressure { entries: 10 },
                },
                FaultEvent {
                    at_offload: 0,
                    kind: FaultKind::DropSourceFeed { line: 3 },
                },
                FaultEvent {
                    at_offload: 1,
                    kind: FaultKind::ScratchHog { pages: 2 },
                },
            ],
        };
        let h = FaultHandle::new(plan);
        let preps = h.begin_offload();
        assert_eq!(preps, vec![FaultKind::XlatPressure { entries: 10 }]);
        // The drop fault is armed, not fired yet.
        assert_eq!(h.fired_log(), vec!["0:xlat_pressure(10)"]);
        assert!(!h.drop_source_feed(2), "wrong line must not fire");
        assert!(h.drop_source_feed(3));
        assert!(!h.drop_source_feed(3), "fires only once");
        let preps = h.begin_offload();
        assert_eq!(preps, vec![FaultKind::ScratchHog { pages: 2 }]);
        assert_eq!(
            h.fired_log(),
            vec![
                "0:xlat_pressure(10)",
                "0:drop_source_feed(3)",
                "1:scratch_hog(2)"
            ]
        );
    }

    #[test]
    fn writeback_faults_consume_once() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent {
                    at_offload: 0,
                    kind: FaultKind::DelayWriteback { lines: 4 },
                },
                FaultEvent {
                    at_offload: 0,
                    kind: FaultKind::ReorderWriteback,
                },
            ],
        };
        let h = FaultHandle::new(plan);
        h.begin_offload();
        assert_eq!(h.writeback_faults(), (true, 4));
        assert_eq!(h.writeback_faults(), (false, 0), "consumed");
    }

    #[test]
    fn tcp_bursts_cover_their_window() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                at_offload: 0,
                kind: FaultKind::TcpLossBurst { start: 5, len: 3 },
            }],
        };
        let h = FaultHandle::new(plan);
        assert!(!h.tcp_force_drop(4));
        assert!(h.tcp_force_drop(5));
        assert!(h.tcp_force_drop(6));
        assert!(h.tcp_force_drop(7));
        assert!(!h.tcp_force_drop(8));
        // One log entry per burst, not per segment.
        assert_eq!(h.fired_log(), vec!["5:tcp_loss_burst(5,3)"]);
    }

    #[test]
    fn clones_share_state() {
        let h = FaultHandle::new(FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                at_offload: 0,
                kind: FaultKind::DropSourceFeed { line: 0 },
            }],
        });
        let h2 = h.clone();
        h.begin_offload();
        assert!(h2.drop_source_feed(0));
        assert_eq!(h.fired().len(), 1);
    }
}
