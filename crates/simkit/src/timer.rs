//! Wall-clock stopwatch for self-timing benchmarks.
//!
//! Simulation code must never read the host clock — simlint's `DET-NOW`
//! rule bans `Instant::now` because replayed runs must not diverge, and
//! simulated time is [`crate::Cycle`]. The one legitimate consumer of
//! wall time is the benchmark harness that measures how fast the
//! *simulator itself* runs (the ns/op numbers in `BENCH_hotpaths.json`).
//! This module is the single sanctioned doorway to the host clock, so
//! bench binaries do not scatter `Instant::now` calls (each needing its
//! own lint allow) across the workspace.

use std::time::{Duration, Instant};

/// Seconds since the Unix epoch, for *metadata stamps only* (e.g. the
/// `generated_at_unix` field of `results/run_report.json`). Simulation
/// results must never depend on this — a run report keeps its stamp in
/// the outer metadata wrapper precisely so the inner `telemetry/v1`
/// snapshot stays byte-identical across same-seed runs.
pub fn unix_time_secs() -> u64 {
    // simlint: allow(DET-NOW): sanctioned wall-clock doorway — report metadata stamps only
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// A started wall-clock timer.
///
/// # Example
///
/// ```
/// use simkit::timer::Stopwatch;
/// let sw = Stopwatch::start();
/// let mut acc = 0u64;
/// for i in 0..1000u64 { acc = acc.wrapping_add(i); }
/// assert!(sw.elapsed_ns() > 0 || acc > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch at the current instant.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Stopwatch {
        // simlint: allow(DET-NOW): this module IS the sanctioned wall-clock doorway for benchmarks
        let start = Instant::now();
        Stopwatch { start }
    }

    /// Wall time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed wall time in nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Times one call of `f`, returning `(result, elapsed_ns)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn time_returns_result_and_duration() {
        let (out, ns) = time(|| (0..1000u64).sum::<u64>());
        assert_eq!(out, 499_500);
        // Elapsed time can legitimately quantize to 0 on coarse clocks,
        // but must never go backwards; just check it is a valid u64.
        assert!(ns < u64::MAX);
    }
}
