//! Physical address mapping: physical address ⇄ (channel, rank, bank
//! group, bank, row, column).
//!
//! The decode order is the common bank-interleaved scheme:
//! `offset(6) | bg | bank | column | rank | row`, with the channel bits
//! taken above the offset at a configurable interleave granularity
//! (§V-D: modern servers map only 1–4 consecutive cachelines to the
//! same DIMM). The paper's prototype ran single-channel; this
//! reproduction scales to N channels, one SmartDIMM shard per channel,
//! with fine interleave striping every page across shards and coarse
//! interleave (`channel_interleave_lines ≥ 64`) pinning whole pages to
//! one channel while consecutive pages rotate.

use std::fmt;

/// A byte-granular physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The 4 KB page number of this address.
    pub fn page(self) -> u64 {
        self.0 >> 12
    }

    /// The address of the cacheline containing this address.
    pub fn cacheline(self) -> PhysAddr {
        PhysAddr(self.0 & !63)
    }

    /// Byte offset within the cacheline.
    pub fn line_offset(self) -> usize {
        (self.0 & 63) as usize
    }

    /// Whether the address is 64-byte aligned.
    pub fn is_line_aligned(self) -> bool {
        self.0 & 63 == 0
    }

    /// Whether the address is 4 KB aligned.
    pub fn is_page_aligned(self) -> bool {
        self.0 & 4095 == 0
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// DRAM organization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTopology {
    /// Number of memory channels (total, across all sockets).
    pub channels: usize,
    /// Ranks per DIMM.
    pub ranks: usize,
    /// DIMMs per channel. Only the slot-0 DIMM of each channel carries
    /// the SmartDIMM buffer device; the remaining slots are plain
    /// capacity DIMMs, so offload placement has to care which DIMM a
    /// buffer decodes to.
    pub dimms_per_channel: usize,
    /// CPU sockets. Channels are split evenly across sockets
    /// (`channels % sockets == 0`); accesses from the home socket to a
    /// channel owned by another socket cross the inter-socket link and
    /// pay the configured interconnect penalty.
    pub sockets: usize,
    /// Bank groups per rank (DDR4: 4).
    pub bank_groups: usize,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: usize,
    /// Cachelines per row ("row buffer" of 8 KB = 128 lines).
    pub lines_per_row: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Consecutive cachelines mapped to one channel before switching
    /// (§V-D interleave granularity; 1–4 typical, large = coarse-grain).
    pub channel_interleave_lines: usize,
}

impl Default for DramTopology {
    /// Single-socket, single-channel, single-rank 4 GiB DIMM — the
    /// AxDIMM-class setup scaled down for simulation (16 banks ×
    /// 32 Ki rows × 8 KB rows). `capacity_math` in this module asserts
    /// this figure so the doc and the geometry cannot drift apart.
    fn default() -> Self {
        DramTopology {
            channels: 1,
            ranks: 1,
            dimms_per_channel: 1,
            sockets: 1,
            bank_groups: 4,
            banks_per_group: 4,
            lines_per_row: 128,
            rows: 1 << 15,
            channel_interleave_lines: 1,
        }
    }
}

impl DramTopology {
    /// Banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Ranks visible on one channel's command bus: `ranks` per DIMM ×
    /// `dimms_per_channel` slots. The address decode's rank field spans
    /// this range; `rank / ranks` recovers the DIMM slot.
    pub fn ranks_per_channel(&self) -> usize {
        self.ranks * self.dimms_per_channel
    }

    /// Channels owned by each socket (`channels / sockets`).
    pub fn channels_per_socket(&self) -> usize {
        self.channels / self.sockets
    }

    /// The socket owning `channel` — channels are split contiguously.
    pub fn socket_of_channel(&self, channel: usize) -> usize {
        channel / self.channels_per_socket()
    }

    /// The DIMM slot within a channel that a decoded (channel-local)
    /// rank index belongs to. Slot 0 is the DSA-bearing DIMM.
    pub fn dimm_slot_of_rank(&self, rank: usize) -> usize {
        rank / self.ranks
    }

    /// Total addressable bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.channels
            * self.ranks_per_channel()
            * self.banks_per_rank()
            * self.rows
            * self.lines_per_row) as u64
            * 64
    }
}

/// A fully decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel, spanning every DIMM slot on the bus
    /// (`0..ranks_per_channel()`); `rank / ranks` is the DIMM slot and
    /// `rank % ranks` the rank within that DIMM.
    pub rank: usize,
    /// Bank group.
    pub bg: usize,
    /// Bank within the group.
    pub bank: usize,
    /// Row.
    pub row: usize,
    /// Column, in cachelines within the row.
    pub col: usize,
}

impl Loc {
    /// Flat bank index within the rank (`bg * banks_per_group + bank`) —
    /// the index SmartDIMM's Bank Table uses.
    pub fn bank_index(&self, topo: &DramTopology) -> usize {
        self.bg * topo.banks_per_group + self.bank
    }
}

/// Bidirectional physical-address ⇄ location mapper.
///
/// # Example
///
/// ```
/// use dram::{AddressMapper, DramTopology, PhysAddr};
/// let mapper = AddressMapper::new(DramTopology::default());
/// let loc = mapper.decode(PhysAddr(0x12340));
/// assert_eq!(mapper.encode(&loc), PhysAddr(0x12340).cacheline());
/// ```
#[derive(Debug, Clone)]
pub struct AddressMapper {
    topo: DramTopology,
}

impl AddressMapper {
    /// Creates a mapper for the given topology.
    ///
    /// # Panics
    ///
    /// Panics if any topology field is zero or the interleave granularity
    /// is not a power of two.
    pub fn new(topo: DramTopology) -> AddressMapper {
        assert!(topo.channels > 0 && topo.ranks > 0, "empty topology");
        assert!(topo.bank_groups > 0 && topo.banks_per_group > 0, "no banks");
        assert!(topo.lines_per_row > 0 && topo.rows > 0, "no rows");
        assert!(
            topo.dimms_per_channel > 0 && topo.sockets > 0,
            "empty topology"
        );
        assert!(
            topo.channels.is_multiple_of(topo.sockets),
            "channels must split evenly across sockets"
        );
        assert!(
            topo.channel_interleave_lines.is_power_of_two(),
            "interleave granularity must be a power of two"
        );
        AddressMapper { topo }
    }

    /// The topology this mapper serves.
    pub fn topology(&self) -> &DramTopology {
        &self.topo
    }

    /// Decodes a physical address to its DRAM location (cacheline
    /// granularity; the 6 offset bits are dropped).
    pub fn decode(&self, addr: PhysAddr) -> Loc {
        let t = &self.topo;
        let mut line = addr.0 >> 6;
        // Channel bits sit above `channel_interleave_lines` lines.
        let gran = t.channel_interleave_lines as u64;
        let within = line % gran;
        line /= gran;
        let channel = (line % t.channels as u64) as usize;
        line /= t.channels as u64;
        let line = line * gran + within;

        let bg = (line % t.bank_groups as u64) as usize;
        let rest = line / t.bank_groups as u64;
        let bank = (rest % t.banks_per_group as u64) as usize;
        let rest = rest / t.banks_per_group as u64;
        let col = (rest % t.lines_per_row as u64) as usize;
        let rest = rest / t.lines_per_row as u64;
        let ranks = t.ranks_per_channel() as u64;
        let rank = (rest % ranks) as usize;
        let row = (rest / ranks) as usize % t.rows;
        Loc {
            channel,
            rank,
            bg,
            bank,
            row,
            col,
        }
    }

    /// Re-encodes a location to the (cacheline-aligned) physical address —
    /// SmartDIMM's *Addr Remap* module (§IV-C): the buffer device must
    /// reconstruct physical addresses from `(row, bg, bank, col)` because
    /// acceleration ranges are defined in the physical address space.
    pub fn encode(&self, loc: &Loc) -> PhysAddr {
        let t = &self.topo;
        let mut line = loc.row as u64;
        line = line * t.ranks_per_channel() as u64 + loc.rank as u64;
        line = line * t.lines_per_row as u64 + loc.col as u64;
        line = line * t.banks_per_group as u64 + loc.bank as u64;
        line = line * t.bank_groups as u64 + loc.bg as u64;

        let gran = t.channel_interleave_lines as u64;
        let within = line % gran;
        let blocks = line / gran;
        let line = (blocks * t.channels as u64 + loc.channel as u64) * gran + within;
        PhysAddr(line << 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn phys_addr_helpers() {
        let a = PhysAddr(0x12345);
        assert_eq!(a.page(), 0x12);
        assert_eq!(a.cacheline(), PhysAddr(0x12340));
        assert_eq!(a.line_offset(), 5);
        assert!(!a.is_line_aligned());
        assert!(PhysAddr(0x1000).is_page_aligned());
        assert!(!PhysAddr(0x1040).is_page_aligned());
        assert_eq!(format!("{}", a), "0x12345");
    }

    #[test]
    fn decode_encode_round_trip_default() {
        let mapper = AddressMapper::new(DramTopology::default());
        for addr in (0..1_000_000u64).step_by(64 * 7) {
            let a = PhysAddr(addr).cacheline();
            assert_eq!(mapper.encode(&mapper.decode(a)), a, "addr {a}");
        }
    }

    #[test]
    fn consecutive_lines_interleave_across_banks() {
        let mapper = AddressMapper::new(DramTopology::default());
        let l0 = mapper.decode(PhysAddr(0));
        let l1 = mapper.decode(PhysAddr(64));
        // Adjacent cachelines land in different bank groups.
        assert_ne!((l0.bg, l0.bank), (l1.bg, l1.bank));
        assert_eq!(l0.row, l1.row);
    }

    #[test]
    fn channel_interleaving_granularity() {
        let topo = DramTopology {
            channels: 2,
            channel_interleave_lines: 2,
            ..DramTopology::default()
        };
        let mapper = AddressMapper::new(topo);
        let chans: Vec<usize> = (0..8)
            .map(|i| mapper.decode(PhysAddr(i * 64)).channel)
            .collect();
        // Two consecutive lines per channel before switching.
        assert_eq!(chans, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn single_channel_keeps_everything_local() {
        let mapper = AddressMapper::new(DramTopology::default());
        for i in 0..256u64 {
            assert_eq!(mapper.decode(PhysAddr(i * 64)).channel, 0);
        }
    }

    #[test]
    fn bank_index_is_flat() {
        let topo = DramTopology::default();
        let loc = Loc {
            channel: 0,
            rank: 0,
            bg: 2,
            bank: 3,
            row: 0,
            col: 0,
        };
        assert_eq!(loc.bank_index(&topo), 11);
    }

    #[test]
    fn capacity_math() {
        let topo = DramTopology::default();
        // 1 ch * 1 rank * 16 banks * 32768 rows * 128 lines * 64 B = 4 GiB —
        // exactly what `DramTopology::default()`'s rustdoc promises.
        assert_eq!(topo.capacity_bytes(), 4 << 30);
        assert_eq!(topo.banks_per_rank(), 16);
        // Extra DIMM slots add capacity multiplicatively.
        let multi = DramTopology {
            dimms_per_channel: 2,
            ..topo
        };
        assert_eq!(multi.capacity_bytes(), 8 << 30);
    }

    #[test]
    fn topology_helpers() {
        let topo = DramTopology {
            channels: 4,
            ranks: 2,
            dimms_per_channel: 2,
            sockets: 2,
            ..DramTopology::default()
        };
        assert_eq!(topo.ranks_per_channel(), 4);
        assert_eq!(topo.channels_per_socket(), 2);
        assert_eq!(topo.socket_of_channel(0), 0);
        assert_eq!(topo.socket_of_channel(1), 0);
        assert_eq!(topo.socket_of_channel(2), 1);
        assert_eq!(topo.socket_of_channel(3), 1);
        assert_eq!(topo.dimm_slot_of_rank(0), 0);
        assert_eq!(topo.dimm_slot_of_rank(1), 0);
        assert_eq!(topo.dimm_slot_of_rank(2), 1);
        assert_eq!(topo.dimm_slot_of_rank(3), 1);
    }

    #[test]
    #[should_panic(expected = "split evenly")]
    fn sockets_must_divide_channels() {
        let topo = DramTopology {
            channels: 3,
            sockets: 2,
            ..DramTopology::default()
        };
        AddressMapper::new(topo);
    }

    #[test]
    fn rank_field_spans_dimm_slots() {
        let topo = DramTopology {
            ranks: 1,
            dimms_per_channel: 2,
            ..DramTopology::default()
        };
        let mapper = AddressMapper::new(topo);
        // With one rank per DIMM and two slots, the decoded rank field
        // alternates slots exactly where a 2-rank decode would
        // alternate ranks, and every address round-trips.
        let mut seen_slot1 = false;
        for line in 0..(1u64 << 16) {
            let a = PhysAddr(line * 64);
            let loc = mapper.decode(a);
            assert!(loc.rank < topo.ranks_per_channel());
            seen_slot1 |= topo.dimm_slot_of_rank(loc.rank) == 1;
            assert_eq!(mapper.encode(&loc), a);
        }
        assert!(seen_slot1, "slot-1 DIMM never addressed");
    }

    proptest! {
        #[test]
        fn prop_round_trip_arbitrary_topology(
            addr_line in 0u64..(1 << 24),
            channels in 1usize..4,
            ranks in 1usize..3,
            dimms in 1usize..3,
            gran_log in 0u32..3,
        ) {
            let topo = DramTopology {
                channels,
                ranks,
                dimms_per_channel: dimms,
                channel_interleave_lines: 1 << gran_log,
                ..DramTopology::default()
            };
            let mapper = AddressMapper::new(topo);
            let a = PhysAddr(addr_line * 64);
            prop_assert_eq!(mapper.encode(&mapper.decode(a)), a);
        }

        #[test]
        fn prop_decode_fields_in_range(addr_line in 0u64..(1 << 26)) {
            let topo = DramTopology { channels: 2, ranks: 2, ..DramTopology::default() };
            let mapper = AddressMapper::new(topo);
            let loc = mapper.decode(PhysAddr(addr_line * 64));
            prop_assert!(loc.channel < 2);
            prop_assert!(loc.rank < 2);
            prop_assert!(loc.bg < 4);
            prop_assert!(loc.bank < 4);
            prop_assert!(loc.col < 128);
            prop_assert!(loc.row < (1 << 15));
        }
    }
}
